//! Facade-level check that the two execution substrates are interchangeable:
//! the same experiment, run through `garfield::executor_for`, learns the same
//! model whether iterations are simulated or executed by real threads.

use garfield::net::Role;
use garfield::{executor_for, ExecMode, ExperimentConfig, LiveExecutor, SystemKind};

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 5;
    cfg.iterations = 6;
    cfg.eval_every = 3;
    cfg
}

#[test]
fn the_facade_exposes_both_substrates_behind_one_trait() {
    let mut accuracies = Vec::new();
    for mode in [ExecMode::Sim, ExecMode::Live] {
        let mut executor = executor_for(mode, config());
        let trace = executor.run(SystemKind::Vanilla).unwrap();
        assert_eq!(trace.len(), 6, "{mode}");
        accuracies.push(trace.final_accuracy());
    }
    assert_eq!(accuracies[0], accuracies[1]);
}

#[test]
fn a_live_run_moves_real_bytes_through_every_node() {
    let mut live = LiveExecutor::new(config());
    let report = live.run_live(SystemKind::Ssmw).unwrap();
    assert!(report.telemetry.all_nodes_active());
    assert_eq!(report.telemetry.nodes_with_role(Role::Server).count(), 1);
    assert_eq!(report.telemetry.nodes_with_role(Role::Worker).count(), 5);
    assert!(report.telemetry.total_bytes() > 0);
    assert_eq!(live.last_report().unwrap().trace.len(), 6);
}
