//! Deterministic-seed regression tests.
//!
//! Every source of randomness in the workspace (data synthesis, weight
//! initialisation, attacks, network jitter) derives from `ExperimentConfig::seed`,
//! so two runs of the same configuration must produce bit-identical traces.
//! This guards future performance refactors against silently introducing
//! nondeterminism (e.g. iteration-order or threading changes).

use garfield::{AttackKind, Controller, ExperimentConfig, SystemKind};

fn quick_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.iterations = 8;
    cfg.eval_every = 4;
    cfg
}

/// Bit-exact trace comparison via the canonical JSON encoding (the trace
/// struct intentionally does not implement `Eq` because of its floats).
fn assert_identical(a: &garfield::TrainingTrace, b: &garfield::TrainingTrace, what: &str) {
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "{what} diverged between identically-seeded runs"
    );
}

#[test]
fn every_system_is_deterministic_under_a_fixed_seed() {
    let controller = Controller::new(quick_config());
    for system in SystemKind::all() {
        let first = controller.run(system).unwrap();
        let second = controller.run(system).unwrap();
        assert_identical(&first, &second, system.as_str());
    }
}

#[test]
fn two_controllers_with_the_same_config_agree() {
    let a = Controller::new(quick_config())
        .run(SystemKind::Ssmw)
        .unwrap();
    let b = Controller::new(quick_config())
        .run(SystemKind::Ssmw)
        .unwrap();
    assert_identical(&a, &b, "ssmw");
}

#[test]
fn determinism_holds_under_byzantine_attacks() {
    let mut cfg = quick_config();
    cfg.actual_byzantine_workers = 1;
    cfg.worker_attack = Some(AttackKind::Random); // a *stochastic* attack
    let controller = Controller::new(cfg);
    for system in [SystemKind::Ssmw, SystemKind::Msmw] {
        let first = controller.run(system).unwrap();
        let second = controller.run(system).unwrap();
        assert_identical(&first, &second, system.as_str());
    }
}

#[test]
fn changing_the_seed_changes_the_run() {
    let mut cfg = quick_config();
    cfg.seed = 1;
    let a = Controller::new(cfg.clone()).run(SystemKind::Ssmw).unwrap();
    cfg.seed = 2;
    let b = Controller::new(cfg).run(SystemKind::Ssmw).unwrap();
    assert_ne!(
        a.to_json(),
        b.to_json(),
        "different seeds should produce observably different traces"
    );
}

#[test]
fn trace_json_is_a_stable_canonical_encoding() {
    let trace = Controller::new(quick_config())
        .run(SystemKind::Vanilla)
        .unwrap();
    let json = trace.to_json();
    let reparsed = garfield::TrainingTrace::from_json(&json).unwrap();
    assert_eq!(
        reparsed.to_json(),
        json,
        "to_json -> from_json -> to_json must be a fixed point"
    );
}
