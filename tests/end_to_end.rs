//! End-to-end integration tests spanning every crate of the workspace:
//! data synthesis → sharding → distributed training → robust aggregation →
//! attack tolerance → telemetry.

use garfield::{AttackKind, Controller, ExperimentConfig, GarKind, SystemKind};

fn base_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.iterations = 40;
    cfg.eval_every = 10;
    cfg
}

#[test]
fn every_system_trains_end_to_end_without_faults() {
    let mut cfg = base_config();
    cfg.iterations = 12;
    let controller = Controller::new(cfg);
    for system in SystemKind::all() {
        let trace = controller.run(system).expect("system should run");
        assert_eq!(trace.len(), 12, "{system}");
        assert!(trace.total_time() > 0.0, "{system}");
        assert!(!trace.accuracy.is_empty(), "{system}");
    }
}

#[test]
fn byzantine_resilience_beats_averaging_under_attack() {
    // The headline claim: under a gradient attack, robust aggregation keeps
    // learning while plain averaging collapses (paper Fig. 5).
    let mut cfg = base_config();
    cfg.iterations = 50;
    cfg.actual_byzantine_workers = 1;
    cfg.worker_attack = Some(AttackKind::Reversed);
    let controller = Controller::new(cfg);

    let robust = controller.run(SystemKind::Ssmw).unwrap();
    let vanilla = controller.run(SystemKind::Vanilla).unwrap();
    let crash = controller.run(SystemKind::CrashTolerant).unwrap();

    assert!(
        robust.final_accuracy() > vanilla.final_accuracy() + 0.15,
        "SSMW {} should clearly beat vanilla {} under attack",
        robust.final_accuracy(),
        vanilla.final_accuracy()
    );
    assert!(
        robust.final_accuracy() > crash.final_accuracy() + 0.15,
        "SSMW {} should clearly beat crash-tolerant {} under attack",
        robust.final_accuracy(),
        crash.final_accuracy()
    );
}

#[test]
fn msmw_survives_byzantine_servers_where_crash_tolerance_fails() {
    let mut cfg = base_config();
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.iterations = 50;
    cfg.gradient_gar = GarKind::MultiKrum;
    cfg.model_gar = GarKind::Median;
    cfg.actual_byzantine_servers = 1;
    cfg.server_attack = Some(AttackKind::Random);
    cfg.actual_byzantine_workers = 1;
    cfg.worker_attack = Some(AttackKind::Random);
    let controller = Controller::new(cfg);

    let msmw = controller.run(SystemKind::Msmw).unwrap();
    assert!(
        msmw.final_accuracy() > 0.5,
        "MSMW should converge despite 1 Byzantine server + 1 Byzantine worker, got {}",
        msmw.final_accuracy()
    );
}

#[test]
fn throughput_ordering_matches_the_paper() {
    // Paper §6.6: vanilla is fastest; tolerating Byzantine servers costs more
    // than tolerating only Byzantine workers; decentralized is slowest.
    let mut cfg = base_config();
    cfg.iterations = 10;
    cfg.eval_every = 0;
    let controller = Controller::new(cfg);

    let vanilla = controller
        .run(SystemKind::Vanilla)
        .unwrap()
        .updates_per_second();
    let ssmw = controller
        .run(SystemKind::Ssmw)
        .unwrap()
        .updates_per_second();
    let msmw = controller
        .run(SystemKind::Msmw)
        .unwrap()
        .updates_per_second();
    let decentralized = controller
        .run(SystemKind::Decentralized)
        .unwrap()
        .updates_per_second();

    assert!(
        vanilla > ssmw,
        "vanilla {vanilla} should outpace ssmw {ssmw}"
    );
    assert!(ssmw > msmw, "ssmw {ssmw} should outpace msmw {msmw}");
    assert!(
        msmw > decentralized,
        "msmw {msmw} should outpace decentralized {decentralized}"
    );
}

#[test]
fn communication_dominates_the_overhead_breakdown() {
    // Paper Fig. 7: communication accounts for the majority of the overhead of
    // fault-tolerant deployments, aggregation for a small share.
    let mut cfg = base_config();
    cfg.iterations = 10;
    cfg.eval_every = 0;
    cfg.model = "mnist-cnn-lite".into();
    cfg.dataset_samples = 128;
    cfg.test_samples = 64;
    let controller = Controller::new(cfg);
    let trace = controller.run(SystemKind::Msmw).unwrap();
    let timing = trace.mean_timing();
    assert!(
        timing.communication > 0.5 * timing.total(),
        "communication {:.4} should dominate total {:.4}",
        timing.communication,
        timing.total()
    );
    assert!(
        timing.aggregation < 0.3 * timing.total(),
        "aggregation {:.4} should be a small share of total {:.4}",
        timing.aggregation,
        timing.total()
    );
}

#[test]
fn gpu_deployments_are_roughly_an_order_of_magnitude_faster() {
    // The device gap only shows on models large enough that computation and
    // bandwidth (not per-message latency) dominate the iteration.
    let mut cpu_cfg = base_config();
    cpu_cfg.model = "mnist-cnn-lite".into();
    cpu_cfg.dataset_samples = 128;
    cpu_cfg.test_samples = 64;
    cpu_cfg.iterations = 8;
    cpu_cfg.eval_every = 0;
    let mut gpu_cfg = cpu_cfg.clone();
    gpu_cfg.device = garfield::Device::Gpu;

    let cpu = Controller::new(cpu_cfg)
        .run(SystemKind::Ssmw)
        .unwrap()
        .updates_per_second();
    let gpu = Controller::new(gpu_cfg)
        .run(SystemKind::Ssmw)
        .unwrap()
        .updates_per_second();
    assert!(
        gpu > 3.0 * cpu,
        "gpu {gpu} should be much faster than cpu {cpu}"
    );
}

#[test]
fn traces_serialize_to_json_for_the_experiment_reports() {
    let mut cfg = base_config();
    cfg.iterations = 5;
    let trace = Controller::new(cfg).run(SystemKind::Ssmw).unwrap();
    let json = trace.to_json();
    assert!(json.contains("\"system\":\"ssmw\""));
    let back = garfield::TrainingTrace::from_json(&json).unwrap();
    assert_eq!(back.len(), trace.len());
    assert_eq!(back.final_accuracy(), trace.final_accuracy());
    assert!((back.total_time() - trace.total_time()).abs() < 1e-12);
}
