//! # garfield
//!
//! Facade crate for **Garfield-rs**, a from-scratch Rust reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"*
//! (Guerraoui, Guirguis, Plassmann, Ragot, Rouault — DSN 2021).
//!
//! Garfield makes SGD-based distributed learning Byzantine-resilient by
//! replacing gradient averaging with statistically robust gradient
//! aggregation rules (GARs) and by giving servers and workers pull-based
//! communication abstractions that keep working when nodes crash, lag or lie.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`tensor`] | dense `f32` tensors, RNG, distance kernels |
//! | [`ml`] | models, losses, SGD, synthetic datasets, the Table 1 model zoo |
//! | [`aggregation`] | Average, Median, Krum, Multi-Krum, MDA, Bulyan + the variance probe |
//! | [`attacks`] | random / reversed / little-is-enough / fall-of-empires … |
//! | [`net`] | simulated cluster fabric, cost model, pull rounds, message router, wire format |
//! | [`core`] | Server/Worker objects, Controller, SSMW / MSMW / decentralized apps, baselines |
//! | [`runtime`] | threaded actor runtime: live training over real router messages, fault injection |
//! | [`transport`] | TCP transport + the `garfield-node` binary: one process per node on real sockets |
//!
//! The most common entry point is [`Controller`]:
//!
//! ```rust
//! use garfield::{Controller, ExperimentConfig, SystemKind};
//!
//! let mut config = ExperimentConfig::small();
//! config.iterations = 5;
//! let trace = Controller::new(config).run(SystemKind::Ssmw)?;
//! assert_eq!(trace.len(), 5);
//! # Ok::<(), garfield::CoreError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Dense tensor math substrate.
pub use garfield_tensor as tensor;

/// Machine-learning substrate: models, datasets, losses, optimizers, model zoo.
pub use garfield_ml as ml;

/// Statistically robust gradient aggregation rules.
pub use garfield_aggregation as aggregation;

/// Byzantine attack implementations.
pub use garfield_attacks as attacks;

/// Simulated cluster fabric, cost model and message router.
pub use garfield_net as net;

/// Garfield core: Server/Worker objects, Controller, applications, baselines.
pub use garfield_core as core;

/// Threaded actor runtime: live Byzantine training over real messages.
pub use garfield_runtime as runtime;

/// TCP transport and the `garfield-node` per-process deployment layer.
pub use garfield_transport as transport;

pub use garfield_aggregation::{build_gar, Gar, GarKind};
pub use garfield_attacks::{Attack, AttackKind};
pub use garfield_core::{
    Controller, CoreError, CoreResult, Deployment, ExecMode, Executor, ExperimentConfig,
    SimExecutor, SystemKind, TrainingTrace,
};
pub use garfield_ml::{Dataset, DatasetKind, Model, ShardStrategy};
pub use garfield_net::Device;
pub use garfield_runtime::{executor_for, FaultPlan, LiveExecutor};
pub use garfield_tensor::{Tensor, TensorRng};
