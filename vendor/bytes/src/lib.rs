//! Offline stand-in for the `bytes` crate: an immutable, cheaply cloneable
//! byte buffer backed by `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is `O(1)` (an atomic refcount bump), which is what the message
/// router relies on when fanning one payload out to many peers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a buffer by copying a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(Bytes::from(vec![1u8, 2, 3])[..], [1, 2, 3]);
    }

    #[test]
    fn clone_is_equal_and_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn debug_escapes_and_truncates() {
        let s = format!("{:?}", Bytes::from_static(b"hi\n"));
        assert_eq!(s, "b\"hi\\n\"");
        assert!(format!("{:?}", Bytes::from(vec![b'x'; 64])).contains('…'));
    }
}
