//! Offline stand-in for the `parking_lot` crate: `RwLock` and `Mutex` with
//! parking_lot's ergonomics (no poisoning `Result`s) over the std primitives.

#![forbid(unsafe_code)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are obtained without a poisoning `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard is obtained without a poisoning `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
