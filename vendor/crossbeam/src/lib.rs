//! Offline stand-in for the `crossbeam` crate.
//!
//! Two modules are provided: `channel`, implemented on top of
//! `std::sync::mpsc`, whose `Sender`/`Receiver`/`RecvTimeoutError` types have
//! the exact shape the router needs (cloneable senders, `recv_timeout`), and
//! `thread`, whose scoped-spawn API is satisfied by `std::thread::scope`
//! (stabilised in Rust 1.63, after crossbeam pioneered the pattern) — the
//! parallel aggregation engine fans its distance-matrix chunks out through it.

#![forbid(unsafe_code)]

/// Multi-producer channels (std::sync::mpsc re-exported under crossbeam's names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (std::thread's scope API under crossbeam's module name).
///
/// `scope` guarantees every spawned thread is joined before it returns, which
/// is what lets the aggregation engine hand out borrowed `&[f32]` gradient
/// views to worker threads without any `'static` bound or reference counting.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2u32).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u32, 2, 3, 4];
        let mut out = vec![0u32; 4];
        crate::thread::scope(|s| {
            let (lo, hi) = out.split_at_mut(2);
            s.spawn(|| {
                for (o, v) in lo.iter_mut().zip(&data[..2]) {
                    *o = v * 10;
                }
            });
            for (o, v) in hi.iter_mut().zip(&data[2..]) {
                *o = v * 10;
            }
        });
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
