//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented on top of
//! `std::sync::mpsc`, whose `Sender`/`Receiver`/`RecvTimeoutError` types have
//! the exact shape the router needs (cloneable senders, `recv_timeout`).

#![forbid(unsafe_code)]

/// Multi-producer channels (std::sync::mpsc re-exported under crossbeam's names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2u32).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
