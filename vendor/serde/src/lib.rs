//! Offline stand-in for the `serde` crate.
//!
//! Provides just enough surface for the workspace's feature-gated
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]`
//! attributes to compile without crates.io access: marker traits in the type
//! namespace and no-op derive macros (re-exported from the in-tree
//! `serde_derive`) in the macro namespace. Replace both shims with the real
//! crates to get functional serialization; the workspace's own trace
//! serialization does not depend on this (see `garfield_core::json`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (the no-op derive implements nothing).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (the no-op derive implements nothing).
pub trait Deserialize<'de> {}
