//! Offline stand-in for `serde_derive`.
//!
//! The derives expand to nothing: they exist so that
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]`
//! attributes across the workspace *compile* when the `serde` feature is
//! enabled in the offline environment. Swapping this shim for the real
//! `serde`/`serde_derive` crates turns the same attributes into real impls.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
