//! Offline stand-in for the `rand_distr` crate: the [`Distribution`] trait
//! plus the [`Normal`] and [`Uniform`] distributions the tensor layer uses.

#![forbid(unsafe_code)]

use rand::{RngCore, StandardSample};
use std::fmt;

/// Types that sample values of `T` from a parameterised distribution.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// Gaussian distribution, sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f32,
    std_dev: f32,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error when `std_dev` is negative or not finite.
    pub fn new(mean: f32, std_dev: f32) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error {
                what: "std_dev must be finite and non-negative",
            });
        }
        if !mean.is_finite() {
            return Err(Error {
                what: "mean must be finite",
            });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f32> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
        // Box–Muller: u1 in (0, 1] so the log is finite.
        let u1: f32 = 1.0 - f32::sample_standard(rng);
        let u2: f32 = f32::sample_standard(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// Uniform distribution over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f32,
    span: f32,
    inclusive: bool,
}

impl Uniform {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: f32, high: f32) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform {
            low,
            span: high - low,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[low, high]`.
    pub fn new_inclusive(low: f32, high: f32) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform {
            low,
            span: high - low,
            inclusive: true,
        }
    }
}

impl Distribution<f32> for Uniform {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
        let u = if self.inclusive {
            // 24 random bits mapped onto [0, 1].
            (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32)
        } else {
            f32::sample_standard(rng)
        };
        self.low + u * self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_bad_std_dev() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f32::NAN).is_err());
        assert!(Normal::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn normal_moments_are_reasonable() {
        let dist = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let dist = Uniform::new_inclusive(-0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v), "{v}");
        }
    }
}
