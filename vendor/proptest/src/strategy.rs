//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a seeded [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Builds a dependent strategy from each sampled value (e.g. a length
    /// followed by vectors of exactly that length).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps sampled values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between several strategies of one type (see `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    branches: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// Creates the union; panics on an empty branch list.
    pub fn new(branches: Vec<S>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        OneOf { branches }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
