//! Configuration and the deterministic test-case generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while still
        // exploring the space. Tests can raise it with `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case generator: the in-tree `rand` shim's xoshiro256++
/// generator, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds the generator from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Seeds the generator from a test name (FNV-1a hash), so every property
    /// gets an independent but fully reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
