//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements a
//! deterministic subset of proptest: the [`proptest!`] macro runs each test
//! body for `ProptestConfig::cases` cases, sampling every argument from its
//! strategy with a per-test seeded generator. There is no shrinking and no
//! persistence — failures report the sampled values via normal assertion
//! panics, and re-running reproduces them exactly because the seed is a pure
//! function of the test name.
//!
//! Supported strategy surface (what the workspace's tests use):
//! numeric ranges (`0u64..1000`, `-1.0f32..1.0`), [`Just`], tuples,
//! [`collection::vec`], [`Strategy::prop_flat_map`], [`Strategy::prop_map`]
//! and [`prop_oneof!`].

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias so `prop::collection::vec(...)` resolves, as with real proptest.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    #[allow(unused_parens)]
                    let ( $($arg),* ) =
                        ( $( $crate::strategy::Strategy::sample(&($strategy), &mut rng) ),* );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property for the current case (no early bail-out semantics:
/// failure panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
///
/// Expands to `continue` on the case loop, so it is only valid directly
/// inside a `proptest!` body (which is the only place proptest allows it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly between several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0, z in 5u64..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((5..=9).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0f32..1.0, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn exact_len_vec(v in prop::collection::vec(0u64..5, 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn flat_map_links_sizes(pair in (1usize..8).prop_flat_map(|n| {
            (prop::collection::vec(0.0f32..1.0, n), prop::collection::vec(0.0f32..1.0, n))
        })) {
            prop_assert_eq!(pair.0.len(), pair.1.len());
        }

        #[test]
        fn oneof_picks_a_branch(v in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a < b);
            prop_assert!(a < b);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
