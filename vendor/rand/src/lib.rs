//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements exactly the subset of the `rand 0.8` API the
//! workspace consumes: [`rngs::StdRng`], [`Rng`], [`SeedableRng`] and
//! `gen` / `gen_range` over the primitive types used by the tensor layer.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! stream the real `StdRng` uses, but statistically strong, fast and fully
//! deterministic, which is all the workspace requires (experiments only need
//! *reproducible* randomness, not a specific stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// The core of a random number generator: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its "standard" distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled from their standard distribution.
pub trait StandardSample: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` via Lemire's multiply-shift reduction.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u: $t = StandardSample::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.gen_range(0..7usize) < 7);
            let v = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
