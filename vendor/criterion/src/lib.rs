//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//! Instead of criterion's statistical engine it runs each closure a small,
//! time-bounded number of iterations and prints the mean wall-clock time, so
//! `cargo bench` produces honest (if unsophisticated) numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    label: String,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count that fits within the
    /// group's measurement time, and prints the mean time per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up / calibration run.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measurement_time;
        let iters = (budget.as_nanos() / first.as_nanos()).clamp(1, 1000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let mean = start.elapsed() / iters;
        println!(
            "bench: {:<48} {:>12.3?} /iter ({} iters)",
            self.label, mean, iters
        );
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the target number of samples (accepted for API compatibility;
    /// the shim sizes iteration counts from the measurement time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the time budget each benchmark's measurement loop aims for.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, id),
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self
    }

    /// Runs one benchmark closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, id),
            measurement_time: self.measurement_time,
        };
        f(&mut bencher, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.default_measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            label: id.to_string(),
            measurement_time: self.default_measurement_time,
        };
        f(&mut bencher);
        self
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(
            runs >= 2,
            "calibration + measurement should run the closure"
        );
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("krum", 17).to_string(), "krum/17");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
