//! The TCP frame codec: length-prefixed envelopes over a byte stream.
//!
//! TCP is a byte stream — message boundaries must be reintroduced. Every
//! [`WireMessage`](garfield_net::WireMessage) travelling between
//! `garfield-node` processes is wrapped in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     frame length  (u32 LE — bytes after this field)
//! 4       4     sender id     (u32 LE — the NodeId the payload speaks as)
//! 8       8     tag           (u64 LE — the envelope tag, a training round)
//! 16      n−12  payload       (the PR 2 wire format, header included)
//! ```
//!
//! and every connection opens with a fixed-size hello identifying the
//! dialing node:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GARF"
//! 4       1     frame-format version (= [`WIRE_VERSION`])
//! 5       4     dialer node id (u32 LE)
//! ```
//!
//! Reads use `read_exact`, so partial reads (one frame split across many
//! TCP segments) and coalesced reads (several frames arriving back-to-back
//! in one segment) both reassemble correctly. The declared frame length is
//! capped against [`MAX_FRAME_BYTES`] *before* any allocation — a hostile
//! peer controls this prefix and must not be able to demand gigabytes with
//! four bytes.

use bytes::Bytes;
use garfield_net::{NetError, NetResult, NodeId, MAX_WIRE_VALUES, WIRE_HEADER_BYTES, WIRE_VERSION};
use std::io::{Read, Write};

/// Magic bytes opening every connection ("GARF").
pub const HELLO_MAGIC: [u8; 4] = *b"GARF";

/// Size of the connection hello in bytes.
pub const HELLO_BYTES: usize = 9;

/// Frame bytes that precede the payload (sender id + tag).
pub const FRAME_OVERHEAD: usize = 12;

/// Largest frame body (sender id + tag + payload) a reader accepts: the
/// frame overhead plus the largest encodable wire message.
pub const MAX_FRAME_BYTES: usize = FRAME_OVERHEAD + WIRE_HEADER_BYTES + 4 * MAX_WIRE_VALUES;

/// Writes the connection hello identifying `id` as the dialer.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_hello<W: Write>(writer: &mut W, id: NodeId) -> std::io::Result<()> {
    let mut buf = [0u8; HELLO_BYTES];
    buf[..4].copy_from_slice(&HELLO_MAGIC);
    buf[4] = WIRE_VERSION;
    buf[5..9].copy_from_slice(&id.0.to_le_bytes());
    writer.write_all(&buf)
}

/// Reads and validates a connection hello, returning the dialer's id.
///
/// # Errors
///
/// Returns [`NetError::Io`] on socket failures, [`NetError::WireVersion`]
/// for a version mismatch and [`NetError::WireKind`] for wrong magic (a
/// non-Garfield client knocked on the port).
pub fn read_hello<R: Read>(reader: &mut R) -> NetResult<NodeId> {
    let mut buf = [0u8; HELLO_BYTES];
    reader.read_exact(&mut buf)?;
    if buf[..4] != HELLO_MAGIC {
        return Err(NetError::WireKind(buf[0]));
    }
    if buf[4] != WIRE_VERSION {
        return Err(NetError::WireVersion(buf[4]));
    }
    Ok(NodeId(u32::from_le_bytes(
        buf[5..9].try_into().expect("4 hello bytes"),
    )))
}

/// Writes one frame, returning the total on-wire byte count.
///
/// The frame is assembled into a single buffer and written with one
/// `write_all`, so a frame is never interleaved with another writer's bytes
/// and small payloads do not fragment into several segments.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_frame<W: Write>(
    writer: &mut W,
    from: NodeId,
    tag: u64,
    payload: &[u8],
) -> std::io::Result<usize> {
    let body = FRAME_OVERHEAD + payload.len();
    debug_assert!(body <= MAX_FRAME_BYTES, "encode produced an oversize frame");
    let mut buf = Vec::with_capacity(4 + body);
    buf.extend_from_slice(&(body as u32).to_le_bytes());
    buf.extend_from_slice(&from.0.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(payload);
    writer.write_all(&buf)?;
    Ok(buf.len())
}

/// Reads one frame, returning `(sender, tag, payload, on-wire bytes)`.
///
/// # Errors
///
/// Returns [`NetError::Io`] on socket failures (including EOF mid-frame),
/// [`NetError::FrameTooLarge`] when the length prefix exceeds
/// [`MAX_FRAME_BYTES`] (checked before allocating) and
/// [`NetError::WireSize`] when it is too short to hold the frame overhead.
pub fn read_frame<R: Read>(reader: &mut R) -> NetResult<(NodeId, u64, Bytes, usize)> {
    // Length prefix + frame overhead land in one stack buffer; the payload is
    // then read *directly* into its final exact-size allocation. The previous
    // implementation read the whole body into one heap buffer and
    // `split_off` the payload — a second full-payload copy per message.
    let mut head = [0u8; 4 + FRAME_OVERHEAD];
    reader.read_exact(&mut head[..4])?;
    let body = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    if body > MAX_FRAME_BYTES {
        return Err(NetError::FrameTooLarge {
            declared: body,
            max: MAX_FRAME_BYTES,
        });
    }
    if body < FRAME_OVERHEAD {
        return Err(NetError::WireSize {
            expected: FRAME_OVERHEAD,
            actual: body,
        });
    }
    reader.read_exact(&mut head[4..])?;
    let from = NodeId(u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")));
    let tag = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; body - FRAME_OVERHEAD];
    reader.read_exact(&mut payload)?;
    Ok((from, tag, Bytes::from(payload), 4 + body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_net::{MsgKind, WireMessage};

    /// A reader that hands out at most `chunk` bytes per call: the
    /// worst-case fragmentation a TCP stream can produce.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frames_round_trip_even_one_byte_at_a_time() {
        let msg = WireMessage::new(MsgKind::GradientReply, 9, 0.25, vec![1.0, -2.0, 3.5]);
        let payload = msg.encode();
        let mut wire = Vec::new();
        let written = write_frame(&mut wire, NodeId(7), 9, &payload).unwrap();
        assert_eq!(written, wire.len());

        for chunk in [1, 3, 1024] {
            let mut reader = Trickle {
                data: &wire,
                pos: 0,
                chunk,
            };
            let (from, tag, body, on_wire) = read_frame(&mut reader).unwrap();
            assert_eq!(from, NodeId(7));
            assert_eq!(tag, 9);
            assert_eq!(on_wire, wire.len());
            assert_eq!(WireMessage::decode(&body).unwrap(), msg);
        }
    }

    #[test]
    fn back_to_back_frames_in_one_buffer_reassemble() {
        let mut wire = Vec::new();
        for round in 0..5u64 {
            let payload = WireMessage::control(MsgKind::ModelRequest, round).encode();
            write_frame(&mut wire, NodeId(round as u32), round, &payload).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for round in 0..5u64 {
            let (from, tag, body, _) = read_frame(&mut cursor).unwrap();
            assert_eq!(from, NodeId(round as u32));
            assert_eq!(tag, round);
            assert_eq!(WireMessage::decode(&body).unwrap().round, round);
        }
        assert!(read_frame(&mut cursor).is_err(), "stream exhausted");
    }

    #[test]
    fn hello_round_trips_and_rejects_strangers() {
        let mut wire = Vec::new();
        write_hello(&mut wire, NodeId(3)).unwrap();
        assert_eq!(wire.len(), HELLO_BYTES);
        assert_eq!(
            read_hello(&mut std::io::Cursor::new(&wire)).unwrap(),
            NodeId(3)
        );

        let mut bad_magic = wire.clone();
        bad_magic[0] = b'H';
        assert!(matches!(
            read_hello(&mut std::io::Cursor::new(&bad_magic)),
            Err(NetError::WireKind(_))
        ));
        let mut bad_version = wire.clone();
        bad_version[4] = WIRE_VERSION + 1;
        assert!(matches!(
            read_hello(&mut std::io::Cursor::new(&bad_version)),
            Err(NetError::WireVersion(_))
        ));
        assert!(matches!(
            read_hello(&mut std::io::Cursor::new(&wire[..4])),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn hostile_frame_lengths_are_rejected_before_allocation() {
        // Length prefix demanding ~4 GiB: rejected from the 4-byte header
        // alone, without touching the (absent) body.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(&wire)),
            Err(NetError::FrameTooLarge { .. })
        ));

        // A frame too short to even carry the sender id + tag.
        let mut runt = Vec::new();
        runt.extend_from_slice(&4u32.to_le_bytes());
        runt.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(&runt)),
            Err(NetError::WireSize { .. })
        ));

        // EOF mid-frame is an I/O error, not a panic.
        let msg = WireMessage::control(MsgKind::Shutdown, 0).encode();
        let mut truncated = Vec::new();
        write_frame(&mut truncated, NodeId(0), 0, &msg).unwrap();
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(&truncated)),
            Err(NetError::Io(_))
        ));
    }
}
