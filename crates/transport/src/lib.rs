//! # garfield-transport
//!
//! Real TCP transport for the Garfield-rs reproduction of *"Garfield:
//! System Support for Byzantine Machine Learning"* (DSN 2021) — the layer
//! that takes the threaded actor runtime of `garfield-runtime` and spans it
//! across OS processes, the way the paper's workers and parameter servers
//! talk gRPC across machines.
//!
//! Three pieces:
//!
//! * [`ClusterSpec`] — the static `node id → host:port` map every process
//!   of a deployment shares (the paper's Controller cluster definition);
//! * [`TcpTransport`] — the [`garfield_net::Transport`] implementation over
//!   `std::net` sockets: length-prefixed frames of the PR 2 wire format,
//!   one accept loop plus per-peer reader/writer threads, bounded outbound
//!   queues, dial-with-retry, and crash semantics where a dead peer is
//!   *silent*, never an error;
//! * the **`garfield-node` binary** — one process per node: give it a role
//!   (`server`/`worker`), a rank, a cluster spec and an
//!   [`ExperimentConfig`](garfield_core::ExperimentConfig) JSON, and it
//!   runs that node's actor loop over TCP. `n` of them on localhost (or a
//!   real cluster) perform the same SSMW/MSMW training the in-process
//!   [`LiveExecutor`](garfield_runtime::LiveExecutor) runs on threads — and
//!   a fault-free full-quorum run produces a bit-identical final model.
//!
//! # Quick example (in-process, two endpoints)
//!
//! ```rust
//! use garfield_net::{NodeId, Transport};
//! use garfield_transport::{ClusterSpec, TcpOptions, TcpTransport};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let spec = ClusterSpec::localhost(2)?; // ports picked by the OS
//! let a = TcpTransport::bind(&spec, NodeId(0), TcpOptions::default())?;
//! let b = TcpTransport::bind(&spec, NodeId(1), TcpOptions::default())?;
//! a.send(NodeId(1), 42, Bytes::from_static(b"gradient bytes"))?;
//! let envelope = b.recv_timeout(Duration::from_secs(5))?;
//! assert_eq!(envelope.from, NodeId(0));
//! assert_eq!(envelope.tag, 42);
//! # Ok::<(), garfield_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod report;
mod spec;
mod tcp;

pub use report::result_json;
pub use spec::ClusterSpec;
pub use tcp::{TcpOptions, TcpTransport};
