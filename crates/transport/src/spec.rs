//! The static cluster specification: which node listens where.
//!
//! This is the multi-process analogue of the paper's Controller cluster
//! definition (§3.2): a plain text file mapping every node id to a socket
//! address, shared by all `garfield-node` processes of one deployment.
//!
//! ```text
//! # 1 server + 4 workers on localhost
//! 0 127.0.0.1:4700
//! 1 127.0.0.1:4701
//! 2 127.0.0.1:4702
//! 3 127.0.0.1:4703
//! 4 127.0.0.1:4704
//! ```
//!
//! Node ids follow the layout of
//! [`NodeLayout`](garfield_runtime::NodeLayout): server replicas first,
//! workers after.

use garfield_net::{NetError, NetResult, NodeId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;

/// A static `node id → socket address` map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSpec {
    entries: BTreeMap<NodeId, SocketAddr>,
}

impl ClusterSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        ClusterSpec::default()
    }

    /// Adds (or replaces) a node's address, builder style.
    pub fn with(mut self, id: NodeId, addr: SocketAddr) -> Self {
        self.entries.insert(id, addr);
        self
    }

    /// Builds a spec of `n` nodes (ids `0..n`) on `127.0.0.1`, with ports
    /// picked by the OS.
    ///
    /// Each port is discovered by binding an ephemeral listener and
    /// immediately releasing it, so this is best-effort: another process
    /// could grab a port in the window before the `garfield-node` children
    /// bind. Good enough for tests and localhost walkthroughs; production
    /// deployments write explicit specs.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the OS refuses a loopback bind.
    pub fn localhost(n: usize) -> NetResult<ClusterSpec> {
        let mut spec = ClusterSpec::new();
        let mut holds = Vec::with_capacity(n);
        for id in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            spec.entries
                .insert(NodeId(id as u32), listener.local_addr()?);
            holds.push(listener); // hold all n before releasing any
        }
        Ok(spec)
    }

    /// The address `id` listens on.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for ids the spec does not name.
    pub fn addr(&self, id: NodeId) -> NetResult<SocketAddr> {
        self.entries
            .get(&id)
            .copied()
            .ok_or(NetError::UnknownNode(id))
    }

    /// All `(id, addr)` pairs except `id` itself, in id order.
    pub fn peers(&self, id: NodeId) -> Vec<(NodeId, SocketAddr)> {
        self.entries
            .iter()
            .filter(|(&n, _)| n != id)
            .map(|(&n, &a)| (n, a))
            .collect()
    }

    /// All node ids, in order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.entries.keys().copied().collect()
    }

    /// Number of nodes in the spec.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the spec names no node.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the spec in its file format (one `id addr` line per node).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(24 * self.entries.len());
        for (id, addr) in &self.entries {
            let _ = writeln!(out, "{} {addr}", id.0);
        }
        out
    }

    /// Parses the file format: one `id host:port` pair per line, `#`
    /// comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] naming the first malformed line, and
    /// [`NetError::DuplicateNode`] when an id appears twice.
    pub fn parse(text: &str) -> NetResult<ClusterSpec> {
        let mut spec = ClusterSpec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |what: &str| NetError::Io(format!("cluster spec line {}: {what}", number + 1));
            let mut parts = line.split_whitespace();
            let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(bad("expected '<node id> <host:port>'"));
            };
            let id = NodeId(
                id.parse::<u32>()
                    .map_err(|e| bad(&format!("node id '{id}': {e}")))?,
            );
            let addr = addr
                .parse::<SocketAddr>()
                .map_err(|e| bad(&format!("address '{addr}': {e}")))?;
            if spec.entries.insert(id, addr).is_some() {
                return Err(NetError::DuplicateNode(id));
            }
        }
        Ok(spec)
    }

    /// Loads a spec file (see [`ClusterSpec::parse`] for the format).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> NetResult<ClusterSpec> {
        ClusterSpec::parse(&std::fs::read_to_string(path)?)
    }

    /// Writes the spec to a file in its text format.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> NetResult<()> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_round_trips() {
        let spec = ClusterSpec::new()
            .with(NodeId(0), "127.0.0.1:4700".parse().unwrap())
            .with(NodeId(2), "10.0.0.7:80".parse().unwrap());
        let back = ClusterSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.len(), 2);
        assert_eq!(back.addr(NodeId(2)).unwrap().port(), 80);
        assert!(matches!(
            back.addr(NodeId(1)),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn parse_skips_comments_and_rejects_garbage() {
        let spec = ClusterSpec::parse(
            "# a comment\n\n0 127.0.0.1:4700  # trailing comment\n1 127.0.0.1:4701\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 2);
        assert!(ClusterSpec::parse("0").is_err());
        assert!(ClusterSpec::parse("zero 127.0.0.1:1").is_err());
        assert!(ClusterSpec::parse("0 not-an-addr").is_err());
        assert!(ClusterSpec::parse("0 1.2.3.4:1 extra").is_err());
        assert_eq!(
            ClusterSpec::parse("0 127.0.0.1:1\n0 127.0.0.1:2").unwrap_err(),
            NetError::DuplicateNode(NodeId(0))
        );
        assert!(ClusterSpec::parse("").unwrap().is_empty());
    }

    #[test]
    fn duplicate_node_ids_fail_loudly_never_shadow() {
        // A spec naming the same rank twice must be a dedicated error — a
        // silently shadowed endpoint would send one node's traffic to
        // another's port. Same or different address, separated or adjacent,
        // commented or not: always DuplicateNode, naming the culprit.
        for text in [
            "0 127.0.0.1:1\n0 127.0.0.1:2",                // different addresses
            "0 127.0.0.1:1\n0 127.0.0.1:1",                // identical lines
            "0 127.0.0.1:1\n1 127.0.0.1:2\n0 127.0.0.1:3", // separated
            "# c\n0 127.0.0.1:1 # first\n\n0 127.0.0.1:2 # again",
        ] {
            assert_eq!(
                ClusterSpec::parse(text).unwrap_err(),
                NetError::DuplicateNode(NodeId(0)),
                "spec must reject:\n{text}"
            );
        }
        // load() propagates the same error from a file.
        let dir = std::env::temp_dir().join(format!("garfield-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.txt");
        std::fs::write(&path, "3 127.0.0.1:1\n3 127.0.0.1:2").unwrap();
        assert_eq!(
            ClusterSpec::load(&path).unwrap_err(),
            NetError::DuplicateNode(NodeId(3))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn localhost_spec_assigns_distinct_loopback_ports() {
        let spec = ClusterSpec::localhost(5).unwrap();
        assert_eq!(spec.len(), 5);
        let mut ports: Vec<u16> = spec
            .ids()
            .iter()
            .map(|&id| spec.addr(id).unwrap().port())
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 5, "ports must be distinct");
        assert!(spec.addr(NodeId(0)).unwrap().ip().is_loopback());
        assert_eq!(spec.peers(NodeId(0)).len(), 4);
    }
}
