//! `garfield-node`: one Garfield node per OS process, over TCP.
//!
//! The multi-process face of the live runtime: every worker and parameter
//! server replica of an experiment runs as its own `garfield-node` process,
//! exchanging wire messages over real sockets according to a shared cluster
//! spec — the paper's deployment shape, on localhost or a real cluster.
//!
//! ```console
//! garfield-node --role server --rank 0 --cluster cluster.txt \
//!               --config experiment.json --system ssmw --out result.json
//! garfield-node --role worker --rank 3 --cluster cluster.txt \
//!               --config experiment.json --system ssmw
//! ```
//!
//! * `--cluster` — `node id → host:port` lines (see `ClusterSpec`); ids are
//!   laid out servers-first (`NodeLayout`): server replica `i` is node `i`,
//!   worker `j` is node `servers + j`.
//! * `--config` — an `ExperimentConfig` as JSON (`ExperimentConfig::to_json`).
//! * `--system` — `vanilla`, `ssmw`, `msmw` or `speculative` (the systems
//!   the live runtime implements). The speculative form accepts its robust
//!   fallback inline — `speculative(multi-krum)` overrides the config's
//!   `gradient_gar` — while bare `speculative` falls back to the config's
//!   `gradient_gar` as-is.
//! * `--gradient-quorum` — override `q`; `n − f` exercises the asynchronous
//!   liveness condition (the run survives `f` dead workers).
//! * `--shards` — override the config's `shards`: split the parameter vector
//!   across that many shard servers (server rank `i` owns shard `i`).
//!   Requires a single-replica system and a coordinate-decomposable gradient
//!   GAR (average, median, or speculative over one of those) — enforced by
//!   config validation. Each shard server writes its *slice* to `--out`;
//!   stitching the slices together in rank order yields the full model,
//!   bit-identical to an unsharded run of the same seed at full quorum.
//!   Sharded servers reject `--checkpoint`/`--resume` (checkpoints hold
//!   full-model state).
//! * `--round-deadline-ms` / `--idle-timeout-ms` — pull deadline (servers)
//!   and inbox idle backstop (workers).
//! * `--retry-ms` — how long a server pull waits before re-asking peers
//!   that have not replied (idempotent re-requests; what lets a respawned
//!   worker contribute to the round whose original request died with it).
//! * `--delay-ms` — straggler injection: this node services every request
//!   (worker) or starts every round (server) that many milliseconds late —
//!   the CLI face of the runtime's `Fault::Delay`. Pacing a run this way
//!   never changes reply *contents*, so full-quorum results stay
//!   bit-identical; the recovery tests use it to pin kill timing.
//! * `--checkpoint <dir>` / `--checkpoint-every <k>` — servers persist
//!   their training state (model, optimizer, RNG streams, round) to
//!   `<dir>/checkpoint.bin` atomically after every `k`-th iteration.
//! * `--resume <dir>` — load the checkpoint in `<dir>` (if one exists) and
//!   continue training from its round instead of from scratch. The same
//!   command line therefore works for the first launch *and* for every
//!   respawn after a SIGKILL. Workers are stateless repliers; they accept
//!   the flag and simply rejoin.
//! * `--out` — servers write a JSON result (final accuracy + the final
//!   model as exact `f32` bit patterns, for bit-identical comparison
//!   against an in-process run of the same seed).
//! * `--metrics-addr` — bind a scrape endpoint (e.g. `127.0.0.1:9464`,
//!   port 0 for ephemeral) serving Prometheus text at `/metrics`, the
//!   flight recorder at `/flight` and a liveness probe at `/healthz` (node
//!   id + current round) while the node trains. The bound address is
//!   announced on stderr (`garfield-node: metrics on …`) and, for servers
//!   writing `--out`, recorded in the result JSON's `metrics_addr` field so
//!   tools never parse stderr for it.
//! * `--flight-dir` — dump this node's flight recorder as
//!   `<dir>/flight-<role><rank>.jsonl` at exit (and on panic), for
//!   `expfig trace <dir>` to merge into a cross-node timeline.
//!
//! Exit status: `0` on success, `1` on a runtime/liveness failure, `2` on
//! bad usage.

use garfield_core::{
    shard_server, Checkpoint, CheckpointPolicy, Deployment, ExperimentConfig, ShardMap, SystemSpec,
};
use garfield_net::NodeId;
use garfield_obs::flight;
use garfield_obs::http::MetricsServer;
use garfield_runtime::node::{fault_rng_streams, NodeLayout};
use garfield_runtime::{Fault, ServerNode, WorkerNode};
use garfield_transport::{result_json, ClusterSpec, TcpOptions, TcpTransport};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    role: String,
    rank: usize,
    cluster: String,
    config: String,
    system: SystemSpec,
    gradient_quorum: Option<usize>,
    shards: Option<usize>,
    round_deadline: Duration,
    idle_timeout: Duration,
    request_retry: Duration,
    delay: Option<u64>,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    resume: Option<String>,
    out: Option<String>,
    metrics_addr: Option<String>,
    flight_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: garfield-node --role <server|worker> --rank <n> --cluster <file> \
         --config <file> --system <vanilla|ssmw|msmw|speculative[(<gar>)]> \
         [--gradient-quorum <q>] [--shards <s>] \
         [--round-deadline-ms <ms>] [--idle-timeout-ms <ms>] [--retry-ms <ms>] \
         [--delay-ms <ms>] [--checkpoint <dir>] [--checkpoint-every <k>] \
         [--resume <dir>] [--out <file>] [--metrics-addr <host:port>] \
         [--flight-dir <dir>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| -> Option<&str> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
    };
    let required = |name: &str| -> &str {
        value(name).unwrap_or_else(|| {
            eprintln!("missing required flag {name}");
            usage();
        })
    };
    let parsed = |name: &str, raw: &str| -> usize {
        raw.parse().unwrap_or_else(|e| {
            eprintln!("flag {name}: {e}");
            usage();
        })
    };
    let role = required("--role").to_string();
    if role != "server" && role != "worker" {
        eprintln!("--role must be 'server' or 'worker', got '{role}'");
        usage();
    }
    Args {
        rank: parsed("--rank", required("--rank")),
        cluster: required("--cluster").to_string(),
        config: required("--config").to_string(),
        system: required("--system").parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        }),
        gradient_quorum: value("--gradient-quorum").map(|v| parsed("--gradient-quorum", v)),
        shards: value("--shards").map(|v| parsed("--shards", v)),
        round_deadline: Duration::from_millis(
            value("--round-deadline-ms").map_or(5_000, |v| parsed("--round-deadline-ms", v) as u64),
        ),
        idle_timeout: Duration::from_millis(
            value("--idle-timeout-ms").map_or(10_000, |v| parsed("--idle-timeout-ms", v) as u64),
        ),
        request_retry: Duration::from_millis(
            value("--retry-ms").map_or(1_250, |v| parsed("--retry-ms", v) as u64),
        ),
        delay: value("--delay-ms").map(|v| parsed("--delay-ms", v) as u64),
        checkpoint: value("--checkpoint").map(str::to_string),
        checkpoint_every: value("--checkpoint-every")
            .map_or(1, |v| parsed("--checkpoint-every", v)),
        resume: value("--resume").map(str::to_string),
        out: value("--out").map(str::to_string),
        metrics_addr: value("--metrics-addr").map(str::to_string),
        flight_dir: value("--flight-dir").map(str::to_string),
        role,
    }
}

/// What [`setup_obs`] arranged: where to dump the flight recorder at clean
/// exit, and the scrape endpoint's *bound* address (port 0 resolved).
#[derive(Default)]
struct ObsSetup {
    flight_dump: Option<PathBuf>,
    metrics_addr: Option<std::net::SocketAddr>,
}

/// Turns the observability layer on when either flag asks for it: pins the
/// flight-recorder epoch, attributes events and `/healthz` to this process's
/// node id, binds the scrape endpoint, and (with `--flight-dir`) arranges a
/// JSONL dump on panic.
fn setup_obs(args: &Args, id: NodeId) -> Result<ObsSetup, String> {
    if args.metrics_addr.is_none() && args.flight_dir.is_none() {
        return Ok(ObsSetup::default());
    }
    garfield_obs::enable();
    flight::set_default_node(id.0);
    garfield_obs::http::set_health_node(id.0);
    let metrics_addr = match &args.metrics_addr {
        Some(addr) => {
            let server =
                MetricsServer::start(addr).map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            // Announce the *bound* address so launchers using port 0 can find
            // the scrape endpoint; servers also record it in the --out JSON.
            eprintln!("garfield-node: metrics on http://{}/metrics", server.addr());
            Some(server.addr())
        }
        None => None,
    };
    let flight_dump = args
        .flight_dir
        .as_ref()
        .map(|dir| PathBuf::from(dir).join(format!("flight-{}{}.jsonl", args.role, args.rank)));
    if let Some(path) = &flight_dump {
        flight::install_panic_hook(path.clone());
    }
    Ok(ObsSetup {
        flight_dump,
        metrics_addr,
    })
}

/// Writes the flight recorder to `path` at clean exit (the panic hook covers
/// the other way out).
fn dump_flight(dump: &Option<PathBuf>) -> Result<(), String> {
    match dump {
        Some(path) => flight::write_dump(path).map_err(|e| format!("{}: {e}", path.display())),
        None => Ok(()),
    }
}

fn run(args: Args) -> Result<(), String> {
    let system = args.system.system;
    if !garfield_core::live_supported(system) {
        return Err(format!(
            "the live runtime implements vanilla, ssmw, msmw and speculative (requested {system})"
        ));
    }
    let config_text =
        std::fs::read_to_string(&args.config).map_err(|e| format!("{}: {e}", args.config))?;
    let mut config = ExperimentConfig::from_json(&config_text).map_err(|e| e.to_string())?;
    args.system.apply(&mut config);
    if let Some(shards) = args.shards {
        config.shards = shards;
    }
    config.validate(system).map_err(|e| e.to_string())?;
    if config.shards > 1 && (args.checkpoint.is_some() || args.resume.is_some()) {
        // A checkpoint records full-model training state; shard servers own
        // slices. Refuse loudly instead of resuming into a dimension error.
        return Err(
            "parameter-sharded deployments (--shards > 1) do not support \
             --checkpoint/--resume: checkpoints hold full-model state"
                .to_string(),
        );
    }
    let spec = ClusterSpec::load(&args.cluster).map_err(|e| format!("{}: {e}", args.cluster))?;

    let layout = NodeLayout::of(system, &config);
    if spec.len() < layout.len() {
        return Err(format!(
            "cluster spec names {} nodes but the experiment deploys {} ({} servers + {} workers)",
            spec.len(),
            layout.len(),
            layout.server_ids.len(),
            layout.worker_ids.len()
        ));
    }

    // Same construction path as the in-process executor: every process
    // builds the full deployment from the shared config (identical shards,
    // initial model and attack installation), then keeps only its node.
    let parts = Deployment::new(config.clone())
        .map_err(|e| e.to_string())?
        .into_live_parts();
    let (mut worker_rngs, mut server_rngs) = fault_rng_streams(&config, layout.server_ids.len());

    match args.role.as_str() {
        "worker" => {
            if args.rank >= layout.worker_ids.len() {
                return Err(format!(
                    "worker rank {} out of range (nw = {})",
                    args.rank,
                    layout.worker_ids.len()
                ));
            }
            let id = layout.worker_ids[args.rank];
            if args.resume.is_some() {
                // Workers are stateless repliers: the model arrives with
                // every request and shards derive from the shared config, so
                // "resuming" a worker is simply rejoining the cluster.
                eprintln!(
                    "garfield-node: worker {} rejoining (workers carry no checkpointable state)",
                    args.rank
                );
            }
            let obs = setup_obs(&args, id)?;
            let transport =
                TcpTransport::bind(&spec, id, TcpOptions::default()).map_err(|e| e.to_string())?;
            eprintln!(
                "garfield-node: worker {} up as node {id} on {}",
                args.rank,
                transport.local_addr()
            );
            let node = WorkerNode {
                worker: parts
                    .workers
                    .into_iter()
                    .nth(args.rank)
                    .expect("rank checked"),
                fault: args.delay.map(|millis| Fault::Delay { millis }),
                fault_rng: worker_rngs.swap_remove(args.rank),
                idle_timeout: args.idle_timeout,
                // Validation confines shards > 1 to single-replica systems,
                // so the max(1) covers MSMW too.
                shards: config.shards.max(1),
                dimension: parts.dimension,
            };
            let telemetry = node.run(Box::new(transport));
            eprintln!(
                "garfield-node: worker {} done — {} msgs / {} B sent, {} msgs / {} B received, {} on-wire B, {} dropped",
                args.rank,
                telemetry.messages_sent,
                telemetry.bytes_sent,
                telemetry.messages_received,
                telemetry.bytes_received,
                telemetry.wire_bytes_sent(),
                telemetry.messages_dropped(),
            );
            dump_flight(&obs.flight_dump)
        }
        "server" => {
            if args.rank >= layout.server_ids.len() {
                return Err(format!(
                    "server rank {} out of range ({} replicas run live under {})",
                    args.rank,
                    layout.server_ids.len(),
                    system
                ));
            }
            let id = layout.server_ids[args.rank];
            // Load the resume checkpoint *before* binding the port, so a
            // corrupt or foreign checkpoint fails fast. A missing file is a
            // fresh start: the same command line serves first launch and
            // respawn.
            let resume = match &args.resume {
                Some(dir) => {
                    let loaded = Checkpoint::load_if_present(dir).map_err(|e| e.to_string())?;
                    match &loaded {
                        Some(cp) => {
                            cp.validate_for(system.as_str(), config.seed)
                                .map_err(|e| e.to_string())?;
                            if cp.round >= config.iterations as u64 {
                                // A supervisor blindly restarting after a
                                // *successful* run lands here: every
                                // iteration is already done. Exit cleanly
                                // without touching --out — rewriting it
                                // would clobber the recorded result with an
                                // empty zero-accuracy trace.
                                eprintln!(
                                    "garfield-node: server {} checkpoint in {dir} is already \
                                     complete (round {} of {}); nothing to resume",
                                    args.rank, cp.round, config.iterations
                                );
                                return Ok(());
                            }
                            eprintln!(
                                "garfield-node: server {} resuming from {dir} at round {}",
                                args.rank, cp.round
                            );
                        }
                        None => eprintln!(
                            "garfield-node: server {} found no checkpoint in {dir}, starting fresh",
                            args.rank
                        ),
                    }
                    loaded
                }
                None => None,
            };
            let obs = setup_obs(&args, id)?;
            let transport =
                TcpTransport::bind(&spec, id, TcpOptions::default()).map_err(|e| e.to_string())?;
            eprintln!(
                "garfield-node: server {} up as node {id} on {}",
                args.rank,
                transport.local_addr()
            );
            // Parameter sharding: this rank's server owns one slice of the
            // template server's initial model, built through the same
            // constructor as the in-process executor (bit-identity depends
            // on it). Shard servers are not replicas — the other server ids
            // become sticky-OR siblings rather than model-merge peers.
            let shard_map = (config.shards > 1)
                .then(|| ShardMap::new(parts.dimension, config.shards))
                .transpose()
                .map_err(|e| e.to_string())?;
            let server = match &shard_map {
                Some(map) => {
                    let template = parts
                        .servers
                        .into_iter()
                        .next()
                        .expect("deployments build at least one server");
                    let initial = template.honest().parameters();
                    shard_server(map.spec(args.rank), initial.data(), &config)
                }
                None => parts
                    .servers
                    .into_iter()
                    .nth(args.rank)
                    .expect("rank checked"),
            };
            let others: Vec<NodeId> = layout
                .server_ids
                .iter()
                .copied()
                .filter(|&p| p != id)
                .collect();
            let (peer_ids, shard_siblings) = if shard_map.is_some() {
                (Vec::new(), others)
            } else {
                (others, Vec::new())
            };
            let node = ServerNode {
                index: args.rank,
                server,
                system,
                config: config.clone(),
                worker_ids: layout.worker_ids.clone(),
                peer_ids,
                shard: shard_map.as_ref().map(|map| map.spec(args.rank)),
                shard_siblings,
                gradient_quorum: args
                    .gradient_quorum
                    .unwrap_or_else(|| config.gradient_quorum(system)),
                round_deadline: args.round_deadline,
                fault: args.delay.map(|millis| Fault::Delay { millis }),
                fault_rng: server_rngs.swap_remove(args.rank),
                // Accuracy needs the full model: no shard server evaluates.
                test_batch: (args.rank == 0 && shard_map.is_none()).then_some(parts.test_batch),
                // No controller process exists: the coordinating replica
                // winds every worker down when it exits.
                shutdown_targets: if args.rank == 0 {
                    layout.worker_ids.clone()
                } else {
                    Vec::new()
                },
                request_retry: args.request_retry,
                checkpoint: args
                    .checkpoint
                    .as_ref()
                    .map(|dir| CheckpointPolicy::new(dir, args.checkpoint_every)),
                resume,
            };
            let run = node.run(Box::new(transport)).map_err(|e| e.to_string())?;
            eprintln!(
                "garfield-node: server {} done — {} iterations{}, final accuracy {:.4}, mean round {:.1} ms, {} on-wire B sent, {} checkpoints, {} retried requests",
                args.rank,
                run.trace.len(),
                match run.resumed_from {
                    Some(round) => format!(" (resumed at {round})"),
                    None => String::new(),
                },
                run.trace.final_accuracy(),
                1e3 * run.round_latencies.iter().sum::<f64>()
                    / run.round_latencies.len().max(1) as f64,
                run.telemetry.wire_bytes_sent(),
                run.telemetry.checkpoints_written,
                run.telemetry.requests_retried,
            );
            if let Some(path) = &args.out {
                std::fs::write(path, result_json(system, &run, obs.metrics_addr))
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            dump_flight(&obs.flight_dump)
        }
        _ => unreachable!("role validated in parse_args"),
    }
}

fn main() {
    if let Err(message) = run(parse_args()) {
        eprintln!("garfield-node: error: {message}");
        std::process::exit(1);
    }
}
