//! The TCP implementation of [`Transport`]: real sockets, real processes.
//!
//! Each endpoint owns one listening socket (its address in the
//! [`ClusterSpec`]) plus, per peer, a dedicated writer thread behind a
//! *bounded* outbound queue. Connections are simplex: outbound frames
//! travel over the connection this endpoint dialed, inbound frames arrive
//! on connections accepted from peers, and every connection opens with a
//! hello naming the dialer. This keeps connection establishment free of
//! rendezvous ordering — any subset of nodes can start in any order, and
//! dial-with-retry rides out peers that are still booting.
//!
//! Failure semantics mirror the in-process router, as the [`Transport`]
//! contract demands:
//!
//! * a send to a slow or dead peer never blocks the actor — the bounded
//!   queue absorbs bursts and overflow is *dropped* (counted per peer), so
//!   a stalled socket cannot stall `PullRound`;
//! * receives respect their deadline no matter what any peer does;
//! * [`Transport::crash`] silences the endpoint: writer threads stop, the
//!   listener closes, and peers notice only through their own quorums.

use crate::frame::{read_frame, read_hello, write_frame, write_hello};
use crate::spec::ClusterSpec;
use bytes::Bytes;
use garfield_net::{
    Envelope, NetError, NetResult, NodeId, PeerCounterMap, PeerCounters, Transport,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of a TCP endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Outbound frames buffered per peer before overflow is dropped. The
    /// bound is what keeps a dead peer from retaining unbounded memory.
    pub outbound_queue: usize,
    /// Total time a writer keeps re-dialing an unreachable peer before
    /// giving up on the frame that triggered the dial.
    pub dial_timeout: Duration,
    /// Pause between dial attempts.
    pub dial_backoff: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            outbound_queue: 256,
            dial_timeout: Duration::from_secs(10),
            dial_backoff: Duration::from_millis(25),
        }
    }
}

/// Per-peer `garfield-obs` handles of one TCP endpoint: the live outbound
/// queue depth and the dial-retry count toward that peer. Registered once
/// at [`TcpTransport::bind`]; bumped with relaxed atomics afterwards.
struct TcpPeerObs {
    queue_depth: garfield_obs::Gauge,
    dial_retries: garfield_obs::Counter,
}

impl TcpPeerObs {
    fn register(peer: NodeId) -> Self {
        let peer = peer.0.to_string();
        let labels: &[(&'static str, &str)] = &[("peer", peer.as_str())];
        TcpPeerObs {
            queue_depth: garfield_obs::metrics::gauge(
                "garfield_outbound_queue_depth",
                "Frames currently buffered in the bounded outbound queue, by \
                 destination peer.",
                labels,
            ),
            dial_retries: garfield_obs::metrics::counter(
                "garfield_dial_retries_total",
                "Failed dial attempts that were retried, by destination peer.",
                labels,
            ),
        }
    }
}

/// State shared between the endpoint and its I/O threads.
struct Shared {
    id: NodeId,
    crashed: AtomicBool,
    /// Graceful-close flag: writers drain their queues onto already-open
    /// connections but stop dialing/redialing, so dropping the endpoint
    /// flushes in-flight control messages without blocking on dead peers.
    closing: AtomicBool,
    /// Frames accepted by `send` whose writer has not yet resolved them
    /// (written or dropped); `flush` waits on this reaching zero so counter
    /// snapshots cover the queued tail.
    pending: AtomicU64,
    counters: PeerCounterMap,
    obs: HashMap<NodeId, TcpPeerObs>,
}

impl Shared {
    fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn is_closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    fn queue_depth(&self, peer: NodeId, delta: f64) {
        if let Some(obs) = self.obs.get(&peer) {
            obs.queue_depth.add(delta);
        }
    }
}

/// One node's TCP endpoint: a listener, per-peer writers, one inbox.
pub struct TcpTransport {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    inbound: Receiver<Envelope>,
    /// Keeps the inbox connected even while no reader thread is alive
    /// (e.g. before the first peer dials in).
    _inbound_keepalive: Sender<Envelope>,
    outbound: Mutex<HashMap<NodeId, SyncSender<(u64, Bytes)>>>,
    writers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds `id`'s listening socket from the spec and starts the accept
    /// loop and one writer per peer (which dial lazily, with retry, on the
    /// first frame toward that peer).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] when the spec does not name `id`
    /// and [`NetError::Io`] when the listener cannot bind.
    pub fn bind(spec: &ClusterSpec, id: NodeId, options: TcpOptions) -> NetResult<TcpTransport> {
        let listener = TcpListener::bind(spec.addr(id)?)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            id,
            crashed: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            counters: PeerCounterMap::new(),
            obs: spec
                .peers(id)
                .into_iter()
                .map(|(peer, _)| (peer, TcpPeerObs::register(peer)))
                .collect(),
        });
        let known: Arc<HashSet<NodeId>> = Arc::new(spec.ids().into_iter().collect());

        let (inbound_tx, inbound_rx) = std::sync::mpsc::channel();
        {
            let shared = Arc::clone(&shared);
            let inbound_tx = inbound_tx.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.is_crashed() {
                        break; // listener drops here: the port goes silent
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&shared);
                    let tx = inbound_tx.clone();
                    let known = Arc::clone(&known);
                    std::thread::spawn(move || reader_loop(stream, &shared, &tx, &known));
                }
            });
        }

        let mut outbound = HashMap::new();
        let mut writers = Vec::new();
        for (peer, addr) in spec.peers(id) {
            let (tx, rx) = sync_channel(options.outbound_queue.max(1));
            let shared = Arc::clone(&shared);
            writers.push(std::thread::spawn(move || {
                writer_loop(peer, addr, &rx, &shared, options)
            }));
            outbound.insert(peer, tx);
        }

        Ok(TcpTransport {
            shared,
            local_addr,
            inbound: inbound_rx,
            _inbound_keepalive: inbound_tx,
            outbound: Mutex::new(outbound),
            writers: Mutex::new(writers),
        })
    }

    /// The address this endpoint actually listens on (ports picked by the
    /// OS are resolved here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Transport for TcpTransport {
    fn local_id(&self) -> NodeId {
        self.shared.id
    }

    fn send(&self, to: NodeId, tag: u64, payload: Bytes) -> NetResult<()> {
        if self.shared.is_crashed() {
            return Err(NetError::Unreachable {
                from: self.shared.id,
                to,
            });
        }
        let outbound = self.outbound.lock();
        let Some(tx) = outbound.get(&to) else {
            return Err(NetError::UnknownNode(to));
        };
        match tx.try_send((tag, payload)) {
            Ok(()) => {
                self.shared.pending.fetch_add(1, Ordering::SeqCst);
                self.shared.queue_depth(to, 1.0);
                Ok(())
            }
            // A full queue (slow peer) or a dead writer (late crash race):
            // the frame is dropped and the sender's quorum rides it out,
            // exactly like a message to a crashed router node.
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.counters.record_drop_at(to, tag);
                Ok(())
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        if self.shared.is_crashed() {
            // A crashed node observes nothing, on schedule.
            std::thread::sleep(timeout);
            return Err(NetError::Timeout);
        }
        self.inbound.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::RouterClosed,
        })
    }

    fn crash(&self) {
        if self.shared.crashed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropping the senders ends every writer thread (and closes its
        // socket); the dummy dial below wakes the accept loop so it sees
        // the flag and releases the listening port.
        self.outbound.lock().clear();
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }

    fn flush(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.shared.pending.load(Ordering::SeqCst) > 0
            && !self.shared.is_crashed()
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn peer_counters(&self) -> Vec<PeerCounters> {
        self.shared.counters.snapshot()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if self.shared.is_crashed() {
            return; // a crashed endpoint stays silent: nothing to flush
        }
        // Graceful close: stop dialing, disconnect the queues, and wait for
        // the writers to drain what is already enqueued onto their open
        // connections — in-flight control messages (e.g. the coordinator's
        // worker shutdowns) must not be lost to the drop itself.
        self.shared.closing.store(true, Ordering::SeqCst);
        self.outbound.lock().clear();
        for writer in self.writers.lock().drain(..) {
            let _ = writer.join();
        }
        self.crash();
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("id", &self.shared.id)
            .field("addr", &self.local_addr)
            .field("crashed", &self.shared.is_crashed())
            .finish()
    }
}

/// Services one accepted connection: authenticate the hello, then pump
/// frames into the inbox until the peer closes, misbehaves or we crash.
fn reader_loop(
    mut stream: TcpStream,
    shared: &Shared,
    inbound: &Sender<Envelope>,
    known: &HashSet<NodeId>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(peer) = read_hello(&mut stream) else {
        return; // not a Garfield peer: close without a word
    };
    if !known.contains(&peer) {
        return; // id outside the cluster spec
    }
    loop {
        if shared.is_crashed() {
            return;
        }
        let Ok((from, tag, payload, wire_bytes)) = read_frame(&mut stream) else {
            return; // EOF, reset, or a hostile frame: drop the connection
        };
        if from != peer {
            // The hello authenticated this connection; a frame claiming a
            // different sender is a forgery attempt. Drop the connection.
            return;
        }
        shared.counters.record_recv(peer, wire_bytes);
        garfield_net::record_wire_recv(peer, &payload);
        let envelope = Envelope {
            from: peer,
            to: shared.id,
            tag,
            payload,
        };
        if inbound.send(envelope).is_err() {
            return;
        }
    }
}

/// Drains one peer's outbound queue onto its socket, dialing (with retry)
/// on demand and redialing once per frame after a broken pipe.
fn writer_loop(
    peer: NodeId,
    addr: SocketAddr,
    queue: &Receiver<(u64, Bytes)>,
    shared: &Shared,
    options: TcpOptions,
) {
    let mut stream: Option<TcpStream> = None;
    while let Ok((tag, payload)) = queue.recv() {
        shared.queue_depth(peer, -1.0);
        if shared.is_crashed() {
            return;
        }
        if stream.is_none() {
            stream = dial(peer, addr, shared, options);
        }
        let written = stream
            .as_mut()
            .and_then(|s| write_frame(s, shared.id, tag, &payload).ok());
        let written = match written {
            Some(n) => Some(n),
            None if !shared.is_closing() => {
                // Broken pipe (peer restarted or died): one fresh dial, then
                // the frame is dropped — the sender's quorum handles it.
                stream = dial(peer, addr, shared, options);
                stream
                    .as_mut()
                    .and_then(|s| write_frame(s, shared.id, tag, &payload).ok())
            }
            None => None, // draining a close: never wait on a dead peer
        };
        match written {
            Some(bytes) => {
                shared.counters.record_send(peer, bytes);
                garfield_net::record_wire_send(peer, &payload);
            }
            None => shared.counters.record_drop_at(peer, tag),
        }
        // Resolved (counted) only now, so a flush() that observed zero
        // pending is guaranteed to see this frame in the counters.
        shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Connects to `addr` with retry until [`TcpOptions::dial_timeout`],
/// sending the hello on success.
fn dial(peer: NodeId, addr: SocketAddr, shared: &Shared, options: TcpOptions) -> Option<TcpStream> {
    let deadline = Instant::now() + options.dial_timeout;
    let mut attempts = 0u64;
    loop {
        if shared.is_crashed() || shared.is_closing() {
            return None;
        }
        attempts += 1;
        if attempts > 1 {
            if let Some(obs) = shared.obs.get(&peer) {
                obs.dial_retries.inc();
            }
        }
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, options.dial_timeout) {
            let _ = stream.set_nodelay(true);
            // A bounded write timeout keeps a peer that accepts but never
            // reads (full receive window) from parking the writer thread in
            // `write_all` forever — which would also hang the join in
            // `TcpTransport::drop`.
            let _ = stream.set_write_timeout(Some(options.dial_timeout));
            if write_hello(&mut stream, shared.id).is_ok() {
                return Some(stream);
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(options.dial_backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> TcpOptions {
        TcpOptions {
            outbound_queue: 8,
            dial_timeout: Duration::from_secs(2),
            dial_backoff: Duration::from_millis(5),
        }
    }

    #[test]
    fn two_endpoints_exchange_frames_and_count_wire_bytes() {
        let spec = ClusterSpec::localhost(2).unwrap();
        let a = TcpTransport::bind(&spec, NodeId(0), quick_options()).unwrap();
        let b = TcpTransport::bind(&spec, NodeId(1), quick_options()).unwrap();
        assert_eq!(a.local_id(), NodeId(0));

        a.send(NodeId(1), 7, Bytes::from_static(b"ping")).unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.to, NodeId(1));
        assert_eq!(env.tag, 7);
        assert_eq!(&env.payload[..], b"ping");

        b.send(NodeId(0), 8, Bytes::from_static(b"pong")).unwrap();
        let back = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(back.from, NodeId(1));
        assert_eq!(&back.payload[..], b"pong");

        // On-wire counts include the 16-byte frame overhead.
        let sent = a.peer_counters();
        let toward_b = sent.iter().find(|c| c.peer == NodeId(1)).unwrap();
        assert_eq!(toward_b.messages_sent, 1);
        assert_eq!(toward_b.bytes_sent, 16 + 4);
        let from_a = b.peer_counters();
        let heard = from_a.iter().find(|c| c.peer == NodeId(0)).unwrap();
        assert_eq!(heard.messages_received, 1);
        assert_eq!(heard.bytes_received, 16 + 4);
    }

    #[test]
    fn unknown_recipients_are_errors_and_receives_respect_deadlines() {
        let spec = ClusterSpec::localhost(2).unwrap();
        let a = TcpTransport::bind(&spec, NodeId(0), quick_options()).unwrap();
        assert!(matches!(
            a.send(NodeId(9), 0, Bytes::new()),
            Err(NetError::UnknownNode(_))
        ));
        let start = Instant::now();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(50)),
            Err(NetError::Timeout)
        ));
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn crash_silences_the_endpoint_without_stalling_peers() {
        let spec = ClusterSpec::localhost(2).unwrap();
        let a = TcpTransport::bind(&spec, NodeId(0), quick_options()).unwrap();
        let b = TcpTransport::bind(&spec, NodeId(1), quick_options()).unwrap();
        a.send(NodeId(1), 0, Bytes::from_static(b"alive")).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();

        a.crash();
        assert!(matches!(
            a.send(NodeId(1), 1, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
        // The peer's send does not error and does not block: the frame is
        // queued/dropped and b only notices through its own timeout.
        b.send(NodeId(0), 1, Bytes::from_static(b"anyone home"))
            .unwrap();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(50)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn bounded_queue_drops_overflow_toward_a_dead_peer_without_blocking() {
        // Peer 1 never binds: its address points at a dead port.
        let spec = ClusterSpec::localhost(2).unwrap();
        let options = TcpOptions {
            outbound_queue: 2,
            dial_timeout: Duration::from_millis(100),
            dial_backoff: Duration::from_millis(5),
        };
        let a = TcpTransport::bind(&spec, NodeId(0), options).unwrap();
        let start = Instant::now();
        for tag in 0..20u64 {
            a.send(NodeId(1), tag, Bytes::from(vec![0u8; 1024]))
                .unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "sends toward a dead peer must not block the caller"
        );
        // Give the writer a moment to burn through its dial attempts, then
        // confirm overflow was counted instead of delivered.
        std::thread::sleep(Duration::from_millis(400));
        let counters = a.peer_counters();
        let toward_dead = counters.iter().find(|c| c.peer == NodeId(1)).unwrap();
        assert_eq!(toward_dead.messages_sent, 0);
        assert!(toward_dead.messages_dropped > 0);
    }
}
