//! The `--out` result document a `garfield-node` server writes for its
//! launcher.
//!
//! Lives in the library (rather than the binary) so tests can assert on the
//! exact emission — in particular that transport drop counts surface here in
//! the same way they surface in the metrics registry, and that non-finite
//! accuracies serialize as `null` (via [`garfield_core::json`]) instead of
//! producing invalid JSON.

use garfield_core::{json, SystemKind};
use garfield_runtime::ServerRun;
use std::fmt::Write as _;
use std::net::SocketAddr;

/// Serializes a server's [`ServerRun`] for the launcher: run shape, recovery
/// counters, transport wire/drop totals, the bound metrics endpoint (when
/// `--metrics-addr` was given — `null` otherwise, so launchers and tests
/// never parse stderr for it), final accuracy, and the final model as exact
/// bit patterns (`f32::to_bits`), so a same-seed in-process run can be
/// compared bit for bit.
///
/// Floats route through [`garfield_core::json`], so a diverged run's NaN
/// accuracy becomes `null` (as `serde_json` would emit) rather than the
/// invalid literal `NaN`.
pub fn result_json(
    system: SystemKind,
    run: &ServerRun,
    metrics_addr: Option<SocketAddr>,
) -> String {
    let mut out = String::with_capacity(96 + 12 * run.final_model.len());
    let _ = write!(
        out,
        "{{\"system\":\"{system}\",\"metrics_addr\":{},\"iterations\":{},\"resumed_from\":{},\
         \"resumes\":{},\"checkpoints_written\":{},\"requests_retried\":{},\
         \"wire_bytes_sent\":{},\"messages_dropped\":{},\"final_accuracy\":",
        metrics_addr.map_or("null".to_string(), |a| format!("\"{a}\"")),
        run.trace.len(),
        run.resumed_from.unwrap_or(0),
        run.telemetry.resumes,
        run.telemetry.checkpoints_written,
        run.telemetry.requests_retried,
        run.telemetry.wire_bytes_sent(),
        run.telemetry.messages_dropped(),
    );
    json::write_f32(&mut out, run.trace.final_accuracy());
    out.push_str(",\"final_model_bits\":[");
    for (i, v) in run.final_model.data().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", v.to_bits());
    }
    out.push_str("]}");
    out
}
