//! Property tests of the TCP frame codec over a *real* localhost
//! connection: random message batches are written with adversarially random
//! chunking (frames split across many partial writes, several frames
//! coalesced back-to-back into one write) and must reassemble bit-exactly
//! on the reader side.

use garfield_net::{MsgKind, NodeId, WireMessage};
use garfield_transport::frame::{read_frame, read_hello, write_frame, write_hello};
use proptest::prelude::*;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn kind_from_selector(selector: u8) -> MsgKind {
    let kinds = MsgKind::all();
    kinds[selector as usize % kinds.len()]
}

/// One random message: kind, round, payload values (with non-finite floats,
/// which a Byzantine sender is free to emit).
#[derive(Debug, Clone)]
struct TestMessage {
    from: u32,
    msg: WireMessage,
}

fn message_strategy() -> impl Strategy<Value = TestMessage> {
    (
        0u32..16,
        0u8..6,
        0u64..1_000_000,
        prop::collection::vec(0u32..=u32::MAX, 0..64),
    )
        .prop_map(|(from, kind_sel, round, value_bits)| TestMessage {
            from,
            msg: WireMessage::new(
                kind_from_selector(kind_sel),
                round,
                f32::from_bits(round as u32),
                value_bits.into_iter().map(f32::from_bits).collect(),
            ),
        })
}

/// Connects a writer stream to an accepted reader stream on localhost.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().unwrap();
    let writer = TcpStream::connect(addr).expect("loopback connect");
    let (reader, _) = listener.accept().expect("accept");
    writer.set_nodelay(true).unwrap();
    (writer, reader)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Frames written through a real socket in random-size chunks (including
    /// 1-byte trickles that split every frame, and giant chunks that pack
    /// many frames back-to-back) decode to the exact original sequence.
    #[test]
    fn framed_messages_survive_arbitrary_tcp_chunking(
        messages in prop::collection::vec(message_strategy(), 1..12),
        chunk_sizes in prop::collection::vec(1usize..512, 1..64),
    ) {
        let (mut writer, mut reader) = socket_pair();

        // Serialize hello + every frame into one byte stream, then push it
        // through the socket in the random chunking.
        let mut stream_bytes = Vec::new();
        write_hello(&mut stream_bytes, NodeId(7)).unwrap();
        let mut wire_sizes = Vec::with_capacity(messages.len());
        for m in &messages {
            let payload = m.msg.encode();
            let mut frame = Vec::new();
            let n = write_frame(&mut frame, NodeId(m.from), m.msg.round, &payload).unwrap();
            prop_assert_eq!(n, frame.len());
            wire_sizes.push(n);
            stream_bytes.extend_from_slice(&frame);
        }
        let writer_thread = std::thread::spawn(move || {
            let mut sent = 0;
            let mut chunks = chunk_sizes.iter().cycle();
            while sent < stream_bytes.len() {
                let n = (*chunks.next().unwrap()).min(stream_bytes.len() - sent);
                writer.write_all(&stream_bytes[sent..sent + n]).unwrap();
                writer.flush().unwrap();
                sent += n;
            }
            // writer drops here: the reader sees EOF after the last frame
        });

        prop_assert_eq!(read_hello(&mut reader).unwrap(), NodeId(7));
        for (m, &expected_wire) in messages.iter().zip(&wire_sizes) {
            let (from, tag, payload, wire) = read_frame(&mut reader).unwrap();
            prop_assert_eq!(from, NodeId(m.from));
            prop_assert_eq!(tag, m.msg.round);
            prop_assert_eq!(wire, expected_wire);
            let back = WireMessage::decode(&payload).unwrap();
            prop_assert_eq!(back.kind, m.msg.kind);
            prop_assert_eq!(back.round, m.msg.round);
            let bits: Vec<u32> = back.values.iter().map(|v| v.to_bits()).collect();
            let expected: Vec<u32> = m.msg.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, expected);
        }
        // The stream is exhausted: the next read reports EOF as an error.
        prop_assert!(read_frame(&mut reader).is_err());
        writer_thread.join().unwrap();
    }
}
