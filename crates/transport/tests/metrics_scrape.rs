//! Live-scrape smoke test: a real multi-process run serves `/metrics` while
//! it trains.
//!
//! One `garfield-node` server is started with `--metrics-addr 127.0.0.1:0`
//! and `--flight-dir`; the test discovers the bound port from the node's
//! stderr announcement, scrapes the endpoint *mid-training* (polling until
//! at least one round has completed while the process is still alive), and
//! asserts the metric families an operator dashboards on are present and
//! non-empty. After the run it checks every node left a flight dump behind.
//!
//! The second test runs the cluster with an *injected Byzantine worker* and
//! asserts the forensic families (`garfield_peer_suspicion`,
//! `garfield_gar_excluded_total`) carry live samples, drives the
//! `expfig watch --once` machine-readable pass against the same endpoint,
//! and checks the `--out` JSON records the bound metrics address.
//!
//! The third test runs the same attacked cluster under
//! `--system speculative(multi-krum)` and asserts the watcher sees the
//! `garfield_speculation_fallback_total` counter move: the wire-visible
//! proof that the consistency check tripped and latched.

use garfield_attacks::AttackKind;
use garfield_core::ExperimentConfig;
use garfield_transport::ClusterSpec;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_garfield-node");

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garfield-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// SSMW over Multi-Krum, tiny model — but enough iterations that the run is
/// comfortably still training while the test dials in and scrapes.
fn config(nw: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = nw;
    cfg.fw = 1; // Multi-Krum needs 2f + 3 = 5 inputs
    cfg.nps = 1;
    cfg.fps = 0;
    cfg.iterations = 200;
    cfg.eval_every = 200;
    cfg
}

fn spawn_node(dir: &Path, role: &str, rank: usize, system: &str, extra: &[&str]) -> Child {
    let log = std::fs::File::create(dir.join(format!("{role}{rank}.log"))).unwrap();
    Command::new(NODE_BIN)
        .current_dir(dir)
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--cluster",
            "cluster.txt",
            "--config",
            "config.json",
            "--system",
            system,
            "--round-deadline-ms",
            "20000",
            "--idle-timeout-ms",
            "30000",
            "--flight-dir",
            "flight",
        ])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(log)
        .spawn()
        .expect("spawn garfield-node")
}

fn dump_logs(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        if entry.path().extension().is_some_and(|e| e == "log") {
            eprintln!("--- {}", entry.path().display());
            eprintln!(
                "{}",
                std::fs::read_to_string(entry.path()).unwrap_or_default()
            );
        }
    }
}

/// Waits for the server's stderr announcement (`garfield-node: metrics on
/// http://ADDR/metrics`) and returns `ADDR`.
fn discover_metrics_addr(log: &Path, deadline: Duration) -> String {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let text = std::fs::read_to_string(log).unwrap_or_default();
        if let Some(rest) = text.split("metrics on http://").nth(1) {
            if let Some(addr) = rest.split("/metrics").next() {
                return addr.trim().to_string();
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never announced its metrics address");
}

/// One HTTP/1.1 GET against the node's scrape endpoint.
fn scrape(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// True when the exposition has at least one *sample* line (not a comment)
/// for `family` — presence of the `# HELP` header alone is not enough.
fn has_sample(exposition: &str, family: &str) -> bool {
    exposition
        .lines()
        .any(|l| l.starts_with(family) && l.contains(' '))
}

/// The first sample value of `family` (any label set), if present.
fn sample_value(exposition: &str, family: &str) -> Option<f64> {
    exposition
        .lines()
        .filter(|l| l.starts_with(family) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .next()
}

#[test]
fn live_run_serves_metrics_mid_training_and_dumps_flight_records() {
    let cfg = config(5);
    let dir = scratch_dir("metrics-scrape");
    std::fs::create_dir_all(dir.join("flight")).unwrap();
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| spawn_node(&dir, "worker", j, "ssmw", &[]))
        .collect();
    let mut server = spawn_node(
        &dir,
        "server",
        0,
        "ssmw",
        &["--metrics-addr", "127.0.0.1:0", "--out", "result.json"],
    );

    // Port 0 means the OS picked: read the bound address off the node's own
    // announcement, exactly as an operator (or service discovery) would.
    let addr = discover_metrics_addr(&dir.join("server0.log"), Duration::from_secs(20));

    // Poll until the run is demonstrably *mid-training*: the scrape
    // succeeds, at least one round has finished, and the server process is
    // still alive at that moment.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut mid_training = None;
    while Instant::now() < deadline {
        let Ok(response) = scrape(&addr, "/metrics") else {
            break; // server exited and took the endpoint with it
        };
        if sample_value(&response, "garfield_rounds_total").is_some_and(|v| v >= 1.0)
            && server.try_wait().expect("poll server").is_none()
        {
            mid_training = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let Some(exposition) = mid_training else {
        dump_logs(&dir);
        panic!("never captured a mid-training scrape");
    };

    // The exposition is a real HTTP response carrying Prometheus text.
    assert!(
        exposition.starts_with("HTTP/1.1 200"),
        "bad status line: {}",
        exposition.lines().next().unwrap_or("")
    );
    assert!(exposition.contains("text/plain; version=0.0.4"));

    // The families the issue calls out, each with a live sample: round
    // spans, per-peer queue depth, kernel throughput, fast-math fallback.
    for family in [
        "garfield_round_seconds_count",
        "garfield_phase_seconds_bucket",
        "garfield_outbound_queue_depth",
        "garfield_kernel_gelem_s",
        "garfield_fastmath_fallback_total",
        "garfield_rounds_total",
    ] {
        assert!(
            has_sample(&exposition, family),
            "family {family} missing or empty in mid-training scrape:\n{exposition}"
        );
    }
    // Round spans must be live, not just registered.
    assert!(sample_value(&exposition, "garfield_round_seconds_count").unwrap() >= 1.0);

    // The flight-recorder dump is also served over HTTP while training.
    let flight = scrape(&addr, "/flight").expect("GET /flight");
    assert!(flight.contains("garfield-obs/flight-v1"), "{flight}");

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server failed: {status}");
    }
    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "worker failed: {status}");
    }

    // Every node flushed a flight dump on exit; the server's contains the
    // round markers `expfig trace` reconstructs timelines from.
    for rank in 0..cfg.nw {
        let dump = dir.join(format!("flight/flight-worker{rank}.jsonl"));
        assert!(dump.exists(), "missing {}", dump.display());
    }
    let server_dump =
        std::fs::read_to_string(dir.join("flight/flight-server0.jsonl")).expect("server dump");
    assert!(server_dump.contains("garfield-obs/flight-v1"));
    assert!(
        server_dump.contains("\"kind\":\"round_start\""),
        "no round_start events"
    );
    assert!(
        server_dump.contains("\"kind\":\"round_end\""),
        "no round_end events"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_attacked_run_exports_suspicion_and_the_watcher_sees_it() {
    let mut cfg = config(5);
    // The deployment marks the *last* `actual_byzantine_workers` workers
    // Byzantine, so worker rank 4 — node 5 in the servers-first layout —
    // runs the config-level reversed-gradient attack: the forensic signal
    // the suspicion ledger must turn into live metrics.
    cfg.actual_byzantine_workers = 1;
    cfg.worker_attack = Some(AttackKind::Reversed);
    let attacked_node = cfg.nps + cfg.nw - 1; // last worker id, servers first
    let dir = scratch_dir("suspicion-scrape");
    std::fs::create_dir_all(dir.join("flight")).unwrap();
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| spawn_node(&dir, "worker", j, "ssmw", &[]))
        .collect();
    let mut server = spawn_node(
        &dir,
        "server",
        0,
        "ssmw",
        &["--metrics-addr", "127.0.0.1:0", "--out", "result.json"],
    );
    let addr = discover_metrics_addr(&dir.join("server0.log"), Duration::from_secs(20));

    // Poll until the forensic families carry samples mid-training.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut forensic = None;
    while Instant::now() < deadline {
        let Ok(response) = scrape(&addr, "/metrics") else {
            break;
        };
        if has_sample(&response, "garfield_peer_suspicion")
            && server.try_wait().expect("poll server").is_none()
        {
            forensic = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let Some(exposition) = forensic else {
        dump_logs(&dir);
        panic!("suspicion metrics never appeared mid-training");
    };
    assert!(
        has_sample(&exposition, "garfield_gar_excluded_total"),
        "exclusion counters missing:\n{exposition}"
    );
    // Multi-Krum refuses the attacked node's reversed gradient every
    // round, so its exclusion counter is already moving mid-training.
    assert!(
        sample_value(
            &exposition,
            &format!("garfield_gar_excluded_total{{peer=\"{attacked_node}\"}}")
        )
        .is_some_and(|v| v >= 1.0),
        "attacked peer {attacked_node} has no exclusions:\n{exposition}"
    );

    // `expfig watch --once` over the same endpoint: the machine-readable
    // pass sees a live node and its suspicion ranking.
    let spec_text = format!("0 {addr}\n");
    let once = garfield_bench::watch::watch_once(&spec_text, Duration::from_secs(5))
        .expect("watch --once pass");
    assert!(once.starts_with("{\"node\":0,"), "{once}");
    let doc = garfield_core::json::parse(&once).expect("watch JSON parses");
    assert_eq!(
        doc.get("up").and_then(garfield_core::json::Value::as_bool),
        Some(true),
        "{once}"
    );
    // Suspects are sorted by descending score: the attacked node must hold
    // the top rank — the reversed gradient dominates every honest z-score
    // from the first scored round.
    assert!(
        once.contains(&format!("\"suspects\":[{{\"peer\":{attacked_node},")),
        "attacked peer {attacked_node} not the top suspect: {once}"
    );

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server failed: {status}");
    }
    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "worker failed: {status}");
    }

    // The --out JSON records the bound endpoint — launchers never parse
    // stderr for it.
    let out = std::fs::read_to_string(dir.join("result.json")).expect("result.json");
    assert!(
        out.contains(&format!("\"metrics_addr\":\"{addr}\"")),
        "metrics_addr missing from --out JSON: {}",
        &out[..out.len().min(300)]
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_speculative_run_under_attack_shows_the_fallback_counter_to_the_watcher() {
    let mut cfg = config(5);
    // Last worker runs the config-level reversed-gradient attack from round
    // 0: the consistency check must trip immediately, latch, and surface as
    // a nonzero `garfield_speculation_fallback_total` on the scrape endpoint
    // and in the watcher's `spec_fallback` column.
    cfg.actual_byzantine_workers = 1;
    cfg.worker_attack = Some(AttackKind::Reversed);
    let dir = scratch_dir("speculation-scrape");
    std::fs::create_dir_all(dir.join("flight")).unwrap();
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let system = "speculative(multi-krum)";
    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| spawn_node(&dir, "worker", j, system, &[]))
        .collect();
    let mut server = spawn_node(
        &dir,
        "server",
        0,
        system,
        &["--metrics-addr", "127.0.0.1:0", "--out", "result.json"],
    );
    let addr = discover_metrics_addr(&dir.join("server0.log"), Duration::from_secs(20));

    // Poll until the fallback counter carries a live nonzero sample while
    // the server is still training.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut tripped = None;
    while Instant::now() < deadline {
        let Ok(response) = scrape(&addr, "/metrics") else {
            break;
        };
        if sample_value(&response, "garfield_speculation_fallback_total").is_some_and(|v| v >= 1.0)
            && server.try_wait().expect("poll server").is_none()
        {
            tripped = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let Some(exposition) = tripped else {
        dump_logs(&dir);
        panic!("the speculation fallback counter never moved mid-training");
    };
    // The fast-path histogram is registered alongside the counter: rounds
    // before the trip (if any) land there, and its presence proves the
    // speculative rule — not a plain robust GAR — served the rounds.
    assert!(
        exposition.contains("garfield_speculation_fast_seconds"),
        "fast-path histogram missing:\n{exposition}"
    );

    // The watcher's machine-readable pass reports the same trip.
    let spec_text = format!("0 {addr}\n");
    let once = garfield_bench::watch::watch_once(&spec_text, Duration::from_secs(5))
        .expect("watch --once pass");
    let doc = garfield_core::json::parse(&once).expect("watch JSON parses");
    assert!(
        doc.get("spec_fallback")
            .and_then(garfield_core::json::Value::as_f64)
            .is_some_and(|v| v >= 1.0),
        "watcher did not see the fallback counter: {once}"
    );

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server failed: {status}");
    }
    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "worker failed: {status}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
