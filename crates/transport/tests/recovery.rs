//! Crash-recovery integration tests: real `garfield-node` processes are
//! SIGKILLed mid-training and *come back*.
//!
//! These pin the recovery subsystem's two system-level claims:
//!
//! * a worker killed mid-run and respawned rejoins the cluster and keeps
//!   contributing — at **full quorum**, so every one of the remaining rounds
//!   provably includes the rejoined worker, and the final model is
//!   **bit-identical** to an uninterrupted same-seed in-process run;
//! * a server killed mid-run and respawned with `--resume` picks its state
//!   back up from the on-disk checkpoint (model, optimizer, round) and the
//!   resumed run's final model is **bit-identical** to an uninterrupted
//!   same-seed run.

use garfield_core::{json, Checkpoint, ExperimentConfig, SystemKind};
use garfield_runtime::LiveExecutor;
use garfield_transport::ClusterSpec;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_garfield-node");

/// A scratch directory for one test's spec/config/checkpoint/result files.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garfield-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The shared experiment: SSMW over Multi-Krum, tiny model, with momentum so
/// the optimizer velocity is real state the checkpoint must carry.
fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 5;
    cfg.fw = 1; // Multi-Krum needs 2f + 3 = 5 inputs
    cfg.nps = 1;
    cfg.fps = 0;
    cfg.momentum = 0.5;
    cfg.iterations = 12;
    cfg.eval_every = 4;
    cfg
}

fn spawn_node(dir: &Path, role: &str, rank: usize, extra: &[&str]) -> Child {
    let log = std::fs::File::create(dir.join(format!("{role}{rank}.log"))).unwrap();
    Command::new(NODE_BIN)
        .current_dir(dir)
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--cluster",
            "cluster.txt",
            "--config",
            "config.json",
            "--system",
            "ssmw",
            // Generous deadlines: CI machines stall under load, and the
            // claims are about recovery, not speed. The retry interval is
            // what bounds how long a round waits on the killed node.
            "--round-deadline-ms",
            "60000",
            "--idle-timeout-ms",
            "120000",
            "--retry-ms",
            "300",
        ])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(log)
        .spawn()
        .expect("spawn garfield-node")
}

fn dump_logs(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        if entry.path().extension().is_some_and(|e| e == "log") {
            eprintln!("--- {}", entry.path().display());
            eprintln!(
                "{}",
                std::fs::read_to_string(entry.path()).unwrap_or_default()
            );
        }
    }
}

/// Milliseconds of straggler delay injected into worker 0: paces every
/// full-quorum round so the kill below provably lands *mid*-training (a
/// tiny-model round otherwise completes in microseconds and the whole run
/// can finish between two polls). Delay changes round *timing* only, never
/// reply contents, so bit-identity against the undelayed in-process
/// reference run still holds.
const PACE_MS: u64 = 150;

/// Polls the checkpoint directory until the server has completed at least
/// `round` rounds (the cadence is every iteration), so a kill lands
/// provably *mid*-training.
fn wait_for_checkpoint_round(dir: &Path, round: u64) -> Checkpoint {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(Some(cp)) = Checkpoint::load_if_present(dir) {
            if cp.round >= round {
                return cp;
            }
        }
        assert!(
            Instant::now() < deadline,
            "training never reached round {round}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The final model of the uninterrupted same-seed in-process run, as exact
/// bit patterns.
fn uninterrupted_bits(cfg: &ExperimentConfig) -> Vec<u32> {
    let report = LiveExecutor::new(cfg.clone())
        .run_live(SystemKind::Ssmw)
        .expect("in-process reference run");
    report.final_models[0]
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn result_doc(dir: &Path) -> json::Value {
    let result = std::fs::read_to_string(dir.join("result.json")).unwrap();
    json::parse(&result).unwrap()
}

fn model_bits(doc: &json::Value) -> Vec<u32> {
    doc.get("final_model_bits")
        .and_then(json::Value::as_array)
        .expect("final_model_bits array")
        .iter()
        .map(|v| v.as_usize().expect("u32 bit pattern") as u32)
        .collect()
}

fn field(doc: &json::Value, key: &str) -> usize {
    doc.get(key)
        .and_then(json::Value::as_usize)
        .unwrap_or_else(|| panic!("missing field {key}"))
}

#[test]
fn sigkilled_worker_respawns_rejoins_and_the_run_stays_bit_identical() {
    let cfg = config();
    let dir = scratch_dir("kill-respawn-worker");
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let pace = PACE_MS.to_string();
    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| {
            let extra: &[&str] = if j == 0 { &["--delay-ms", &pace] } else { &[] };
            spawn_node(&dir, "worker", j, extra)
        })
        .collect();
    // The server checkpoints every round — both the recovery feature under
    // test on the server side and this test's "training is mid-flight now"
    // signal for timing the kill.
    let mut server = spawn_node(
        &dir,
        "server",
        0,
        &["--checkpoint", "ckpt", "--out", "result.json"],
    );

    // Kill the last worker once training is provably mid-run, hold it down
    // for two retry intervals (so the server demonstrably re-asks), then
    // respawn it — the respawn-after-SIGKILL flow, same command line.
    wait_for_checkpoint_round(&dir.join("ckpt"), 4);
    let victim = &mut workers[cfg.nw - 1];
    victim.kill().expect("kill worker");
    victim.wait().expect("reap killed worker");
    std::thread::sleep(Duration::from_millis(700));
    workers[cfg.nw - 1] = spawn_node(&dir, "worker", cfg.nw - 1, &["--resume", "ckpt"]);

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server failed after the worker kill+respawn: {status}");
    }
    for (rank, worker) in workers.iter_mut().enumerate() {
        let status = worker.wait().expect("worker exits");
        assert!(
            status.success(),
            "worker {rank} (respawned: {}) failed: {status}",
            rank == cfg.nw - 1
        );
    }

    let doc = result_doc(&dir);
    // Every iteration completed at FULL quorum (q = nw for SSMW): each of
    // the remaining rounds therefore contains the rejoined worker's reply —
    // that is what "contributing again" means at q = n.
    assert_eq!(field(&doc, "iterations"), cfg.iterations);
    assert_eq!(field(&doc, "resumed_from"), 0, "the server never resumed");
    assert!(
        field(&doc, "requests_retried") > 0,
        "the server must have re-asked the dead worker"
    );
    // And the rejoined replies are the *same bits* an uninterrupted worker
    // would have sent: the final model matches the in-process run exactly.
    assert_eq!(
        model_bits(&doc),
        uninterrupted_bits(&cfg),
        "kill+respawn must not change a single bit of the final model"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_server_resumes_from_checkpoint_bit_identically() {
    let cfg = config();
    let dir = scratch_dir("kill-resume-server");
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let pace = PACE_MS.to_string();
    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| {
            let extra: &[&str] = if j == 0 { &["--delay-ms", &pace] } else { &[] };
            spawn_node(&dir, "worker", j, extra)
        })
        .collect();
    // `--resume` on the very first launch exercises the fresh-start path:
    // the respawn below uses the *identical* command line.
    let server_args = [
        "--checkpoint",
        "ckpt",
        "--resume",
        "ckpt",
        "--out",
        "result.json",
    ];
    let mut server = spawn_node(&dir, "server", 0, &server_args);

    // SIGKILL the server mid-run — no flush, no goodbye; the atomic
    // write-rename is what guarantees the checkpoint on disk is intact.
    let cp = wait_for_checkpoint_round(&dir.join("ckpt"), 3);
    assert!(cp.round < cfg.iterations as u64, "killed too late");
    server.kill().expect("kill server");
    server.wait().expect("reap killed server");
    std::thread::sleep(Duration::from_millis(300));
    let mut server = spawn_node(&dir, "server", 0, &server_args);

    let status = server.wait().expect("resumed server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("resumed server failed: {status}");
    }
    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "worker failed: {status}");
    }

    let doc = result_doc(&dir);
    let resumed_from = field(&doc, "resumed_from");
    assert!(
        resumed_from >= 3,
        "the respawned server must resume from the checkpoint, got round {resumed_from}"
    );
    assert!(resumed_from < cfg.iterations, "nothing left to resume");
    // The resumed segment runs the remaining iterations...
    assert_eq!(field(&doc, "iterations"), cfg.iterations - resumed_from);
    assert!(field(&doc, "checkpoints_written") > 0);
    // ...and lands on the exact bits of the uninterrupted run: model,
    // optimizer step count and momentum velocity all survived the kill.
    assert_eq!(
        model_bits(&doc),
        uninterrupted_bits(&cfg),
        "kill+--resume must reproduce the uninterrupted final model bit for bit"
    );

    // A supervisor blindly restarting after the run completed: the
    // checkpoint is at round == iterations, so the server must exit cleanly
    // *without* clobbering the recorded result with an empty trace.
    let before = std::fs::read_to_string(dir.join("result.json")).unwrap();
    let status = spawn_node(&dir, "server", 0, &server_args)
        .wait()
        .expect("no-op restart exits");
    assert!(status.success(), "restart after completion must exit 0");
    assert_eq!(
        std::fs::read_to_string(dir.join("result.json")).unwrap(),
        before,
        "restart after completion must not rewrite --out"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
