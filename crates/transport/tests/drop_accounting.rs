//! Drop accounting under a saturated bounded outbound queue.
//!
//! A dead peer must not block or leak: overflow past the bounded per-peer
//! queue is shed and *counted*, and the count must surface identically in
//! all three places an operator can look — the transport's `PeerCounters`
//! snapshot, the `garfield-obs` metrics registry (the
//! `garfield_messages_dropped_total` family a scrape sees), and the `--out`
//! result JSON a launcher collects.

use bytes::Bytes;
use garfield_core::{NodeTelemetry, TrainingTrace};
use garfield_net::{NodeId, Role, Transport};
use garfield_runtime::ServerRun;
use garfield_tensor::Tensor;
use garfield_transport::{result_json, ClusterSpec, TcpOptions, TcpTransport};
use std::time::Duration;

/// Extracts the value of the first `family{...peer="<peer>"...} <value>`
/// sample line from a Prometheus text exposition.
fn sample_value(render: &str, family: &str, peer: u32) -> Option<f64> {
    let needle = format!("peer=\"{peer}\"");
    render
        .lines()
        .find(|l| l.starts_with(family) && l.contains(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn saturated_queue_drops_surface_in_counters_registry_and_out_json() {
    // The obs registry only accumulates while recording is on; mirror what
    // `garfield-node --metrics-addr` does before binding its transport.
    garfield_obs::enable();

    // Peer 1 never binds: every frame toward it eventually overflows the
    // 2-slot queue or dies with its dial attempts.
    let spec = ClusterSpec::localhost(2).unwrap();
    let options = TcpOptions {
        outbound_queue: 2,
        dial_timeout: Duration::from_millis(100),
        dial_backoff: Duration::from_millis(5),
    };
    let endpoint = TcpTransport::bind(&spec, NodeId(0), options).unwrap();
    for tag in 0..20u64 {
        endpoint
            .send(NodeId(1), tag, Bytes::from(vec![0u8; 1024]))
            .unwrap();
    }
    // Wait for the writer to resolve (write or drop) everything `send`
    // accepted, so the three views below describe the same final state.
    endpoint.flush(Duration::from_secs(10));

    // 1. The transport's own per-peer snapshot.
    let counters = endpoint.peer_counters();
    let toward_dead = *counters.iter().find(|c| c.peer == NodeId(1)).unwrap();
    assert_eq!(toward_dead.messages_sent, 0, "dead peer received frames");
    assert!(toward_dead.messages_dropped > 0, "no drops recorded");

    // 2. The metrics registry: the scrape endpoint serves exactly this text,
    // and every `record_drop` bumps the counter and the snapshot together.
    let render = garfield_obs::metrics::render();
    let dropped = sample_value(&render, "garfield_messages_dropped_total", 1)
        .expect("no garfield_messages_dropped_total{peer=\"1\"} sample");
    assert_eq!(dropped, toward_dead.messages_dropped as f64);

    // 3. The `--out` JSON: thread the same snapshot through `NodeTelemetry`
    // the way `garfield-node` does at the end of a run.
    let mut telemetry = NodeTelemetry::new(0, Role::Server);
    telemetry.peers = counters;
    let run = ServerRun {
        trace: TrainingTrace::new("ssmw", 1),
        final_model: Tensor::from_slice(&[0.0]),
        telemetry,
        round_latencies: Vec::new(),
        resumed_from: None,
        suspicion: Vec::new(),
    };
    let out = result_json(garfield_core::SystemKind::Ssmw, &run, None);
    let expected = format!("\"messages_dropped\":{}", toward_dead.messages_dropped);
    assert!(
        out.contains(&expected),
        "--out JSON missing {expected}: {out}"
    );
    // No --metrics-addr: the field is an explicit null, not absent.
    assert!(out.contains("\"metrics_addr\":null"), "{out}");
    // The document must stay parseable end to end.
    assert!(
        garfield_core::json::parse(&out).is_ok(),
        "invalid JSON: {out}"
    );
    // With a bound endpoint the address lands in the JSON as a string.
    let bound = result_json(
        garfield_core::SystemKind::Ssmw,
        &run,
        Some("127.0.0.1:9464".parse().unwrap()),
    );
    assert!(
        bound.contains("\"metrics_addr\":\"127.0.0.1:9464\""),
        "{bound}"
    );
    assert!(garfield_core::json::parse(&bound).is_ok(), "{bound}");
}
