//! Multi-process integration tests: real `garfield-node` child processes
//! training over TCP on localhost.
//!
//! These are the system-level claims of the transport layer:
//!
//! * a full-quorum, fault-free run across ≥ 5 OS processes converges and
//!   produces a final model **bit-identical** to the in-process
//!   [`LiveExecutor`] run of the same seed;
//! * with `q = n − f`, the deployment survives `f` workers being *killed*
//!   (`SIGKILL`, not a polite crash message) mid-run.

use garfield_aggregation::GarKind;
use garfield_core::{json, ExperimentConfig, SystemKind};
use garfield_runtime::{FaultPlan, LiveExecutor, LiveOptions};
use garfield_transport::ClusterSpec;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_garfield-node");

/// A scratch directory for one test's spec/config/result files.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garfield-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The shared experiment: SSMW over Multi-Krum, tiny model, short run.
fn config(nw: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = nw;
    cfg.fw = 1; // Multi-Krum needs 2f + 3 = 5 inputs
    cfg.nps = 1;
    cfg.fps = 0;
    cfg.iterations = 10;
    cfg.eval_every = 5;
    cfg
}

fn spawn_node(dir: &Path, role: &str, rank: usize, system: &str, extra: &[&str]) -> Child {
    let log = std::fs::File::create(dir.join(format!("{role}{rank}.log"))).unwrap();
    Command::new(NODE_BIN)
        .current_dir(dir)
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--cluster",
            "cluster.txt",
            "--config",
            "config.json",
            "--system",
            system,
            // Generous deadlines: CI machines stall under load, and the
            // correctness claims are about quorums, not about speed.
            "--round-deadline-ms",
            "20000",
            "--idle-timeout-ms",
            "30000",
        ])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(log)
        .spawn()
        .expect("spawn garfield-node")
}

fn dump_logs(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        if entry.path().extension().is_some_and(|e| e == "log") {
            eprintln!("--- {}", entry.path().display());
            eprintln!(
                "{}",
                std::fs::read_to_string(entry.path()).unwrap_or_default()
            );
        }
    }
}

#[test]
fn five_process_full_quorum_run_matches_in_process_executor_bit_for_bit() {
    let cfg = config(5); // 1 server + 5 workers = 6 garfield-node processes
    let dir = scratch_dir("full-quorum");
    ClusterSpec::localhost(1 + cfg.nw)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let mut workers: Vec<Child> = (0..cfg.nw)
        .map(|j| spawn_node(&dir, "worker", j, "ssmw", &[]))
        .collect();
    let mut server = spawn_node(&dir, "server", 0, "ssmw", &["--out", "result.json"]);

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server process failed: {status}");
    }
    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "worker failed: {status}");
    }

    // Parse the multi-process result: exact f32 bit patterns.
    let result = std::fs::read_to_string(dir.join("result.json")).unwrap();
    let doc = json::parse(&result).unwrap();
    assert_eq!(
        doc.get("iterations").and_then(json::Value::as_usize),
        Some(cfg.iterations)
    );
    let tcp_bits: Vec<u32> = doc
        .get("final_model_bits")
        .and_then(json::Value::as_array)
        .expect("final_model_bits array")
        .iter()
        .map(|v| v.as_usize().expect("u32 bit pattern") as u32)
        .collect();
    let tcp_accuracy = doc
        .get("final_accuracy")
        .and_then(json::Value::as_f64)
        .expect("final_accuracy") as f32;

    // Same seed, in-process substrate: must agree bit for bit.
    let report = LiveExecutor::new(cfg)
        .run_live(SystemKind::Ssmw)
        .expect("in-process run");
    let live_bits: Vec<u32> = report.final_models[0]
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        tcp_bits.len(),
        live_bits.len(),
        "model dimensions must agree"
    );
    assert_eq!(
        tcp_bits, live_bits,
        "full-quorum same-seed TCP and in-process runs must produce bit-identical models"
    );
    assert_eq!(
        tcp_accuracy.to_bits(),
        report.trace.final_accuracy().to_bits()
    );
    assert!(
        tcp_accuracy > 0.5,
        "the shared model must have learned something (accuracy {tcp_accuracy})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_run_survives_f_killed_workers_at_q_equals_n_minus_f() {
    // n = 6 workers, f = 1: q = 5 keeps Multi-Krum satisfied (2f + 3 = 5)
    // while tolerating one dead worker. 8 processes total.
    let cfg = config(6);
    let n = cfg.nw;
    let f = 1usize;
    let dir = scratch_dir("kill-worker");
    ClusterSpec::localhost(1 + n)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let quorum = (n - f).to_string();
    let mut workers: Vec<Child> = (0..n)
        .map(|j| spawn_node(&dir, "worker", j, "ssmw", &["--gradient-quorum", &quorum]))
        .collect();

    // SIGKILL `f` workers once they are up — no crash message, no socket
    // shutdown handshake — *before* the server starts: every single round
    // must then ride out the dead peers through the q = n − f quorum (a
    // later kill could race training to completion and prove nothing).
    std::thread::sleep(std::time::Duration::from_millis(200));
    let victim = workers.last_mut().expect("f workers to kill");
    victim.kill().expect("kill worker");
    victim.wait().expect("reap killed worker");

    let mut server = spawn_node(
        &dir,
        "server",
        0,
        "ssmw",
        &["--gradient-quorum", &quorum, "--out", "result.json"],
    );

    let status = server.wait().expect("server exits");
    if !status.success() {
        dump_logs(&dir);
        panic!("server did not survive {f} killed worker(s) at q = n - f: {status}");
    }
    for worker in workers.iter_mut().take(n - f) {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "surviving worker failed: {status}");
    }

    let result = std::fs::read_to_string(dir.join("result.json")).unwrap();
    let doc = json::parse(&result).unwrap();
    assert_eq!(
        doc.get("iterations").and_then(json::Value::as_usize),
        Some(cfg.iterations),
        "every iteration must complete despite the killed worker"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_tcp_run_with_a_killed_worker_matches_the_unsharded_in_process_run() {
    // The sharded acceptance case, over real sockets: 2 shard servers + 6
    // workers (8 OS processes), q = n − f, one worker SIGKILLed before the
    // servers start. Each shard server writes its *slice* to its own --out
    // file; stitching the slices in rank order must reproduce the unsharded
    // in-process run of the same seed bit for bit.
    let shards = 2usize;
    let mut cfg = config(6);
    // Median decomposes per coordinate — the sharded contract's requirement.
    cfg.gradient_gar = GarKind::Median;
    let (n, f) = (cfg.nw, 1usize);
    let dir = scratch_dir("sharded-kill");
    ClusterSpec::localhost(shards + n)
        .unwrap()
        .save(dir.join("cluster.txt"))
        .unwrap();
    std::fs::write(dir.join("config.json"), cfg.to_json()).unwrap();

    let quorum = (n - f).to_string();
    let shard_flag = shards.to_string();
    let common = ["--shards", &shard_flag, "--gradient-quorum", &quorum];
    let mut workers: Vec<Child> = (0..n)
        .map(|j| spawn_node(&dir, "worker", j, "ssmw", &common))
        .collect();

    // SIGKILL the last worker before any server starts: every round on every
    // shard must then ride out the dead peer through the q = n − f quorum.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let victim = workers.last_mut().expect("a worker to kill");
    victim.kill().expect("kill worker");
    victim.wait().expect("reap killed worker");

    let mut servers: Vec<Child> = (0..shards)
        .map(|rank| {
            let out = format!("result{rank}.json");
            let mut extra = common.to_vec();
            extra.extend_from_slice(&["--out", &out]);
            spawn_node(&dir, "server", rank, "ssmw", &extra)
        })
        .collect();

    for (rank, server) in servers.iter_mut().enumerate() {
        let status = server.wait().expect("shard server exits");
        if !status.success() {
            dump_logs(&dir);
            panic!("shard server {rank} failed at q = n - f: {status}");
        }
    }
    for worker in workers.iter_mut().take(n - f) {
        let status = worker.wait().expect("worker exits");
        assert!(status.success(), "surviving worker failed: {status}");
    }

    // Stitch the per-shard slices in rank order: servers own contiguous
    // coordinate ranges in rank order, so concatenation is reassembly.
    let mut tcp_bits: Vec<u32> = Vec::new();
    for rank in 0..shards {
        let result = std::fs::read_to_string(dir.join(format!("result{rank}.json"))).unwrap();
        let doc = json::parse(&result).unwrap();
        assert_eq!(
            doc.get("iterations").and_then(json::Value::as_usize),
            Some(cfg.iterations),
            "shard {rank} must complete every iteration despite the killed worker"
        );
        tcp_bits.extend(
            doc.get("final_model_bits")
                .and_then(json::Value::as_array)
                .expect("final_model_bits array")
                .iter()
                .map(|v| v.as_usize().expect("u32 bit pattern") as u32),
        );
    }

    // Same seed, unsharded, in-process, with the same worker dead from
    // round 0: the flagship bit-identity contract, across substrates.
    let report = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            gradient_quorum: Some(n - f),
            ..LiveOptions::default()
        })
        .with_faults(FaultPlan::new().crash_worker_at(n - 1, 0))
        .run_live(SystemKind::Ssmw)
        .expect("in-process run");
    let live_bits: Vec<u32> = report.final_models[0]
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(tcp_bits.len(), live_bits.len(), "stitched dimension");
    assert_eq!(
        tcp_bits, live_bits,
        "stitched sharded TCP model must equal the unsharded in-process model bit for bit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
