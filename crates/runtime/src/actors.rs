//! The worker and server actors: one actor per node, real messages only.
//!
//! Workers are passive repliers (the paper's `Worker` object): they wait for
//! a [`MsgKind::GradientRequest`] carrying the requesting server's model,
//! compute a real gradient on their own shard and send it back. Server
//! replicas drive the training loop: broadcast the model, unblock on the
//! fastest `q` gradient replies, robustly aggregate, update — and, in MSMW,
//! pull peer models the same way. All payloads travel as
//! [`WireMessage`]-encoded bytes through a
//! [`Transport`](garfield_net::Transport) — the in-process router when the
//! [`LiveExecutor`](crate::LiveExecutor) spawns one thread per node, a TCP
//! socket mesh when `garfield-node` runs each actor in its own OS process.

use crate::fault::Fault;
use crate::node::ServerNode;
use garfield_aggregation::{
    build_gar, Engine, Gar, PeerSuspicion, SelectionOutcome, SuspicionLedger,
};
use garfield_attacks::Attack;
use garfield_core::{
    AccuracyPoint, ByzantineServer, ByzantineWorker, Checkpoint, CheckpointPolicy, CoreError,
    CoreResult, ExperimentConfig, IterationTiming, NodeTelemetry, ShardSpec, SystemKind,
    TrainingTrace,
};
use garfield_ml::Batch;
use garfield_net::{MsgKind, NodeId, PayloadPool, Transport, WireHeader, WireMessage};
use garfield_obs::flight::{self, EventKind};
use garfield_tensor::{GradientView, Tensor, TensorRng};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Cached `garfield-obs` handles for the actor hot loop: one registry lookup
/// per process, relaxed-atomic updates per round, a load and a branch when
/// observability is disabled. The four phase series are the paper's cost
/// breakdown (Figs. 7/16) measured live instead of post-hoc.
struct ActorObs {
    phase_compute: garfield_obs::Histogram,
    phase_communication: garfield_obs::Histogram,
    phase_aggregation: garfield_obs::Histogram,
    phase_checkpoint: garfield_obs::Histogram,
    round_seconds: garfield_obs::Histogram,
    rounds_total: garfield_obs::Counter,
    pull_retries: garfield_obs::Counter,
    checkpoints_written: garfield_obs::Counter,
    state_chunks_served: garfield_obs::Counter,
}

fn actor_obs() -> &'static ActorObs {
    static OBS: std::sync::OnceLock<ActorObs> = std::sync::OnceLock::new();
    let phase = |name| {
        garfield_obs::metrics::histogram(
            "garfield_phase_seconds",
            "Per-round phase latency (the paper's compute/communication/\
             aggregation breakdown, plus checkpointing), by phase.",
            &[("phase", name)],
        )
    };
    OBS.get_or_init(|| ActorObs {
        phase_compute: phase("compute"),
        phase_communication: phase("communication"),
        phase_aggregation: phase("aggregation"),
        phase_checkpoint: phase("checkpoint"),
        round_seconds: garfield_obs::metrics::histogram(
            "garfield_round_seconds",
            "End-to-end server round latency.",
            &[],
        ),
        rounds_total: garfield_obs::metrics::counter(
            "garfield_rounds_total",
            "Training rounds completed by this endpoint.",
            &[],
        ),
        pull_retries: garfield_obs::metrics::counter(
            "garfield_pull_retries_total",
            "Pull requests re-sent to silent peers.",
            &[],
        ),
        checkpoints_written: garfield_obs::metrics::counter(
            "garfield_checkpoints_written_total",
            "Checkpoints persisted to disk.",
            &[],
        ),
        state_chunks_served: garfield_obs::metrics::counter(
            "garfield_state_chunks_served_total",
            "State-transfer chunks served to recovering peers.",
            &[],
        ),
    })
}

/// Encodes `msg`, stamps the wire header's trace fields (origin node,
/// per-sender sequence number, send timestamp) and freezes the buffer for
/// sending. Broadcasts clone the returned bytes, so every recipient of one
/// logical message observes the same `(origin, seq)` — `expfig trace` can
/// attribute all of a broadcast's per-peer one-way delays to a single send.
/// Retried requests reuse the original stamp: the inflated delay a late
/// replier then reports *is* the silence it rode out.
fn encode_stamped(msg: &WireMessage, origin: u32, seq: &mut u64) -> bytes::Bytes {
    *seq += 1;
    let mut buf = msg.encode_vec();
    garfield_net::stamp_trace(&mut buf, origin, *seq, garfield_net::unix_micros());
    bytes::Bytes::from(buf)
}

/// How many of its own recent honest gradients a Byzantine worker keeps as
/// the moment-estimation view for collusion attacks (little-is-enough,
/// fall-of-empires). The live substrate is non-omniscient — no node ever sees
/// its peers' private gradients — so the adversary falls back to the
/// local-estimate variant: its own trajectory stands in for the round's
/// honest population. A short window keeps the estimate close to the current
/// round while still giving the attacks a usable spread.
const ATTACK_HISTORY_ROUNDS: usize = 4;

/// One in-flight sharded round on a worker: the round number plus one slot
/// per shard, each holding the requesting shard server, its coordinate
/// offset and its parameter slice once that shard's request has landed.
type PendingShardRound = (u64, Vec<Option<(NodeId, usize, Vec<f32>)>>);

/// Everything a worker actor needs.
pub(crate) struct WorkerActor {
    pub transport: Box<dyn Transport>,
    pub worker: ByzantineWorker,
    pub fault: Option<Fault>,
    pub fault_attack: Option<Box<dyn Attack>>,
    pub fault_rng: TensorRng,
    pub idle_timeout: Duration,
    pub telemetry: NodeTelemetry,
    /// Whether a `RestartAt` fault already fired (one restart per run).
    pub restarted: bool,
    /// Per-sender wire sequence number (trace header, satellite of the wire
    /// format's causal-tracing fields).
    pub seq: u64,
    /// Bounded FIFO of this worker's own recent honest gradients — the
    /// non-omniscient adversary's estimation view (stays empty on honest
    /// workers). See [`ATTACK_HISTORY_ROUNDS`].
    pub attack_history: Vec<Tensor>,
    /// Number of parameter shards the server side is split into (1 means
    /// unsharded: every request carries the full model).
    pub shards: usize,
    /// Full model dimension — the length sharded slices must tile exactly.
    pub dimension: usize,
    /// Sharded rounds in flight: `(round, per-shard slot)` where a slot holds
    /// the requesting shard server, its coordinate offset and its slice
    /// values. The gradient is computed once, when the last slice of a round
    /// lands and the full parameter vector can be assembled.
    pub pending_slices: Vec<PendingShardRound>,
    /// Recently served sharded rounds: `(round, loss, sent gradient)`. A
    /// shard server's retry is answered by re-slicing this cache — never by
    /// recomputing, which would double-draw the attack RNG streams.
    pub sent_cache: Vec<(u64, f32, Tensor)>,
}

impl WorkerActor {
    /// The worker loop: serve gradient requests until shutdown, crash or
    /// prolonged silence. Returns the node's network counters.
    pub fn run(mut self) -> NodeTelemetry {
        let origin = self.transport.local_id().0;
        flight::set_thread_node(origin);
        // One payload buffer, reused for every decoded request: steady-state
        // serving allocates nothing on the receive path.
        let mut values: Vec<f32> = Vec::new();
        // Exits on shutdown/crash, or when the inbox stays silent past the
        // idle timeout (transport gone or run abandoned).
        while let Ok(envelope) = self.transport.recv_timeout(self.idle_timeout) {
            self.telemetry.record_recv(envelope.payload.len());
            let Ok(header) = WireMessage::peek(&envelope.payload) else {
                continue; // garbage on the wire: a correct node ignores it
            };
            match header.kind {
                MsgKind::Shutdown => break,
                MsgKind::GradientRequest => {
                    let iteration = header.round as usize;
                    if let Some(Fault::CrashAt { iteration: at }) = self.fault {
                        if iteration >= at {
                            // Go silent: peers must survive via quorums, not errors.
                            self.transport.crash();
                            break;
                        }
                    }
                    if let Some(Fault::RestartAt { crash, rejoin }) = self.fault {
                        if !self.restarted && iteration >= crash {
                            // Die for real, then come back as a fresh
                            // incarnation: envelopes addressed to the dead
                            // one (including this request) are dropped and
                            // counted by the transport.
                            self.transport.crash();
                            if self.transport.rejoin().is_err() {
                                break; // substrate rejoins by process respawn
                            }
                            self.restarted = true;
                            self.telemetry.resumes += 1;
                            continue;
                        }
                        if self.restarted && iteration < rejoin {
                            // Respawned but not yet rejoined: observationally
                            // dead — peers ride the silence out via quorums
                            // and re-requests.
                            continue;
                        }
                    }
                    if let Some(Fault::Delay { millis }) = self.fault {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    if WireMessage::decode_into(&envelope.payload, &mut values).is_err() {
                        continue;
                    }
                    if self.shards > 1 && header.coord_len != 0 {
                        // Parameter-sharded request: a slice, not the model.
                        self.serve_shard_slice(envelope.from, &header, &values);
                        continue;
                    }
                    let params = Tensor::from_slice(&values);
                    let compute_span = garfield_obs::span_start();
                    let Ok((loss, honest)) = self.worker.honest_compute(&params, iteration) else {
                        continue; // malformed request (wrong dimension): drop it
                    };
                    garfield_obs::span_end(compute_span, &actor_obs().phase_compute);
                    let sent = self.outgoing_gradient(honest);
                    let reply = WireMessage::new(
                        MsgKind::GradientReply,
                        header.round,
                        loss,
                        sent.into_vec(),
                    );
                    self.reply(envelope.from, header.round, &reply);
                }
                _ => {} // server-to-server traffic never addresses a worker
            }
        }
        // Let asynchronous transports put the queued tail on the wire so
        // the per-peer snapshot below covers every message sent above.
        self.transport.flush(Duration::from_secs(5));
        self.telemetry.peers = self.transport.peer_counters();
        self.telemetry
    }

    /// Handles one shard server's `GradientRequest` carrying a parameter
    /// *slice* (wire header `coord_len != 0`). Slices are buffered until all
    /// `shards` of a round arrived; the full vector is then assembled, the
    /// gradient computed **once** and corrupted **once** — a Byzantine
    /// worker's RNG trajectory and attack history are bit-identical to the
    /// unsharded run — and sent back re-sliced, each shard server receiving
    /// exactly the coordinate range it asked for. Retries of already-served
    /// rounds re-slice the bounded sent-gradient cache instead of
    /// recomputing, which would double-draw the attack streams.
    fn serve_shard_slice(&mut self, from: NodeId, header: &WireHeader, slice: &[f32]) {
        let round = header.round;
        let shard = header.shard as usize;
        let offset = header.coord_offset as usize;
        if shard >= self.shards || offset + slice.len() > self.dimension {
            return; // mis-tagged request: a correct node ignores it
        }
        if let Some((_, loss, sent)) = self.sent_cache.iter().find(|(r, _, _)| *r == round) {
            let reply = WireMessage::new(
                MsgKind::GradientReply,
                round,
                *loss,
                sent.data()[offset..offset + slice.len()].to_vec(),
            )
            .with_shard(header.shard, header.coord_offset, header.coord_len);
            self.reply(from, round, &reply);
            return;
        }
        if !self.pending_slices.iter().any(|(r, _)| *r == round) {
            // Bound the in-flight rounds: a crashed shard server must not
            // leak assembly buffers for the rest of the run.
            if self.pending_slices.len() >= PENDING_SLICE_ROUNDS {
                if let Some(pos) =
                    (0..self.pending_slices.len()).min_by_key(|&i| self.pending_slices[i].0)
                {
                    self.pending_slices.remove(pos);
                }
            }
            self.pending_slices.push((round, vec![None; self.shards]));
        }
        let complete = {
            let slots = &mut self
                .pending_slices
                .iter_mut()
                .find(|(r, _)| *r == round)
                .expect("entry inserted above")
                .1;
            slots[shard] = Some((from, offset, slice.to_vec()));
            slots.iter().all(|s| s.is_some())
        };
        if !complete {
            return; // wait for the round's remaining slices
        }
        let pos = self
            .pending_slices
            .iter()
            .position(|(r, _)| *r == round)
            .expect("entry present");
        let (_, slots) = self.pending_slices.remove(pos);
        let mut params = vec![0.0f32; self.dimension];
        let mut covered = 0usize;
        for slot in &slots {
            let (_, off, vals) = slot.as_ref().expect("all slots filled");
            params[*off..*off + vals.len()].copy_from_slice(vals);
            covered += vals.len();
        }
        if covered != self.dimension {
            return; // gapped shard map: hostile or misconfigured, drop the round
        }
        let compute_span = garfield_obs::span_start();
        let Ok((loss, honest)) = self
            .worker
            .honest_compute(&Tensor::from_slice(&params), round as usize)
        else {
            return; // malformed request (wrong dimension): drop it
        };
        garfield_obs::span_end(compute_span, &actor_obs().phase_compute);
        let sent = self.outgoing_gradient(honest);
        for (k, slot) in slots.iter().enumerate() {
            let (requester, off, vals) = slot.as_ref().expect("all slots filled");
            let reply = WireMessage::new(
                MsgKind::GradientReply,
                round,
                loss,
                sent.data()[*off..*off + vals.len()].to_vec(),
            )
            .with_shard(k as u16, *off as u32, vals.len() as u32);
            self.reply(*requester, round, &reply);
        }
        self.sent_cache.push((round, loss, sent));
        if self.sent_cache.len() > SENT_CACHE_ROUNDS {
            self.sent_cache.remove(0);
        }
    }

    /// The gradient actually put on the wire: the honest vector on honest
    /// workers; on Byzantine ones the config attack's output, further
    /// corrupted by the fault-plan attack if present. Draws each attack RNG
    /// stream exactly once per call — callers must invoke this once per
    /// round, whatever the number of shards asking.
    fn outgoing_gradient(&mut self, honest: Tensor) -> Tensor {
        let byzantine = self.worker.is_byzantine() || self.fault_attack.is_some();
        if !byzantine {
            return honest;
        }
        let mut sent = self
            .worker
            .sent_gradient(honest.clone(), &self.attack_history);
        if let Some(attack) = &self.fault_attack {
            sent = attack.corrupt(&sent, &self.attack_history, &mut self.fault_rng);
        }
        // Remember the honest trajectory *after* corrupting: the history
        // holds previous rounds only, the current honest vector enters the
        // moment estimate via the attack's own `honest` argument.
        if self.attack_history.len() >= ATTACK_HISTORY_ROUNDS {
            self.attack_history.remove(0);
        }
        self.attack_history.push(honest);
        sent
    }

    /// Encodes, stamps and sends one reply, counting the bytes; send
    /// failures are tolerated (a crashed requester is what quorums absorb).
    fn reply(&mut self, to: NodeId, round: u64, msg: &WireMessage) {
        let origin = self.transport.local_id().0;
        let payload = encode_stamped(msg, origin, &mut self.seq);
        let bytes = payload.len();
        if self.transport.send(to, round, payload).is_ok() {
            self.telemetry.record_send(bytes);
        }
    }
}

/// How many sharded rounds a worker keeps in the slice-assembly buffer
/// before evicting the oldest (guards against shard servers that die
/// mid-round and leave a round forever incomplete).
const PENDING_SLICE_ROUNDS: usize = 8;

/// How many served sharded rounds stay re-sliceable for retries. Matches the
/// deepest plausible retry horizon: a shard server only retries its *current*
/// round, and shard servers drift by at most the rounds still in flight.
const SENT_CACHE_ROUNDS: usize = 4;

/// One collected reply: sender, aux scalar (loss), payload values.
type Reply = (NodeId, f32, Vec<f32>);

/// Everything a server-replica actor needs.
pub(crate) struct ServerActor {
    pub index: usize,
    pub transport: Box<dyn Transport>,
    pub server: ByzantineServer,
    pub system: SystemKind,
    pub config: ExperimentConfig,
    pub worker_ids: Vec<NodeId>,
    pub peer_ids: Vec<NodeId>,
    /// The parameter shard this replica owns, when the model is split across
    /// server shards (`None`: this replica holds the full vector). A shard
    /// server's model *is* the slice — requests it broadcasts and replies it
    /// accepts are tagged with the shard's coordinate range.
    pub shard: Option<ShardSpec>,
    /// The other shard servers of a sharded deployment (empty otherwise).
    /// They are not replicas — no model merging happens across shards — but
    /// they share the speculative fast-path latch via `SpeculationTrip`
    /// broadcasts (the cluster-wide sticky OR).
    pub shard_siblings: Vec<NodeId>,
    pub gradient_quorum: usize,
    pub round_deadline: Duration,
    pub fault: Option<Fault>,
    pub fault_attack: Option<Box<dyn Attack>>,
    pub fault_rng: TensorRng,
    /// Only the observer (server 0) evaluates accuracy.
    pub test_batch: Option<Batch>,
    /// Worker ids this replica winds down with a `Shutdown` when it exits
    /// (empty under the in-process executor, whose controller does it; the
    /// coordinating `garfield-node` server owns the duty in process-per-node
    /// deployments, where no controller exists).
    pub shutdown_targets: Vec<NodeId>,
    pub telemetry: NodeTelemetry,
    /// How long a pull waits before re-asking peers that have not replied.
    /// Requests are idempotent (a worker recomputes the same gradient for
    /// the same round), so the re-ask is what lets a peer that died and came
    /// back contribute to a round whose original request died with it.
    request_retry: Duration,
    /// Disk persistence policy; `None` disables checkpointing.
    checkpoint: Option<CheckpointPolicy>,
    /// First iteration to run (non-zero after a `--resume` restore).
    start_round: usize,
    /// Whether a `RestartAt` fault already fired (one restart per run).
    restarted: bool,
    /// The encoded `StateChunk` this replica serves to recovering peers:
    /// `(next round, wire bytes)`, refreshed at each iteration boundary.
    state_chunk: Option<(u64, bytes::Bytes)>,
    // Zero-copy aggregation machinery: decoded payloads live in pooled
    // buffers and the GAR reads them through borrowed views under the
    // machine-sized engine (bit-identical to the sequential engine, so
    // full-quorum reproducibility guarantees are unaffected).
    engine: Engine,
    pool: PayloadPool,
    /// The gradient GAR, owned by the actor (not the training loop) so that
    /// protocol handlers can latch its speculative fast path off when a
    /// sibling shard announces a `SpeculationTrip` mid-collect.
    gradient_gar: Box<dyn Gar>,
    /// Whether this replica already told its shard siblings that its
    /// speculative fast path tripped (one broadcast per run; receivers never
    /// re-broadcast, so the sticky OR converges without message storms).
    spec_trip_announced: bool,
    // Protocol state.
    round: usize,
    phase1_done: bool,
    /// The model this replica serves to peers: snapshotted once per round,
    /// right after the gradient update and before the model merge, so a
    /// request for round `r` always observes the same post-update state no
    /// matter when it arrives relative to this replica's own progress.
    served_snapshot: Option<Tensor>,
    deferred_requests: Vec<(NodeId, u64)>,
    done_peers: HashSet<NodeId>,
    round_latencies: Vec<f64>,
    /// Per-sender wire sequence number (trace header fields).
    seq: u64,
    /// Byzantine forensics: per-peer suspicion accumulated from every GAR
    /// selection this replica performs (gradients and MSMW model merges).
    ledger: SuspicionLedger,
    /// Reused selection report — steady state allocates nothing.
    outcome: SelectionOutcome,
}

/// What a server actor hands back when it finishes.
pub(crate) struct ServerOutcome {
    pub trace: TrainingTrace,
    pub final_model: Tensor,
    pub telemetry: NodeTelemetry,
    pub round_latencies: Vec<f64>,
    pub resumed_from: Option<usize>,
    /// Final per-peer suspicion state, sorted by peer id.
    pub suspicion: Vec<PeerSuspicion>,
}

impl ServerActor {
    /// Builds the actor from its public description and a transport
    /// endpoint, restoring checkpointed state when the node carries a resume
    /// record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the resume checkpoint
    /// belongs to a different experiment, and [`CoreError::Ml`] when its
    /// model does not fit this deployment.
    pub fn from_node(node: ServerNode, transport: Box<dyn Transport>) -> CoreResult<Self> {
        let telemetry = NodeTelemetry::new(transport.local_id().0, garfield_net::Role::Server);
        let fault_attack = match node.fault {
            Some(Fault::Byzantine { attack }) => Some(attack.build()),
            _ => None,
        };
        let (gar_kind, gar_f) = garfield_core::gradient_gar(node.system, &node.config);
        let gradient_gar = build_gar(&gar_kind, node.gradient_quorum, gar_f)?;
        let mut actor = ServerActor {
            index: node.index,
            transport,
            server: node.server,
            system: node.system,
            config: node.config,
            worker_ids: node.worker_ids,
            peer_ids: node.peer_ids,
            shard: node.shard,
            shard_siblings: node.shard_siblings,
            gradient_quorum: node.gradient_quorum,
            round_deadline: node.round_deadline,
            fault: node.fault,
            fault_attack,
            fault_rng: node.fault_rng,
            test_batch: node.test_batch,
            shutdown_targets: node.shutdown_targets,
            telemetry,
            request_retry: node.request_retry,
            checkpoint: node.checkpoint,
            start_round: 0,
            restarted: false,
            state_chunk: None,
            engine: Engine::auto(),
            pool: PayloadPool::default(),
            gradient_gar,
            spec_trip_announced: false,
            round: 0,
            phase1_done: false,
            served_snapshot: None,
            deferred_requests: Vec::new(),
            done_peers: HashSet::new(),
            round_latencies: Vec::new(),
            seq: 0,
            ledger: SuspicionLedger::default(),
            outcome: SelectionOutcome::default(),
        };
        if let Some(cp) = node.resume {
            cp.validate_for(actor.system.as_str(), actor.config.seed)?;
            actor.adopt_state(&cp, true)?;
            actor.start_round = cp.round as usize;
            actor.telemetry.resumes += 1;
        }
        Ok(actor)
    }

    /// Installs a checkpoint's training state: model, optimizer, and — for a
    /// disk resume of this node's *own* state (`own = true`) — the RNG
    /// streams. Live catch-up adopts a *peer's* chunk, whose RNG streams
    /// belong to that peer and are skipped.
    fn adopt_state(&mut self, cp: &Checkpoint, own: bool) -> CoreResult<()> {
        self.server
            .honest_mut()
            .write_model(&Tensor::from_slice(&cp.model))?;
        self.server
            .honest_mut()
            .optimizer_mut()
            .restore(cp.opt_steps, cp.velocity.as_deref().map(Tensor::from_slice));
        if own {
            if let Some(words) = cp.fault_rng {
                self.fault_rng = TensorRng::from_state_words(words);
            }
            if let Some(words) = cp.attack_rng {
                self.server.set_rng_state(words);
            }
        }
        Ok(())
    }

    /// Serializes this replica's current training state as of the completed
    /// iteration `iteration` (the checkpoint resumes at `iteration + 1`).
    fn build_checkpoint(&self, iteration: usize) -> Checkpoint {
        let optimizer = self.server.honest().optimizer();
        Checkpoint {
            system: self.system.as_str().to_string(),
            seed: self.config.seed,
            round: (iteration + 1) as u64,
            opt_steps: optimizer.steps(),
            model: self.server.honest().parameters().into_vec(),
            velocity: optimizer.velocity().map(|v| v.data().to_vec()),
            fault_rng: Some(self.fault_rng.state_words()),
            attack_rng: Some(self.server.rng_state()),
        }
    }

    /// Runs the replica to completion: the training loop, then — success or
    /// liveness failure alike — the worker wind-down this replica owns.
    pub fn run(mut self) -> CoreResult<ServerOutcome> {
        flight::set_thread_node(self.transport.local_id().0);
        let result = self.train();
        // Shutdown is best-effort and unconditional: after a liveness
        // failure the surviving worker processes must not be left waiting
        // out their idle timeout.
        if !self.shutdown_targets.is_empty() {
            let shutdown = self.stamped(&WireMessage::control(
                MsgKind::Shutdown,
                self.config.iterations as u64,
            ));
            for to in self.shutdown_targets.clone() {
                self.send(to, self.config.iterations as u64, shutdown.clone());
            }
        }
        // Let asynchronous transports put the queued tail (including the
        // shutdowns just sent) on the wire before the counters are read.
        self.transport.flush(Duration::from_secs(5));
        self.telemetry.peers = self.transport.peer_counters();
        let trace = result?;
        Ok(ServerOutcome {
            trace,
            final_model: self.server.honest().parameters(),
            telemetry: self.telemetry,
            round_latencies: self.round_latencies,
            resumed_from: (self.start_round > 0).then_some(self.start_round),
            suspicion: self.ledger.snapshot(),
        })
    }

    /// The replica's training loop.
    fn train(&mut self) -> CoreResult<TrainingTrace> {
        let model_quorum = self.config.model_quorum();
        // Sharded replicas export their round as a per-shard gauge so
        // `expfig watch` can show how far the slowest/fastest shard has got.
        let shard_round_gauge = self.shard.as_ref().map(|spec| {
            garfield_obs::metrics::gauge(
                "garfield_shard_round",
                "Current training round, per parameter shard.",
                &[("shard", &spec.index.to_string())],
            )
        });
        let mut trace = TrainingTrace::new(self.system.as_str(), self.config.effective_batch());
        let mut crashed = false;

        let mut iteration = self.start_round;
        while iteration < self.config.iterations {
            self.round = iteration;
            self.phase1_done = false;
            if let Some(Fault::CrashAt { iteration: at }) = self.fault {
                if iteration >= at {
                    crashed = true;
                    break;
                }
            }
            if let Some(Fault::RestartAt { crash, rejoin }) = self.fault {
                if !self.restarted && iteration >= crash {
                    // Die for real, then come back as a fresh incarnation
                    // and catch up from the fastest live peer's StateChunk.
                    self.transport.crash();
                    if self.transport.rejoin().is_err() {
                        crashed = true; // substrate rejoins by process respawn
                        break;
                    }
                    self.restarted = true;
                    self.telemetry.resumes += 1;
                    iteration = self.catch_up(rejoin.max(iteration))?;
                    continue;
                }
            }
            if let Some(Fault::Delay { millis }) = self.fault {
                std::thread::sleep(Duration::from_millis(millis));
            }
            let round_start = Instant::now();
            flight::record(EventKind::RoundStart, iteration as u64, None, 0.0);
            garfield_obs::http::set_health_round(iteration as u64);
            if let Some(gauge) = &shard_round_gauge {
                gauge.set(iteration as f64);
            }

            // --- get_gradients(iteration, q): broadcast the model (a shard
            // server's model is its slice, tagged with the coordinate range
            // so workers can assemble the full vector), unblock on the
            // fastest q gradient replies.
            let params = self.server.honest().parameters();
            let mut request_msg = WireMessage::new(
                MsgKind::GradientRequest,
                iteration as u64,
                0.0,
                params.data().to_vec(),
            );
            if let Some(spec) = &self.shard {
                request_msg =
                    request_msg.with_shard(spec.index as u16, spec.offset as u32, spec.len as u32);
            }
            let request = self.stamped(&request_msg);
            for to in self.worker_ids.clone() {
                self.send(to, iteration as u64, request.clone());
            }
            let worker_ids = self.worker_ids.clone();
            let replies = self.collect(
                MsgKind::GradientReply,
                iteration as u64,
                self.gradient_quorum,
                &request,
                &worker_ids,
            );
            if replies.len() < self.gradient_quorum {
                return Err(self.liveness_error(
                    "gradient",
                    iteration,
                    replies.len(),
                    self.gradient_quorum,
                ));
            }
            let mut loss_sum = 0.0f32;
            for (_, loss, _) in &replies {
                loss_sum += loss;
            }
            let mean_loss = loss_sum / replies.len() as f32;
            let mut communication = round_start.elapsed().as_secs_f64();

            // Aggregate straight from the decoded wire payloads: the GAR
            // reads the pooled buffers through borrowed views — no
            // per-gradient Tensor materialisation on the hot path.
            let aggregate_start = Instant::now();
            let reply_peers: Vec<u32> = replies.iter().map(|(id, _, _)| id.0).collect();
            let views: Vec<GradientView<'_>> = replies
                .iter()
                .map(|(_, _, values)| GradientView::from(values))
                .collect();
            let aggregated = self.server.honest().aggregate_views_observed(
                self.gradient_gar.as_ref(),
                &views,
                &self.engine,
                &mut self.outcome,
            )?;
            drop(views);
            // Replies are sorted by sender id (see `collect`), so view index
            // `i` of the outcome belongs to `reply_peers[i]`.
            self.ledger
                .observe_round(iteration as u64, &reply_peers, &self.outcome);
            self.server.honest_mut().update_model(&aggregated)?;
            let mut aggregation = aggregate_start.elapsed().as_secs_f64();
            // Speculative rounds leave a wire-level trail: one event per
            // round, hit (fast path held) or fallback (robust replay).
            match self.gradient_gar.fell_back() {
                Some(false) => {
                    flight::record(
                        EventKind::SpeculationHit,
                        iteration as u64,
                        None,
                        aggregation,
                    );
                }
                Some(true) => {
                    flight::record(
                        EventKind::SpeculationFallback,
                        iteration as u64,
                        None,
                        aggregation,
                    );
                    self.announce_speculation_trip(iteration as u64);
                }
                None => {}
            }
            for (_, _, values) in replies {
                self.pool.restore(values);
            }

            // The model is now the post-update state of this round: snapshot
            // it as the vector served to peers (one Byzantine corruption per
            // round, so the served content is scheduling-independent), then
            // answer any get_models() that raced ahead of us.
            self.phase1_done = true;
            if !self.peer_ids.is_empty() {
                self.refresh_served_snapshot();
            }
            self.flush_deferred();

            // --- get_models(q): pull the fastest q peer models (MSMW only).
            if self.system == SystemKind::Msmw && !self.peer_ids.is_empty() {
                let pull_start = Instant::now();
                let request = self.stamped(&WireMessage::control(
                    MsgKind::ModelRequest,
                    iteration as u64,
                ));
                for to in self.peer_ids.clone() {
                    self.send(to, iteration as u64, request.clone());
                }
                let peer_ids = self.peer_ids.clone();
                let model_replies = self.collect(
                    MsgKind::ModelReply,
                    iteration as u64,
                    model_quorum,
                    &request,
                    &peer_ids,
                );
                if model_replies.len() < model_quorum {
                    return Err(self.liveness_error(
                        "model",
                        iteration,
                        model_replies.len(),
                        model_quorum,
                    ));
                }
                let own = self.server.honest().parameters();
                communication += pull_start.elapsed().as_secs_f64();

                let merge_start = Instant::now();
                let mut merge_peers: Vec<u32> =
                    model_replies.iter().map(|(id, _, _)| id.0).collect();
                merge_peers.push(self.transport.local_id().0);
                let mut inputs: Vec<GradientView<'_>> = model_replies
                    .iter()
                    .map(|(_, _, values)| GradientView::from(values))
                    .collect();
                inputs.push(GradientView::from(&own));
                let model_gar = build_gar(&self.config.model_gar, inputs.len(), self.config.fps)?;
                let merged = self.server.honest().aggregate_views_observed(
                    model_gar.as_ref(),
                    &inputs,
                    &self.engine,
                    &mut self.outcome,
                )?;
                drop(inputs);
                // Byzantine *server* forensics: model merges score the peer
                // replicas (and this replica's own entry, last index).
                self.ledger
                    .observe_round(iteration as u64, &merge_peers, &self.outcome);
                self.server.honest_mut().write_model(&merged)?;
                aggregation += merge_start.elapsed().as_secs_f64();
                for (_, _, values) in model_replies {
                    self.pool.restore(values);
                }
            }

            // Live timing is wall-clock: the server cannot separate its
            // workers' compute from transfer, so the whole pull shows up as
            // communication and only the local GAR time is split out.
            trace.iterations.push(IterationTiming {
                computation: 0.0,
                communication,
                aggregation,
            });
            let round_latency = round_start.elapsed().as_secs_f64();
            self.round_latencies.push(round_latency);
            let obs = actor_obs();
            obs.phase_communication.observe(communication);
            obs.phase_aggregation.observe(aggregation);
            obs.round_seconds.observe(round_latency);
            obs.rounds_total.inc();
            flight::record(EventKind::RoundEnd, iteration as u64, None, round_latency);

            if let Some(test) = &self.test_batch {
                let every = self.config.eval_every;
                let last = iteration + 1 == self.config.iterations;
                if every != 0 && (iteration.is_multiple_of(every) || last) {
                    let accuracy = self.server.honest().compute_accuracy(test);
                    trace.accuracy.push(AccuracyPoint {
                        iteration,
                        sim_time: trace.total_time(),
                        accuracy,
                        loss: mean_loss,
                    });
                }
            }

            // The iteration boundary is the recoverable state: refresh the
            // StateChunk served to catching-up peers and, on the configured
            // cadence, persist the same record to disk.
            self.record_recovery_state(iteration)?;
            iteration += 1;
        }

        if crashed {
            self.transport.crash();
        } else {
            self.linger();
        }
        Ok(trace)
    }

    /// Receives until `want` replies of `(kind, round)` arrived or the
    /// deadline passed, servicing peer model requests along the way.
    ///
    /// Peers that have not replied after [`ServerActor::request_retry`] are
    /// re-sent `request`. Requests are idempotent (a worker recomputes the
    /// same gradient for the same round; model pulls answer from snapshots),
    /// so re-asking never changes what a live peer contributes — it exists
    /// for the peer whose first request died with a crashed incarnation and
    /// who can only contribute to this round if asked again.
    ///
    /// The result is sorted by sender id, which makes the aggregation input
    /// independent of message arrival *order*. Note the quorum *membership*
    /// is still arrival-driven when `want` is below the number of live
    /// repliers: full-quorum (synchronous) runs are bit-reproducible,
    /// sub-quorum asynchronous runs are live but not.
    fn collect(
        &mut self,
        kind: MsgKind,
        round: u64,
        want: usize,
        request: &bytes::Bytes,
        recipients: &[NodeId],
    ) -> Vec<Reply> {
        flight::record(EventKind::PullIssued, round, None, want as f64);
        let deadline = Instant::now() + self.round_deadline;
        let mut next_retry = Instant::now() + self.request_retry;
        let mut collected: Vec<Reply> = Vec::with_capacity(want);
        while collected.len() < want {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if now >= next_retry {
                for &to in recipients {
                    if !collected.iter().any(|(id, _, _)| *id == to) {
                        self.send(to, round, request.clone());
                        self.telemetry.requests_retried += 1;
                        actor_obs().pull_retries.inc();
                        flight::record(EventKind::PullRetried, round, Some(to.0), 0.0);
                    }
                }
                next_retry = now + self.request_retry;
            }
            let wait = deadline.min(next_retry).saturating_duration_since(now);
            let envelope = match self.transport.recv_timeout(wait) {
                Ok(env) => env,
                Err(garfield_net::NetError::Timeout) => continue, // retry or deadline
                Err(_) => break,
            };
            self.telemetry.record_recv(envelope.payload.len());
            // Structural validation without materialising the payload:
            // control traffic and garbage never cost an allocation.
            let Ok(header) = WireMessage::peek(&envelope.payload) else {
                continue;
            };
            if header.kind == kind && header.round == round {
                // A shard server accepts only replies sliced exactly to its
                // own coordinate range: a mis-tagged slice is Byzantine noise
                // (or another shard's reply misrouted) and aggregating it
                // would silently mix coordinate spaces.
                if let Some(spec) = &self.shard {
                    let matches_shard = header.shard as usize == spec.index
                        && header.coord_offset as usize == spec.offset
                        && header.coord_len as usize == spec.len;
                    if !matches_shard {
                        continue;
                    }
                }
                // One reply per peer per round; duplicates are Byzantine noise.
                if !collected.iter().any(|(id, _, _)| *id == envelope.from) {
                    let mut values = self.pool.checkout();
                    if WireMessage::decode_into(&envelope.payload, &mut values).is_ok() {
                        collected.push((envelope.from, header.aux, values));
                        flight::record(EventKind::PullSatisfied, round, Some(envelope.from.0), 0.0);
                    } else {
                        self.pool.restore(values); // unreachable: peek accepted
                    }
                }
            } else {
                self.handle_protocol(envelope.from, header.kind, header.round);
            }
        }
        collected.sort_by_key(|(id, _, _)| *id);
        flight::record(EventKind::QuorumFormed, round, None, collected.len() as f64);
        collected
    }

    /// Handles protocol traffic that is not the reply currently waited on.
    /// Only the header matters: requests and done-markers carry no payload.
    fn handle_protocol(&mut self, from: NodeId, kind: MsgKind, round: u64) {
        match kind {
            MsgKind::ModelRequest => {
                // Serve the post-update state of the requested round: a
                // request for a round this replica has not yet updated for
                // (its own round, pre-update, or a future round a fast peer
                // raced into) is deferred until the matching snapshot exists
                // — sim semantics, where get_models() always observes peers
                // after their gradient step of the same round.
                let requested = round as usize;
                if requested < self.round || (requested == self.round && self.phase1_done) {
                    self.serve_model(from, round);
                } else {
                    self.deferred_requests.push((from, round));
                }
            }
            MsgKind::ServerDone => {
                self.done_peers.insert(from);
            }
            MsgKind::SpeculationTrip => {
                // A sibling shard's speculative fast path tripped: latch this
                // replica's GAR onto the robust fallback too (the sticky OR —
                // suspicion anywhere in the cluster disables speculation
                // everywhere). Marking the trip as announced stops this
                // replica from re-broadcasting when its own next round
                // reports the (now forced) fallback: the originator already
                // reached every sibling.
                self.gradient_gar.force_fallback();
                self.spec_trip_announced = true;
            }
            MsgKind::StateRequest => {
                // A recovering peer wants to catch up. Serve the latest
                // iteration-boundary state; `round` names the lowest round
                // the requester will accept, but serving an older one is
                // harmless — the requester keeps polling until the cluster
                // has advanced far enough.
                if let Some((next_round, chunk)) = self.state_chunk.clone() {
                    self.send(from, next_round, chunk);
                    self.telemetry.state_chunks_served += 1;
                    actor_obs().state_chunks_served.inc();
                    flight::record(EventKind::StateChunkServed, next_round, Some(from.0), 0.0);
                }
            }
            _ => {} // stale replies from rounds this replica already left behind
        }
    }

    /// Refreshes the recovery artefacts at the boundary of the completed
    /// `iteration`: the in-memory `StateChunk` served to catching-up peers
    /// (only where peers exist to request it) and, on the configured
    /// cadence, the on-disk checkpoint.
    fn record_recovery_state(&mut self, iteration: usize) -> CoreResult<()> {
        let serve_peers = !self.peer_ids.is_empty();
        let disk_due = self.checkpoint.as_ref().is_some_and(|p| p.due(iteration));
        if !serve_peers && !disk_due {
            return Ok(());
        }
        // One state capture feeds both transports: the model (and velocity)
        // copy is the expensive part at large d, so never take it twice.
        let cp = self.build_checkpoint(iteration);
        if serve_peers {
            let message = WireMessage::new(
                MsgKind::StateChunk,
                cp.round,
                0.0, // chunk index: state fits a single frame today
                cp.to_wire_words(),
            );
            // Deliberately unstamped (zero trace fields): the chunk is
            // encoded once and served arbitrarily later, so a build-time
            // timestamp would fabricate one-way delays. Transports skip
            // unstamped payloads when recording wire trace events.
            self.state_chunk = Some((cp.round, message.encode()));
        }
        if disk_due {
            let dir = self
                .checkpoint
                .as_ref()
                .expect("disk_due implies a policy")
                .dir
                .clone();
            let span = garfield_obs::span_start();
            cp.save(dir)?;
            let spent = garfield_obs::span_end(span, &actor_obs().phase_checkpoint);
            self.telemetry.checkpoints_written += 1;
            actor_obs().checkpoints_written.inc();
            flight::record(
                EventKind::CheckpointWritten,
                iteration as u64,
                None,
                spent.map(|d| d.as_secs_f64()).unwrap_or(0.0),
            );
        }
        Ok(())
    }

    /// The rejoin catch-up: poll live peers with `StateRequest` until one
    /// serves a `StateChunk` at or past `min_round`, adopt its model and
    /// optimizer state, and return the round training resumes at.
    ///
    /// While catching up the replica is not silent: it keeps answering peer
    /// model requests with its (stale) crash-time snapshot — a straggler's
    /// behaviour, covered by the model GAR's `fps` tolerance — so peers at
    /// full model quorum are not stalled by the recovery.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] when no peer serves a fresh-enough chunk
    /// before the round deadline.
    fn catch_up(&mut self, min_round: usize) -> CoreResult<usize> {
        let deadline = Instant::now() + self.round_deadline;
        let mut next_ask = Instant::now(); // ask immediately, then retry
        let request = self.stamped(&WireMessage::control(
            MsgKind::StateRequest,
            min_round as u64,
        ));
        let mut values = self.pool.checkout();
        let adopted = loop {
            let now = Instant::now();
            if now >= deadline {
                self.pool.restore(values);
                return Err(self.liveness_error("state", min_round, 0, 1));
            }
            if now >= next_ask {
                for to in self.peer_ids.clone() {
                    self.send(to, min_round as u64, request.clone());
                }
                next_ask = now + self.request_retry;
            }
            let wait = deadline.min(next_ask).saturating_duration_since(now);
            let envelope = match self.transport.recv_timeout(wait) {
                Ok(env) => env,
                Err(garfield_net::NetError::Timeout) => continue,
                Err(_) => {
                    self.pool.restore(values);
                    return Err(self.liveness_error("state", min_round, 0, 1));
                }
            };
            self.telemetry.record_recv(envelope.payload.len());
            let Ok(header) = WireMessage::peek(&envelope.payload) else {
                continue;
            };
            match header.kind {
                MsgKind::StateChunk => {
                    if WireMessage::decode_into(&envelope.payload, &mut values).is_err() {
                        continue; // unreachable: peek accepted
                    }
                    let Ok(cp) = Checkpoint::from_wire_words(&values) else {
                        continue; // a Byzantine peer may serve garbage state
                    };
                    // A chunk is adopted only if it survives every shape
                    // check a Byzantine peer could fail: experiment identity,
                    // freshness, model and velocity dimensions. A hostile
                    // chunk must cost this replica nothing but the poll —
                    // never an aborted run.
                    let d = self.server.honest().dimension();
                    if cp
                        .validate_for(self.system.as_str(), self.config.seed)
                        .is_err()
                        || cp.model.len() != d
                        || cp.velocity.as_ref().is_some_and(|v| v.len() != d)
                    {
                        continue;
                    }
                    if (cp.round as usize) < min_round {
                        continue; // peer not there yet: keep polling
                    }
                    self.telemetry.state_chunks_received += 1;
                    break cp;
                }
                MsgKind::ModelRequest => {
                    // Serve the stale snapshot rather than deferring: a
                    // recovering replica must not stall its peers' merges.
                    self.serve_model(envelope.from, header.round);
                }
                _ => self.handle_protocol(envelope.from, header.kind, header.round),
            }
        };
        self.pool.restore(values);
        self.adopt_state(&adopted, false)?;
        Ok((adopted.round as usize).min(self.config.iterations))
    }

    /// Recomputes the vector this replica serves to peers (corrupted if the
    /// replica is Byzantine — by config attack inside
    /// [`ByzantineServer::served_model`], by fault-plan attack here).
    fn refresh_served_snapshot(&mut self) {
        let served = self.server.served_model(&[]);
        let served = match &self.fault_attack {
            Some(attack) => attack.corrupt(&served, &[], &mut self.fault_rng),
            None => served,
        };
        self.served_snapshot = Some(served);
    }

    /// Replies to a peer's `get_models()` with the snapshotted served model.
    ///
    /// Requests for rounds older than the snapshot (possible only in
    /// sub-quorum asynchronous regimes, where a replica can outrun a slow
    /// peer) are answered with the latest snapshot — the freshest state the
    /// replica can still offer.
    fn serve_model(&mut self, to: NodeId, round: u64) {
        let Some(model) = self.served_snapshot.clone() else {
            return; // no completed phase 1 yet: the peer's deadline handles it
        };
        let reply = self.stamped(&WireMessage::new(
            MsgKind::ModelReply,
            round,
            0.0,
            model.into_vec(),
        ));
        self.send(to, round, reply);
    }

    /// Serves the deferred model requests whose round this replica has now
    /// updated for, keeping later ones deferred.
    fn flush_deferred(&mut self) {
        let current = self.round;
        let pending = std::mem::take(&mut self.deferred_requests);
        for (to, round) in pending {
            if round as usize <= current {
                self.serve_model(to, round);
            } else {
                self.deferred_requests.push((to, round));
            }
        }
    }

    /// After the last iteration, keep serving peer model requests until every
    /// peer announced completion (or the deadline passes), so slower replicas
    /// can finish their final `get_models()` round.
    fn linger(&mut self) {
        if self.peer_ids.is_empty() {
            return;
        }
        self.round = usize::MAX; // every request now counts as "past round"
        self.phase1_done = true;
        self.flush_deferred();
        let done = self.stamped(&WireMessage::control(
            MsgKind::ServerDone,
            self.config.iterations as u64,
        ));
        for to in self.peer_ids.clone() {
            self.send(to, self.config.iterations as u64, done.clone());
        }
        let deadline = Instant::now() + self.round_deadline;
        while self.done_peers.len() < self.peer_ids.len() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let envelope = match self.transport.recv_timeout(deadline - now) {
                Ok(env) => env,
                Err(_) => break,
            };
            self.telemetry.record_recv(envelope.payload.len());
            if let Ok(header) = WireMessage::peek(&envelope.payload) {
                self.handle_protocol(envelope.from, header.kind, header.round);
            }
        }
    }

    /// Tells the shard siblings this replica's speculative fast path tripped
    /// (once per run): the receiving end of the cluster-wide sticky OR. The
    /// broadcast is fire-and-forget — a sibling that misses it only stays on
    /// the fast path until its own slice shows suspicion, which is the
    /// per-shard behaviour sharding starts from anyway.
    fn announce_speculation_trip(&mut self, round: u64) {
        if self.spec_trip_announced || self.shard_siblings.is_empty() {
            return;
        }
        self.spec_trip_announced = true;
        let shard = self.shard.as_ref().map(|s| s.index as u16).unwrap_or(0);
        let trip = self.stamped(
            &WireMessage::control(MsgKind::SpeculationTrip, round).with_shard(shard, 0, 0),
        );
        for to in self.shard_siblings.clone() {
            self.send(to, round, trip.clone());
        }
    }

    /// [`encode_stamped`] with this replica's origin id and sequence counter.
    fn stamped(&mut self, msg: &WireMessage) -> bytes::Bytes {
        encode_stamped(msg, self.transport.local_id().0, &mut self.seq)
    }

    /// Sends one payload, counting it; per-peer failures are tolerated (a
    /// crashed recipient is exactly what quorums exist for).
    fn send(&mut self, to: NodeId, tag: u64, payload: bytes::Bytes) {
        let bytes = payload.len();
        if self.transport.send(to, tag, payload).is_ok() {
            self.telemetry.record_send(bytes);
        }
    }

    fn liveness_error(&self, what: &str, iteration: usize, got: usize, want: usize) -> CoreError {
        CoreError::Net(format!(
            "live {}: server {} collected only {got}/{want} {what} replies for iteration \
             {iteration} within {:?} — deploy n ≥ q + f nodes to preserve liveness",
            self.system, self.index, self.round_deadline
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_core::{shard_server, Deployment, ShardMap, ShardSpec};
    use garfield_net::{Router, RouterTransport};

    fn sharded_config(shards: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.nw = 1;
        cfg.fw = 0;
        cfg.shards = shards;
        cfg.gradient_gar = garfield_aggregation::GarKind::Median;
        cfg.iterations = 2;
        cfg
    }

    /// Builds the shard server actor of `index` over `router`, under the
    /// speculative system (so its gradient GAR exposes the fast-path latch).
    fn shard_actor(
        router: &Router,
        config: &ExperimentConfig,
        index: usize,
        siblings: Vec<NodeId>,
    ) -> ServerActor {
        let parts = Deployment::new(config.clone()).unwrap().into_live_parts();
        let map = ShardMap::new(parts.dimension, config.shards).unwrap();
        let initial = parts.servers[0].honest().parameters();
        let node = ServerNode {
            index,
            server: shard_server(map.spec(index), initial.data(), config),
            system: SystemKind::Speculative,
            config: config.clone(),
            worker_ids: Vec::new(),
            peer_ids: Vec::new(),
            shard: Some(map.spec(index)),
            shard_siblings: siblings,
            gradient_quorum: 1,
            round_deadline: Duration::from_millis(200),
            fault: None,
            fault_rng: TensorRng::seed_from(7),
            test_batch: None,
            shutdown_targets: Vec::new(),
            request_retry: Duration::from_millis(50),
            checkpoint: None,
            resume: None,
        };
        let transport = Box::new(RouterTransport::connect(router, NodeId(index as u32)).unwrap());
        ServerActor::from_node(node, transport).unwrap()
    }

    #[test]
    fn a_sibling_speculation_trip_latches_the_fallback_without_rebroadcast() {
        let router = Router::new();
        let sibling = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let mut actor = shard_actor(&router, &sharded_config(2), 0, vec![NodeId(1)]);
        assert_eq!(actor.gradient_gar.fell_back(), Some(false));
        actor.handle_protocol(NodeId(1), MsgKind::SpeculationTrip, 3);
        assert_eq!(
            actor.gradient_gar.fell_back(),
            Some(true),
            "the sticky-OR receive must latch the robust fallback"
        );
        // Receiving also arms the announce guard: the originator already
        // reached every sibling, so echoing would only ping-pong trips.
        actor.announce_speculation_trip(4);
        assert!(matches!(
            sibling.recv_timeout(Duration::from_millis(100)),
            Err(garfield_net::NetError::Timeout)
        ));
    }

    #[test]
    fn an_own_trip_is_broadcast_to_every_sibling_exactly_once() {
        let router = Router::new();
        let s1 = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let s2 = RouterTransport::connect(&router, NodeId(2)).unwrap();
        let mut actor = shard_actor(&router, &sharded_config(3), 0, vec![NodeId(1), NodeId(2)]);
        actor.announce_speculation_trip(5);
        actor.announce_speculation_trip(6); // latched: must not send again
        for t in [&s1, &s2] {
            let env = t.recv_timeout(Duration::from_secs(1)).unwrap();
            let header = WireMessage::peek(&env.payload).unwrap();
            assert_eq!(header.kind, MsgKind::SpeculationTrip);
            assert_eq!(header.round, 5);
            assert_eq!(header.shard, 0, "the trip names the tripping shard");
            assert!(matches!(
                t.recv_timeout(Duration::from_millis(100)),
                Err(garfield_net::NetError::Timeout)
            ));
        }
    }

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn worker_assembles_slices_computes_once_and_reslices_replies_bit_exactly() {
        let cfg = sharded_config(2);
        let parts = Deployment::new(cfg.clone()).unwrap().into_live_parts();
        let dimension = parts.dimension;
        let map = ShardMap::new(dimension, 2).unwrap();
        let initial = parts.servers[0].honest().parameters();

        // The unsharded reference: an identically-constructed worker
        // computing on the full parameter vector.
        let mut reference = Deployment::new(cfg.clone())
            .unwrap()
            .into_live_parts()
            .workers
            .remove(0);
        let (ref_loss, ref_grad) = reference.honest_compute(&initial, 0).unwrap();

        let router = Router::new();
        let s0 = RouterTransport::connect(&router, NodeId(0)).unwrap();
        let s1 = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let transport = Box::new(RouterTransport::connect(&router, NodeId(2)).unwrap());
        let mut workers = parts.workers;
        let actor = WorkerActor {
            telemetry: NodeTelemetry::new(2, garfield_net::Role::Worker),
            transport,
            worker: workers.remove(0),
            fault: None,
            fault_attack: None,
            fault_rng: TensorRng::seed_from(3),
            idle_timeout: Duration::from_secs(5),
            restarted: false,
            seq: 0,
            attack_history: Vec::new(),
            shards: 2,
            dimension,
            pending_slices: Vec::new(),
            sent_cache: Vec::new(),
        };
        let handle = std::thread::spawn(move || actor.run());

        let send_slice = |t: &RouterTransport, spec: ShardSpec, round: u64| {
            let msg = WireMessage::new(
                MsgKind::GradientRequest,
                round,
                0.0,
                spec.slice(initial.data()).to_vec(),
            )
            .with_shard(spec.index as u16, spec.offset as u32, spec.len as u32);
            t.send(NodeId(2), round, msg.encode()).unwrap();
        };
        let recv_reply = |t: &RouterTransport, spec: ShardSpec| -> (f32, Vec<f32>) {
            let env = t.recv_timeout(Duration::from_secs(5)).unwrap();
            let header = WireMessage::peek(&env.payload).unwrap();
            assert_eq!(header.kind, MsgKind::GradientReply);
            assert_eq!(header.round, 0);
            assert_eq!(header.shard as usize, spec.index);
            assert_eq!(header.coord_offset as usize, spec.offset);
            assert_eq!(header.coord_len as usize, spec.len);
            let msg = WireMessage::decode(&env.payload).unwrap();
            (header.aux, msg.values)
        };

        // No reply until the round's *last* slice lands.
        send_slice(&s0, map.spec(0), 0);
        assert!(matches!(
            s0.recv_timeout(Duration::from_millis(150)),
            Err(garfield_net::NetError::Timeout)
        ));
        send_slice(&s1, map.spec(1), 0);
        let (loss0, slice0) = recv_reply(&s0, map.spec(0));
        let (loss1, slice1) = recv_reply(&s1, map.spec(1));

        // Both shards observe the same loss, and the stitched slices are the
        // unsharded gradient, bit for bit.
        assert_eq!(loss0.to_bits(), ref_loss.to_bits());
        assert_eq!(loss1.to_bits(), ref_loss.to_bits());
        let mut stitched = slice0;
        stitched.extend_from_slice(&slice1);
        assert_eq!(bits(&stitched), bits(ref_grad.data()));

        // A retry re-slices the sent cache bit-exactly (no recompute).
        send_slice(&s1, map.spec(1), 0);
        let (retry_loss, retry_slice) = recv_reply(&s1, map.spec(1));
        assert_eq!(retry_loss.to_bits(), ref_loss.to_bits());
        assert_eq!(bits(&retry_slice), bits(&stitched[map.spec(1).range()]));

        s0.send(
            NodeId(2),
            1,
            WireMessage::control(MsgKind::Shutdown, 1).encode(),
        )
        .unwrap();
        let telemetry = handle.join().unwrap();
        assert_eq!(
            telemetry.messages_sent, 3,
            "two first replies plus one cached retry"
        );
    }
}
