//! Per-node entry points: run *one* worker or server replica of an
//! experiment over any [`Transport`].
//!
//! The [`LiveExecutor`](crate::LiveExecutor) uses these to spawn every node
//! as a thread over the in-process router; the `garfield-node` binary
//! (`garfield-transport`) uses the very same entry points to run a single
//! node per OS process over TCP. Because both paths build their node objects
//! through [`Deployment`](garfield_core::Deployment) and share the id layout
//! and RNG derivation below, a fault-free full-quorum multi-process run
//! produces a final model bit-identical to the in-process run of the same
//! seed.

use crate::actors::{ServerActor, WorkerActor};
use crate::fault::Fault;
use garfield_core::{
    ByzantineServer, ByzantineWorker, Checkpoint, CheckpointPolicy, CoreResult, ExperimentConfig,
    NodeTelemetry, SystemKind, TrainingTrace,
};
use garfield_ml::Batch;
use garfield_net::{NodeId, Role, Transport};
use garfield_tensor::{Tensor, TensorRng};
use std::time::Duration;

/// The node-id layout of a live deployment: server replicas first
/// (`0..servers`), workers after (`servers..servers + nw`).
///
/// Every substrate must use this layout — reply collection sorts by node id,
/// so the aggregation input (and with it the final model) depends on ids
/// being assigned identically in-process and across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeLayout {
    /// Ids of the server replicas, in replica-index order.
    pub server_ids: Vec<NodeId>,
    /// Ids of the workers, in worker-index order.
    pub worker_ids: Vec<NodeId>,
}

impl NodeLayout {
    /// Computes the layout of `config` under `system`.
    ///
    /// Vanilla and SSMW deploy a single trusted server no matter what
    /// `config.nps` says — unless the model is parameter-sharded
    /// (`config.shards > 1`), in which case one server per shard runs;
    /// MSMW runs every replica.
    pub fn of(system: SystemKind, config: &ExperimentConfig) -> NodeLayout {
        let servers = live_server_count(system, config);
        let workers = config.nw;
        NodeLayout {
            server_ids: (0..servers).map(|i| NodeId(i as u32)).collect(),
            worker_ids: (0..workers).map(|j| NodeId((servers + j) as u32)).collect(),
        }
    }

    /// Total number of nodes in the layout.
    pub fn len(&self) -> usize {
        self.server_ids.len() + self.worker_ids.len()
    }

    /// Whether the layout holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Number of server replicas that actually run live under `system`: every
/// replica in MSMW, otherwise one server per parameter shard (one, when the
/// model is unsharded). Config validation rejects `shards > 1` under MSMW,
/// so the two arms never compete.
pub fn live_server_count(system: SystemKind, config: &ExperimentConfig) -> usize {
    if system == SystemKind::Msmw {
        config.nps.max(1)
    } else {
        config.shards.max(1)
    }
}

/// Replays the executor's per-node RNG derivation.
///
/// [`TensorRng::derive`] advances the parent generator, so the stream a node
/// receives depends on the *order* of derivation. A `garfield-node` process
/// hosts a single node but must hand it the exact stream the in-process
/// executor would: this helper re-derives all of them (workers first, then
/// the live servers) so both substrates agree.
pub fn fault_rng_streams(
    config: &ExperimentConfig,
    live_servers: usize,
) -> (Vec<TensorRng>, Vec<TensorRng>) {
    let mut seed_rng = TensorRng::seed_from(config.seed ^ 0x4c49_5645); // "LIVE"
    let workers = (0..config.nw)
        .map(|j| seed_rng.derive(7_000 + j as u64))
        .collect();
    let servers = (0..live_servers)
        .map(|i| seed_rng.derive(8_000 + i as u64))
        .collect();
    (workers, servers)
}

/// One worker replica, ready to run over a transport.
pub struct WorkerNode {
    /// The (possibly Byzantine) worker object, from
    /// [`Deployment::into_live_parts`](garfield_core::Deployment::into_live_parts).
    pub worker: ByzantineWorker,
    /// The injected fault, if any.
    pub fault: Option<Fault>,
    /// RNG stream for fault-plan attacks (see [`fault_rng_streams`]).
    pub fault_rng: TensorRng,
    /// How long the worker waits on an empty inbox before assuming the run
    /// is over.
    pub idle_timeout: Duration,
    /// Number of parameter shards the server side is split into (1 means
    /// unsharded). Sharded requests carry model *slices*; the worker buffers
    /// them and computes once per round on the assembled vector.
    pub shards: usize,
    /// Full model dimension, needed to assemble sharded slices.
    pub dimension: usize,
}

impl WorkerNode {
    /// Runs the worker loop to completion (blocking) and returns the node's
    /// network counters, including the transport's per-peer on-wire bytes.
    pub fn run(self, transport: Box<dyn Transport>) -> NodeTelemetry {
        let fault_attack = match self.fault {
            Some(Fault::Byzantine { attack }) => Some(attack.build()),
            _ => None,
        };
        let actor = WorkerActor {
            telemetry: NodeTelemetry::new(transport.local_id().0, Role::Worker),
            transport,
            worker: self.worker,
            fault: self.fault,
            fault_attack,
            fault_rng: self.fault_rng,
            idle_timeout: self.idle_timeout,
            restarted: false,
            seq: 0,
            attack_history: Vec::new(),
            shards: self.shards,
            dimension: self.dimension,
            pending_slices: Vec::new(),
            sent_cache: Vec::new(),
        };
        actor.run()
    }
}

/// One server replica, ready to run over a transport.
pub struct ServerNode {
    /// Replica index (0 is the observer: it evaluates accuracy).
    pub index: usize,
    /// The (possibly Byzantine) server object.
    pub server: ByzantineServer,
    /// Which Garfield system drives the replica's loop.
    pub system: SystemKind,
    /// The experiment being run.
    pub config: ExperimentConfig,
    /// Ids of all workers (see [`NodeLayout`]).
    pub worker_ids: Vec<NodeId>,
    /// Ids of the peer replicas (the layout's server ids minus this one).
    pub peer_ids: Vec<NodeId>,
    /// The parameter shard this server owns when the model is split across
    /// server shards (`None`: this server holds the full vector).
    pub shard: Option<garfield_core::ShardSpec>,
    /// The other shard servers of a sharded deployment (empty otherwise):
    /// recipients of this server's `SpeculationTrip` sticky-OR broadcast.
    pub shard_siblings: Vec<NodeId>,
    /// Gradient replies to wait for each round.
    pub gradient_quorum: usize,
    /// Wall-clock deadline of each pull phase.
    pub round_deadline: Duration,
    /// The injected fault, if any.
    pub fault: Option<Fault>,
    /// RNG stream for fault-plan attacks (see [`fault_rng_streams`]).
    pub fault_rng: TensorRng,
    /// Held-out batch for accuracy evaluation (observer only).
    pub test_batch: Option<Batch>,
    /// Workers this replica sends `Shutdown` to when it exits. Empty under
    /// the in-process executor (its controller winds workers down); the
    /// coordinating server of a multi-process deployment names every worker
    /// here, since no controller process exists.
    pub shutdown_targets: Vec<NodeId>,
    /// How long a pull waits before re-asking peers that have not replied
    /// (see [`LiveOptions::request_retry`](crate::LiveOptions)).
    pub request_retry: Duration,
    /// Where and how often this replica persists its training state to disk
    /// (`None` disables checkpointing).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Checkpointed state to resume from: training starts at its `round`
    /// with its model/optimizer/RNG state instead of from scratch
    /// (`garfield-node --resume`).
    pub resume: Option<Checkpoint>,
}

/// What one server replica produced.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// The replica's training trace.
    pub trace: TrainingTrace,
    /// Its final model vector.
    pub final_model: Tensor,
    /// Its network counters (totals plus per-peer on-wire counts).
    pub telemetry: NodeTelemetry,
    /// Wall-clock seconds per training iteration.
    pub round_latencies: Vec<f64>,
    /// The round a disk checkpoint resumed training at, if this run resumed
    /// (`None` for runs that started from scratch).
    pub resumed_from: Option<usize>,
    /// Byzantine forensics: final per-peer suspicion state (sorted by peer
    /// id), accumulated from every GAR selection this replica performed.
    pub suspicion: Vec<garfield_aggregation::PeerSuspicion>,
}

impl ServerNode {
    /// Runs the replica's training loop to completion (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`](garfield_core::CoreError::Net) when a
    /// quorum cannot be gathered before the round deadline, and propagates
    /// ML/aggregation errors. The shutdown duty (if any) is discharged even
    /// on the error paths.
    pub fn run(self, transport: Box<dyn Transport>) -> CoreResult<ServerRun> {
        let outcome = ServerActor::from_node(self, transport)?.run()?;
        Ok(ServerRun {
            trace: outcome.trace,
            final_model: outcome.final_model,
            telemetry: outcome.telemetry,
            round_latencies: outcome.round_latencies,
            resumed_from: outcome.resumed_from,
            suspicion: outcome.suspicion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_places_servers_before_workers() {
        let mut cfg = ExperimentConfig::small();
        cfg.nw = 4;
        cfg.nps = 3;
        let msmw = NodeLayout::of(SystemKind::Msmw, &cfg);
        assert_eq!(msmw.server_ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(
            msmw.worker_ids,
            vec![NodeId(3), NodeId(4), NodeId(5), NodeId(6)]
        );
        assert_eq!(msmw.len(), 7);
        assert!(!msmw.is_empty());

        // Single trusted server for the non-replicated systems.
        let ssmw = NodeLayout::of(SystemKind::Ssmw, &cfg);
        assert_eq!(ssmw.server_ids, vec![NodeId(0)]);
        assert_eq!(ssmw.worker_ids[0], NodeId(1));
        assert_eq!(live_server_count(SystemKind::Vanilla, &cfg), 1);

        // One server per parameter shard for the sharded single-replica
        // systems; workers still come after every server.
        cfg.shards = 3;
        let sharded = NodeLayout::of(SystemKind::Ssmw, &cfg);
        assert_eq!(sharded.server_ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sharded.worker_ids[0], NodeId(3));
        assert_eq!(live_server_count(SystemKind::Vanilla, &cfg), 3);
        // MSMW replica count is untouched by the shard setting.
        assert_eq!(live_server_count(SystemKind::Msmw, &cfg), 3);
    }

    #[test]
    fn fault_rng_streams_are_order_independent_reproducible() {
        let cfg = ExperimentConfig::small();
        let (workers_a, servers_a) = fault_rng_streams(&cfg, 3);
        let (workers_b, servers_b) = fault_rng_streams(&cfg, 3);
        assert_eq!(workers_a.len(), cfg.nw);
        assert_eq!(servers_a.len(), 3);
        // Same config ⇒ same streams, node by node.
        for (mut a, mut b) in workers_a.into_iter().zip(workers_b) {
            assert_eq!(a.uniform01(), b.uniform01());
        }
        for (mut a, mut b) in servers_a.into_iter().zip(servers_b) {
            assert_eq!(a.uniform01(), b.uniform01());
        }
    }
}
