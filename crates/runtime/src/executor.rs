//! The live executor: spawn every node, train over real messages, join.

use crate::fault::FaultPlan;
use crate::node::{fault_rng_streams, NodeLayout, ServerNode, ServerRun, WorkerNode};
use garfield_aggregation::PeerSuspicion;
use garfield_core::{
    shard_server, CoreError, CoreResult, Deployment, ExecMode, Executor, ExperimentConfig,
    NodeTelemetry, RuntimeTelemetry, ShardMap, SimExecutor, SystemKind, TrainingTrace,
};
use garfield_net::{MsgKind, NodeId, Router, RouterTransport, Transport, WireMessage};
use garfield_tensor::Tensor;
use std::time::Duration;

/// Tuning knobs of a live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveOptions {
    /// Wall-clock deadline of each pull phase: a server that cannot gather
    /// its quorum within this window reports a liveness failure instead of
    /// blocking forever (the paper's RPC timeout).
    pub round_deadline: Duration,
    /// How long a worker waits on an empty inbox before assuming the run is
    /// over (a backstop; the executor normally shuts workers down explicitly).
    pub idle_timeout: Duration,
    /// Overrides the number of gradient replies a server waits for. `None`
    /// uses [`ExperimentConfig::gradient_quorum`]; tests use `Some(n - f)` to
    /// exercise the asynchronous liveness condition on any system.
    pub gradient_quorum: Option<usize>,
    /// How long a pull waits before re-sending its (idempotent) request to
    /// peers that have not replied. Far above a healthy round time, so the
    /// re-ask only ever fires when a peer is stalled, dead — or dead and
    /// *respawned*, which is the case it exists for: the respawned peer can
    /// only contribute to the in-flight round if someone asks it again.
    pub request_retry: Duration,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            round_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(10),
            gradient_quorum: None,
            request_retry: Duration::from_millis(1250),
        }
    }
}

/// Everything a live run produces beyond the trace.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// The observer replica's training trace (server 0, always honest).
    pub trace: TrainingTrace,
    /// Per-node message/byte counters and per-round wall-clock latencies.
    pub telemetry: RuntimeTelemetry,
    /// Final model of every *honest* server replica, in index order. Used by
    /// determinism checks (same seed ⇒ identical models) and replica
    /// agreement checks (contracted replicas stay close).
    pub final_models: Vec<Tensor>,
    /// The observer replica's Byzantine forensics: final per-peer suspicion
    /// state (sorted by peer id), accumulated from every GAR selection.
    pub suspicion: Vec<PeerSuspicion>,
}

/// The threaded executor: each worker and server replica of the experiment
/// runs as its own OS thread, exchanging [`WireMessage`]s over a [`Router`].
///
/// Construction of the node objects is shared with the sim path
/// ([`Deployment::new`] → [`Deployment::into_live_parts`]), so a fault-free
/// live run reproduces the sim executor's learning trajectory — same shards,
/// same initial model, same aggregation inputs — while actually moving every
/// gradient and model over the wire.
pub struct LiveExecutor {
    config: ExperimentConfig,
    options: LiveOptions,
    faults: FaultPlan,
    last: Option<LiveReport>,
}

impl LiveExecutor {
    /// Creates a live executor with default options and no injected faults.
    pub fn new(config: ExperimentConfig) -> Self {
        LiveExecutor {
            config,
            options: LiveOptions::default(),
            faults: FaultPlan::new(),
            last: None,
        }
    }

    /// Replaces the tuning knobs.
    pub fn with_options(mut self, options: LiveOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The configuration this executor runs.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The full report of the most recent successful run, if any.
    pub fn last_report(&self) -> Option<&LiveReport> {
        self.last.as_ref()
    }

    /// Runs the named system live and returns the full report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for systems the live runtime does
    /// not implement (see [`garfield_core::live_supported`]) and
    /// [`CoreError::Net`] when a quorum cannot be gathered before the
    /// deadline (a liveness violation: fewer than `q` live repliers).
    pub fn run_live(&mut self, system: SystemKind) -> CoreResult<LiveReport> {
        if !garfield_core::live_supported(system) {
            return Err(CoreError::InvalidConfig(format!(
                "the live runtime implements vanilla, ssmw, msmw and speculative \
                 (requested {system})"
            )));
        }
        self.config.validate(system)?;
        let parts = Deployment::new(self.config.clone())?.into_live_parts();
        let config = parts.config.clone();
        let layout = NodeLayout::of(system, &config);
        let nps = layout.server_ids.len();
        let nw = layout.worker_ids.len();
        // Parameter sharding: one server per shard instead of one full-model
        // server (validation already confined `shards > 1` to the
        // single-replica systems with coordinate-decomposable GARs).
        let shard_map = (config.shards > 1 && system != SystemKind::Msmw)
            .then(|| ShardMap::new(parts.dimension, config.shards))
            .transpose()?;
        let gradient_quorum = self
            .options
            .gradient_quorum
            .unwrap_or_else(|| config.gradient_quorum(system));

        // Every endpoint registers before any thread starts: a round-0
        // broadcast must never race a peer's registration.
        let router = Router::new();
        let connect = |id: NodeId| -> CoreResult<Box<dyn Transport>> {
            Ok(Box::new(
                RouterTransport::connect(&router, id).map_err(CoreError::from)?,
            ))
        };
        let server_transports: Vec<_> = layout
            .server_ids
            .iter()
            .map(|&id| connect(id))
            .collect::<CoreResult<_>>()?;
        let worker_transports: Vec<_> = layout
            .worker_ids
            .iter()
            .map(|&id| connect(id))
            .collect::<CoreResult<_>>()?;
        let controller = router
            .register(NodeId((nps + nw) as u32))
            .map_err(CoreError::from)?;

        let (worker_rngs, server_rngs) = fault_rng_streams(&config, nps);
        let mut worker_threads = Vec::with_capacity(nw);
        for (((j, worker), transport), fault_rng) in parts
            .workers
            .into_iter()
            .enumerate()
            .zip(worker_transports)
            .zip(worker_rngs)
        {
            let node = WorkerNode {
                worker,
                fault: self.faults.worker(j),
                fault_rng,
                idle_timeout: self.options.idle_timeout,
                shards: shard_map.as_ref().map_or(1, ShardMap::shard_count),
                dimension: parts.dimension,
            };
            worker_threads.push(std::thread::spawn(move || node.run(transport)));
        }

        // One server object per launched thread: `parts.servers` as built in
        // the unsharded case, sliced out of the template server's initial
        // model when a shard map is in force.
        let mut servers = parts.servers;
        if let Some(map) = &shard_map {
            let template = servers
                .into_iter()
                .next()
                .ok_or_else(|| CoreError::InvalidConfig("deployment produced no server".into()))?;
            let initial = template.honest().parameters();
            servers = map
                .specs()
                .iter()
                .map(|&spec| shard_server(spec, initial.data(), &config))
                .collect();
        }

        let mut server_threads = Vec::with_capacity(nps);
        for (((i, server), transport), fault_rng) in servers
            .into_iter()
            .take(nps)
            .enumerate()
            .zip(server_transports)
            .zip(server_rngs)
        {
            let others: Vec<NodeId> = layout
                .server_ids
                .iter()
                .copied()
                .filter(|&p| p != layout.server_ids[i])
                .collect();
            // Shard servers are not replicas: no model pulls, no state
            // serving between them — only the sticky-OR speculation-trip
            // channel. Accuracy evaluation needs the full model, so no shard
            // server gets the test batch (the report's trace then carries
            // losses but no accuracy points).
            let (peers, siblings) = if shard_map.is_some() {
                (Vec::new(), others)
            } else {
                (others, Vec::new())
            };
            let node = ServerNode {
                index: i,
                server,
                system,
                config: config.clone(),
                worker_ids: layout.worker_ids.clone(),
                peer_ids: peers,
                shard: shard_map.as_ref().map(|map| map.spec(i)),
                shard_siblings: siblings,
                gradient_quorum,
                round_deadline: self.options.round_deadline,
                fault: self.faults.server(i),
                fault_rng,
                test_batch: (i == 0 && shard_map.is_none()).then(|| parts.test_batch.clone()),
                // The executor's controller below winds the workers down.
                shutdown_targets: Vec::new(),
                request_retry: self.options.request_retry,
                // Disk persistence is a per-process concern (garfield-node);
                // in-process recovery flows through live state transfer.
                checkpoint: None,
                resume: None,
            };
            server_threads.push(std::thread::spawn(move || {
                node.run(transport).map(|run| (i, run))
            }));
        }

        // Join the replicas, then wind the workers down regardless of outcome.
        let mut outcomes: Vec<(usize, ServerRun)> = Vec::with_capacity(nps);
        let mut first_error: Option<CoreError> = None;
        for thread in server_threads {
            match thread.join() {
                Ok(Ok(outcome)) => outcomes.push(outcome),
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    first_error.get_or_insert(CoreError::Net("a server thread panicked".into()));
                }
            }
        }
        let shutdown = WireMessage::control(MsgKind::Shutdown, config.iterations as u64).encode();
        for &id in &layout.worker_ids {
            let _ = controller.send(id, config.iterations as u64, shutdown.clone());
        }
        let mut node_telemetry: Vec<NodeTelemetry> = Vec::with_capacity(nps + nw);
        let mut worker_telemetry = Vec::with_capacity(nw);
        for thread in worker_threads {
            match thread.join() {
                Ok(telemetry) => worker_telemetry.push(telemetry),
                Err(_) => {
                    first_error.get_or_insert(CoreError::Net("a worker thread panicked".into()));
                }
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }

        outcomes.sort_by_key(|&(index, _)| index);
        let observer = outcomes
            .iter()
            .find(|&&(index, _)| index == 0)
            .map(|(_, run)| run)
            .ok_or_else(|| CoreError::Net("live run produced no observer trace".into()))?;
        for (_, run) in &outcomes {
            node_telemetry.push(run.telemetry.clone());
        }
        node_telemetry.extend(worker_telemetry);

        let honest_servers = nps - config.actual_byzantine_servers.min(nps.saturating_sub(1));
        let final_models = if let Some(map) = &shard_map {
            // Stitch the shard slices back into the one full model of the
            // deployment — bit-identical to the unsharded same-seed run when
            // every round formed a full quorum.
            let slices: Vec<Vec<f32>> = outcomes
                .iter()
                .map(|(_, run)| run.final_model.data().to_vec())
                .collect();
            vec![Tensor::from_slice(&map.reassemble(&slices)?)]
        } else {
            outcomes
                .iter()
                .take(honest_servers)
                .map(|(_, run)| run.final_model.clone())
                .collect()
        };
        let report = LiveReport {
            trace: observer.trace.clone(),
            telemetry: RuntimeTelemetry {
                nodes: node_telemetry,
                round_latencies: observer.round_latencies.clone(),
            },
            final_models,
            suspicion: observer.suspicion.clone(),
        };
        self.last = Some(report.clone());
        Ok(report)
    }
}

impl Executor for LiveExecutor {
    fn name(&self) -> &'static str {
        "live"
    }

    fn run(&mut self, system: SystemKind) -> CoreResult<TrainingTrace> {
        self.run_live(system).map(|report| report.trace)
    }
}

impl std::fmt::Debug for LiveExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveExecutor")
            .field("nw", &self.config.nw)
            .field("nps", &self.config.nps)
            .field("faults", &self.faults.fault_count())
            .finish()
    }
}

/// Builds the executor for a mode: the analytic sim path or the threaded
/// live path, behind one trait object so call sites stay substrate-agnostic.
pub fn executor_for(mode: ExecMode, config: ExperimentConfig) -> Box<dyn Executor> {
    match mode {
        ExecMode::Sim => Box::new(SimExecutor::new(config)),
        ExecMode::Live => Box::new(LiveExecutor::new(config)),
    }
}
