//! The live executor: spawn every node, train over real messages, join.

use crate::actors::{ServerActor, ServerOutcome, WorkerActor};
use crate::fault::{Fault, FaultPlan};
use garfield_core::{
    CoreError, CoreResult, Deployment, ExecMode, Executor, ExperimentConfig, NodeTelemetry,
    RuntimeTelemetry, SimExecutor, SystemKind, TrainingTrace,
};
use garfield_net::{MsgKind, NodeId, Role, Router, WireMessage};
use garfield_tensor::{Tensor, TensorRng};
use std::time::Duration;

/// Tuning knobs of a live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveOptions {
    /// Wall-clock deadline of each pull phase: a server that cannot gather
    /// its quorum within this window reports a liveness failure instead of
    /// blocking forever (the paper's RPC timeout).
    pub round_deadline: Duration,
    /// How long a worker waits on an empty inbox before assuming the run is
    /// over (a backstop; the executor normally shuts workers down explicitly).
    pub idle_timeout: Duration,
    /// Overrides the number of gradient replies a server waits for. `None`
    /// uses [`ExperimentConfig::gradient_quorum`]; tests use `Some(n - f)` to
    /// exercise the asynchronous liveness condition on any system.
    pub gradient_quorum: Option<usize>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            round_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(10),
            gradient_quorum: None,
        }
    }
}

/// Everything a live run produces beyond the trace.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// The observer replica's training trace (server 0, always honest).
    pub trace: TrainingTrace,
    /// Per-node message/byte counters and per-round wall-clock latencies.
    pub telemetry: RuntimeTelemetry,
    /// Final model of every *honest* server replica, in index order. Used by
    /// determinism checks (same seed ⇒ identical models) and replica
    /// agreement checks (contracted replicas stay close).
    pub final_models: Vec<Tensor>,
}

/// The threaded executor: each worker and server replica of the experiment
/// runs as its own OS thread, exchanging [`WireMessage`]s over a [`Router`].
///
/// Construction of the node objects is shared with the sim path
/// ([`Deployment::new`] → [`Deployment::into_live_parts`]), so a fault-free
/// live run reproduces the sim executor's learning trajectory — same shards,
/// same initial model, same aggregation inputs — while actually moving every
/// gradient and model over the wire.
pub struct LiveExecutor {
    config: ExperimentConfig,
    options: LiveOptions,
    faults: FaultPlan,
    last: Option<LiveReport>,
}

impl LiveExecutor {
    /// Creates a live executor with default options and no injected faults.
    pub fn new(config: ExperimentConfig) -> Self {
        LiveExecutor {
            config,
            options: LiveOptions::default(),
            faults: FaultPlan::new(),
            last: None,
        }
    }

    /// Replaces the tuning knobs.
    pub fn with_options(mut self, options: LiveOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The configuration this executor runs.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The full report of the most recent successful run, if any.
    pub fn last_report(&self) -> Option<&LiveReport> {
        self.last.as_ref()
    }

    /// Runs the named system live and returns the full report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for systems the live runtime does
    /// not implement (only vanilla, SSMW and MSMW run live) and
    /// [`CoreError::Net`] when a quorum cannot be gathered before the
    /// deadline (a liveness violation: fewer than `q` live repliers).
    pub fn run_live(&mut self, system: SystemKind) -> CoreResult<LiveReport> {
        if !matches!(
            system,
            SystemKind::Vanilla | SystemKind::Ssmw | SystemKind::Msmw
        ) {
            return Err(CoreError::InvalidConfig(format!(
                "the live runtime implements vanilla, ssmw and msmw (requested {system})"
            )));
        }
        self.config.validate(system)?;
        let parts = Deployment::new(self.config.clone())?.into_live_parts();
        let config = parts.config.clone();
        // Vanilla and SSMW use a single trusted server; MSMW runs every replica.
        let nps = if system == SystemKind::Msmw {
            parts.servers.len()
        } else {
            1
        };
        let nw = parts.workers.len();
        let gradient_quorum = self
            .options
            .gradient_quorum
            .unwrap_or_else(|| config.gradient_quorum(system));

        // Node ids: servers 0..nps, workers nps..nps+nw, controller last.
        let router = Router::new();
        let server_ids: Vec<NodeId> = (0..nps).map(|i| NodeId(i as u32)).collect();
        let worker_ids: Vec<NodeId> = (0..nw).map(|j| NodeId((nps + j) as u32)).collect();
        let server_handles: Vec<_> = server_ids.iter().map(|&id| router.register(id)).collect();
        let worker_handles: Vec<_> = worker_ids.iter().map(|&id| router.register(id)).collect();
        let controller = router.register(NodeId((nps + nw) as u32));

        let mut seed_rng = TensorRng::seed_from(config.seed ^ 0x4c49_5645); // "LIVE"
        let mut worker_threads = Vec::with_capacity(nw);
        for (j, (worker, handle)) in parts.workers.into_iter().zip(worker_handles).enumerate() {
            let fault = self.faults.worker(j);
            let fault_attack = match fault {
                Some(Fault::Byzantine { attack }) => Some(attack.build()),
                _ => None,
            };
            let actor = WorkerActor {
                telemetry: NodeTelemetry::new(handle.id().0, Role::Worker),
                handle,
                router: router.clone(),
                worker,
                fault,
                fault_attack,
                fault_rng: seed_rng.derive(7_000 + j as u64),
                idle_timeout: self.options.idle_timeout,
            };
            worker_threads.push(std::thread::spawn(move || actor.run()));
        }

        let mut server_threads = Vec::with_capacity(nps);
        for (i, (server, handle)) in parts
            .servers
            .into_iter()
            .take(nps)
            .zip(server_handles)
            .enumerate()
        {
            let fault = self.faults.server(i);
            let fault_attack = match fault {
                Some(Fault::Byzantine { attack }) => Some(attack.build()),
                _ => None,
            };
            let peers: Vec<NodeId> = server_ids
                .iter()
                .copied()
                .filter(|&p| p != handle.id())
                .collect();
            let actor = ServerActor::new(
                i,
                handle,
                router.clone(),
                server,
                system,
                config.clone(),
                worker_ids.clone(),
                peers,
                gradient_quorum,
                self.options.round_deadline,
                fault,
                fault_attack,
                seed_rng.derive(8_000 + i as u64),
                (i == 0).then(|| parts.test_batch.clone()),
            );
            server_threads.push(std::thread::spawn(move || actor.run()));
        }

        // Join the replicas, then wind the workers down regardless of outcome.
        let mut outcomes: Vec<ServerOutcome> = Vec::with_capacity(nps);
        let mut first_error: Option<CoreError> = None;
        for thread in server_threads {
            match thread.join() {
                Ok(Ok(outcome)) => outcomes.push(outcome),
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    first_error.get_or_insert(CoreError::Net("a server thread panicked".into()));
                }
            }
        }
        let shutdown = WireMessage::control(MsgKind::Shutdown, config.iterations as u64).encode();
        for &id in &worker_ids {
            let _ = controller.send(id, config.iterations as u64, shutdown.clone());
        }
        let mut node_telemetry: Vec<NodeTelemetry> = Vec::with_capacity(nps + nw);
        let mut worker_telemetry = Vec::with_capacity(nw);
        for thread in worker_threads {
            match thread.join() {
                Ok(telemetry) => worker_telemetry.push(telemetry),
                Err(_) => {
                    first_error.get_or_insert(CoreError::Net("a worker thread panicked".into()));
                }
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }

        outcomes.sort_by_key(|o| o.index);
        let observer = outcomes
            .iter()
            .find(|o| o.index == 0)
            .ok_or_else(|| CoreError::Net("live run produced no observer trace".into()))?;
        for outcome in &outcomes {
            node_telemetry.push(outcome.telemetry);
        }
        node_telemetry.extend(worker_telemetry);

        let honest_servers = nps - config.actual_byzantine_servers.min(nps.saturating_sub(1));
        let report = LiveReport {
            trace: observer.trace.clone(),
            telemetry: RuntimeTelemetry {
                nodes: node_telemetry,
                round_latencies: observer.round_latencies.clone(),
            },
            final_models: outcomes
                .iter()
                .take(honest_servers)
                .map(|o| o.final_model.clone())
                .collect(),
        };
        self.last = Some(report.clone());
        Ok(report)
    }
}

impl Executor for LiveExecutor {
    fn name(&self) -> &'static str {
        "live"
    }

    fn run(&mut self, system: SystemKind) -> CoreResult<TrainingTrace> {
        self.run_live(system).map(|report| report.trace)
    }
}

impl std::fmt::Debug for LiveExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveExecutor")
            .field("nw", &self.config.nw)
            .field("nps", &self.config.nps)
            .field("faults", &self.faults.fault_count())
            .finish()
    }
}

/// Builds the executor for a mode: the analytic sim path or the threaded
/// live path, behind one trait object so call sites stay substrate-agnostic.
pub fn executor_for(mode: ExecMode, config: ExperimentConfig) -> Box<dyn Executor> {
    match mode {
        ExecMode::Sim => Box::new(SimExecutor::new(config)),
        ExecMode::Live => Box::new(LiveExecutor::new(config)),
    }
}
