//! # garfield-runtime
//!
//! A multi-threaded actor runtime for the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021):
//! every worker and server replica of an
//! [`ExperimentConfig`](garfield_core::ExperimentConfig) runs as its own OS
//! thread, and all gradients and models move as real length-prefixed byte
//! messages ([`garfield_net::WireMessage`]) through the in-process
//! [`garfield_net::Router`].
//!
//! ## Sim vs. live
//!
//! The workspace has two execution substrates behind the shared
//! [`garfield_core::Executor`] trait:
//!
//! | | `sim` ([`garfield_core::SimExecutor`]) | `live` ([`LiveExecutor`]) |
//! |---|---|---|
//! | Concurrency | one thread drives all nodes | one OS thread per node |
//! | Communication | analytic `CostModel` charges | real router messages (bytes on the wire) |
//! | Time | simulated seconds (deterministic) | wall-clock seconds |
//! | Reproduces | the paper's throughput/overhead studies (Figs. 6–10, 13–16) | the paper's *system* claims (§3.2): pull-based `get_gradients()` / `get_models()` RPCs that unblock on the fastest `q` of `n` replies and stay live under crashes, stragglers and Byzantine payloads when `n ≥ q + f` |
//!
//! Both substrates build their nodes through the same
//! [`Deployment`](garfield_core::Deployment), so a fault-free live run
//! reproduces the sim executor's learning trajectory exactly. Determinism
//! holds whenever every live replier is inside the quorum (the synchronous
//! default, `q = n`): the aggregation path sorts collected replies by node
//! id and peers serve per-round model snapshots, so the final model is
//! independent of message arrival order. When `q` is below the number of
//! live repliers (the asynchronous regime), quorum *membership* is decided
//! by wall-clock arrival — such runs are live by construction but not
//! bit-reproducible, exactly like the real deployments in the paper.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] installs per-node faults for live runs: crash at an
//! iteration (the node goes silent), a fixed delay (a straggler the quorum
//! leaves behind) or a Byzantine payload rewrite using any
//! [`garfield_attacks::AttackKind`]. The live adversary is *non-omniscient*:
//! a Byzantine node corrupts its own payload without ever seeing its peers'
//! honest vectors. The collusion-based attacks (little-is-enough,
//! fall-of-empires) therefore run in their *local-estimate* variant: the
//! attacker estimates the round's gradient moments from a short history of
//! its own honest gradients — the honest population it belongs to is its
//! best available proxy for the peers it cannot observe. The sim substrate's
//! omniscient adversary still feeds those attacks the exact peer view when
//! you need the paper's worst case.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_core::{ExperimentConfig, SystemKind};
//! use garfield_runtime::{FaultPlan, LiveExecutor};
//!
//! let mut config = ExperimentConfig::small();
//! config.nw = 4;
//! config.fw = 0;
//! config.iterations = 3;
//! config.eval_every = 3;
//! let mut live = LiveExecutor::new(config)
//!     .with_faults(FaultPlan::new().delay_worker(3, 5));
//! let report = live.run_live(SystemKind::Vanilla)?;
//! assert_eq!(report.trace.len(), 3);
//! assert!(report.telemetry.total_messages() > 0);
//! # Ok::<(), garfield_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actors;
mod executor;
mod fault;
pub mod node;

pub use executor::{executor_for, LiveExecutor, LiveOptions, LiveReport};
pub use fault::{Fault, FaultPlan};
pub use garfield_aggregation::PeerSuspicion;
pub use node::{NodeLayout, ServerNode, ServerRun, WorkerNode};
