//! Fault injection for live runs: crash, delay and Byzantine payload rewrite.

use garfield_attacks::AttackKind;
use std::collections::HashMap;

/// A fault installed on one node of a live deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The node goes silent from the given iteration onward: a worker stops
    /// replying to gradient requests, a server stops driving its loop. The
    /// router drops messages to it, so peers only notice through the
    /// "fastest `q`" quorum — the failure mode the paper's asynchronous
    /// liveness condition (`n ≥ q + f`) is designed to ride out.
    CrashAt {
        /// First iteration at which the node is silent.
        iteration: usize,
    },
    /// The node services every request `millis` late — a straggler. With
    /// `q < n` the pull primitives leave it behind; with `q = n` it slows
    /// every round but liveness is preserved.
    Delay {
        /// Added latency before each reply, in milliseconds.
        millis: u64,
    },
    /// The node rewrites the payload it serves with the given attack
    /// (applied on top of any attack the experiment config installed) — a
    /// Byzantine node on the wire path.
    Byzantine {
        /// The attack used to corrupt outgoing payloads.
        attack: AttackKind,
    },
    /// The node crashes at iteration `crash` and *comes back* for iteration
    /// `rejoin` — the recovery scenario [`Fault::CrashAt`] cannot express.
    ///
    /// The crash is real: the transport goes silent and the node rejoins as
    /// a fresh incarnation ([`Transport::rejoin`](garfield_net::Transport)),
    /// dropping every envelope addressed to the dead one. On rejoin, a
    /// worker simply serves gradient requests again (workers are stateless
    /// repliers); a server replica first catches up by pulling a
    /// `StateChunk` from the fastest live peer.
    RestartAt {
        /// First iteration at which the node is silent.
        crash: usize,
        /// First iteration at which the node participates again.
        rejoin: usize,
    },
}

/// Which nodes of a live run misbehave, and how.
///
/// Faults are assigned by node index (worker 0..nw, server 0..nps) with a
/// builder-style API:
///
/// ```rust
/// use garfield_runtime::FaultPlan;
/// use garfield_attacks::AttackKind;
///
/// let plan = FaultPlan::new()
///     .crash_worker_at(2, 1)
///     .delay_worker(3, 50)
///     .byzantine_worker(0, AttackKind::Reversed);
/// assert_eq!(plan.fault_count(), 3);
/// assert!(plan.worker(2).is_some() && plan.server(0).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    workers: HashMap<usize, Fault>,
    servers: HashMap<usize, Fault>,
}

impl FaultPlan {
    /// Creates an empty (fault-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crashes worker `index` at `iteration`.
    pub fn crash_worker_at(mut self, index: usize, iteration: usize) -> Self {
        self.workers.insert(index, Fault::CrashAt { iteration });
        self
    }

    /// Delays every reply of worker `index` by `millis` milliseconds.
    pub fn delay_worker(mut self, index: usize, millis: u64) -> Self {
        self.workers.insert(index, Fault::Delay { millis });
        self
    }

    /// Makes worker `index` rewrite its gradient payloads with `attack`.
    pub fn byzantine_worker(mut self, index: usize, attack: AttackKind) -> Self {
        self.workers.insert(index, Fault::Byzantine { attack });
        self
    }

    /// Crashes worker `index` at iteration `crash` and rejoins it for
    /// iteration `rejoin`.
    pub fn restart_worker_at(mut self, index: usize, crash: usize, rejoin: usize) -> Self {
        self.workers
            .insert(index, Fault::RestartAt { crash, rejoin });
        self
    }

    /// Crashes server replica `index` at `iteration`.
    pub fn crash_server_at(mut self, index: usize, iteration: usize) -> Self {
        self.servers.insert(index, Fault::CrashAt { iteration });
        self
    }

    /// Crashes server replica `index` at iteration `crash` and rejoins it
    /// (with live state transfer from a peer) for iteration `rejoin`.
    pub fn restart_server_at(mut self, index: usize, crash: usize, rejoin: usize) -> Self {
        self.servers
            .insert(index, Fault::RestartAt { crash, rejoin });
        self
    }

    /// Delays every round of server replica `index` by `millis` milliseconds.
    pub fn delay_server(mut self, index: usize, millis: u64) -> Self {
        self.servers.insert(index, Fault::Delay { millis });
        self
    }

    /// Makes server replica `index` rewrite the models it serves with `attack`.
    pub fn byzantine_server(mut self, index: usize, attack: AttackKind) -> Self {
        self.servers.insert(index, Fault::Byzantine { attack });
        self
    }

    /// The fault installed on worker `index`, if any.
    pub fn worker(&self, index: usize) -> Option<Fault> {
        self.workers.get(&index).copied()
    }

    /// The fault installed on server replica `index`, if any.
    pub fn server(&self, index: usize) -> Option<Fault> {
        self.servers.get(&index).copied()
    }

    /// Total number of faulted nodes.
    pub fn fault_count(&self) -> usize {
        self.workers.len() + self.servers.len()
    }

    /// Whether the plan installs no fault at all.
    pub fn is_empty(&self) -> bool {
        self.fault_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_assigns_and_overwrites() {
        let plan = FaultPlan::new()
            .crash_worker_at(1, 5)
            .delay_worker(1, 10) // overwrite: one fault per node
            .byzantine_server(0, AttackKind::Random);
        assert_eq!(plan.fault_count(), 2);
        assert_eq!(plan.worker(1), Some(Fault::Delay { millis: 10 }));
        assert_eq!(
            plan.server(0),
            Some(Fault::Byzantine {
                attack: AttackKind::Random
            })
        );
        assert!(plan.worker(0).is_none());
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn restart_faults_carry_crash_and_rejoin_iterations() {
        let plan = FaultPlan::new()
            .restart_worker_at(2, 3, 7)
            .restart_server_at(1, 4, 6);
        assert_eq!(
            plan.worker(2),
            Some(Fault::RestartAt {
                crash: 3,
                rejoin: 7
            })
        );
        assert_eq!(
            plan.server(1),
            Some(Fault::RestartAt {
                crash: 4,
                rejoin: 6
            })
        );
        assert_eq!(plan.fault_count(), 2);
    }
}
