//! Integration tests of the sharded parameter server: the flagship contract
//! is that a sharded full-quorum run produces a final model **bit-identical**
//! to the unsharded run of the same seed, for every coordinate-decomposable
//! GAR — with and without crashed workers.
//!
//! Why the contract holds: at full quorum every shard server collects the
//! same sorted-by-id reply membership each round; a coordinate-decomposable
//! GAR applied to a slice equals the slice of the GAR applied to the full
//! vectors; and SGD steps element-wise — so stitching the shard slices back
//! together reproduces the unsharded trajectory exactly, round by round.

use garfield_aggregation::GarKind;
use garfield_core::{ExperimentConfig, SystemKind};
use garfield_net::Role;
use garfield_runtime::{FaultPlan, LiveExecutor, LiveOptions};
use garfield_tensor::Tensor;

fn config(shards: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 5;
    cfg.fw = 1;
    cfg.iterations = 8;
    cfg.eval_every = 4;
    // Median decomposes per coordinate (unlike the distance-based rules,
    // which config validation rejects when shards > 1).
    cfg.gradient_gar = GarKind::Median;
    cfg.shards = shards;
    cfg
}

fn bits(model: &Tensor) -> Vec<u32> {
    model.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sharded_full_quorum_runs_are_bit_identical_to_unsharded() {
    // Vanilla always averages (decomposable); SSMW runs the configured
    // median; Speculative rides its average fast path (bit-equal to vanilla
    // averaging) with the median as robust fallback.
    for system in [
        SystemKind::Vanilla,
        SystemKind::Ssmw,
        SystemKind::Speculative,
    ] {
        let reference = LiveExecutor::new(config(1))
            .run_live(system)
            .unwrap_or_else(|e| panic!("{system} unsharded: {e}"));
        assert_eq!(reference.final_models.len(), 1);
        for shards in [2, 3] {
            let report = LiveExecutor::new(config(shards))
                .run_live(system)
                .unwrap_or_else(|e| panic!("{system} x{shards}: {e}"));
            assert_eq!(
                report.final_models.len(),
                1,
                "{system} x{shards}: shard slices must be stitched into one model"
            );
            assert_eq!(
                bits(&report.final_models[0]),
                bits(&reference.final_models[0]),
                "{system} x{shards}: sharded and unsharded runs must agree bit for bit"
            );
            // One server thread per shard really ran.
            let servers = report.telemetry.nodes_with_role(Role::Server).count();
            assert_eq!(servers, shards, "{system} x{shards}");
            assert_eq!(report.trace.len(), 8, "{system} x{shards}");
        }
    }
}

#[test]
fn sharded_run_with_f_crashed_workers_stays_bit_identical() {
    // The acceptance case: q = n − f with the last worker dead from round 0.
    // Every round then collects exactly the n − f survivors — deterministic
    // membership — so the bit-identity contract extends to crash faults.
    let run = |shards: usize| {
        let mut cfg = config(shards);
        cfg.nw = 6;
        let (n, f) = (cfg.nw, cfg.fw);
        LiveExecutor::new(cfg)
            .with_options(LiveOptions {
                gradient_quorum: Some(n - f),
                ..LiveOptions::default()
            })
            .with_faults(FaultPlan::new().crash_worker_at(n - 1, 0))
            .run_live(SystemKind::Ssmw)
            .unwrap()
    };
    let reference = run(1);
    assert_eq!(reference.trace.len(), 8, "the crash must not cost liveness");
    for shards in [2, 3] {
        let report = run(shards);
        assert_eq!(report.trace.len(), 8, "x{shards}");
        assert_eq!(
            bits(&report.final_models[0]),
            bits(&reference.final_models[0]),
            "x{shards}: crashed-worker sharded run must match the unsharded one"
        );
    }
}

#[test]
fn shard_servers_score_suspicion_per_shard() {
    // A Byzantine worker reversing its gradient is scored by every shard
    // server on its own slice; the report surfaces the observer shard's
    // ledger, where the attacker must rank strictly most-suspicious.
    let mut cfg = config(3);
    cfg.iterations = 12;
    let byzantine_rank = cfg.nw - 1;
    let byzantine_id = (cfg.shards + byzantine_rank) as u32; // servers first
    let report = LiveExecutor::new(cfg)
        .with_faults(
            FaultPlan::new()
                .byzantine_worker(byzantine_rank, garfield_attacks::AttackKind::Reversed),
        )
        .run_live(SystemKind::Ssmw)
        .unwrap();
    let worst = report
        .suspicion
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("the observer shard scored its workers");
    assert_eq!(
        worst.peer, byzantine_id,
        "the reversed worker must top shard 0's suspicion ranking"
    );
}

#[test]
fn sharded_runs_reject_non_decomposable_gars_up_front() {
    let mut cfg = config(2);
    cfg.gradient_gar = GarKind::MultiKrum;
    let err = LiveExecutor::new(cfg)
        .run_live(SystemKind::Ssmw)
        .unwrap_err();
    assert!(
        err.to_string().contains("coordinate-decomposable"),
        "got: {err}"
    );
}
