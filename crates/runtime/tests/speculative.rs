//! Live-runtime tests of the speculative system: the fast path must be
//! invisible on fault-free runs (bit-identical to vanilla), and every attack
//! in the catalog must trip the consistency check at round 0 so the whole
//! run replays bit-identically to the pure robust system.

use garfield_aggregation::{build_gar, Engine, GarKind};
use garfield_attacks::AttackKind;
use garfield_core::{ExperimentConfig, SystemKind};
use garfield_runtime::{FaultPlan, LiveExecutor};
use garfield_tensor::{GradientView, Tensor, TensorRng};

/// A small, fast live configuration (7 workers keep Multi-Krum satisfied at
/// f = 1: 2f + 3 = 5 ≤ 7).
fn live_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.iterations = 8;
    cfg.eval_every = 4;
    cfg
}

fn model_bits(model: &Tensor) -> Vec<u32> {
    model.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn fault_free_speculative_live_run_is_bit_identical_to_vanilla() {
    // With honest workers the check never trips and the fast path *is*
    // vanilla averaging, so the two systems must walk the exact same
    // trajectory — same final model bits, same accuracy curve.
    let cfg = live_config();
    let spec = LiveExecutor::new(cfg.clone())
        .run_live(SystemKind::Speculative)
        .unwrap();
    let vanilla = LiveExecutor::new(cfg)
        .run_live(SystemKind::Vanilla)
        .unwrap();
    assert_eq!(spec.trace.len(), vanilla.trace.len());
    assert_eq!(
        model_bits(&spec.final_models[0]),
        model_bits(&vanilla.final_models[0]),
        "a fault-free speculative run must be bit-identical to vanilla"
    );
    for (a, b) in spec.trace.accuracy.iter().zip(&vanilla.trace.accuracy) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.loss, b.loss);
    }
}

#[test]
fn every_attack_falls_back_to_the_exact_robust_live_run() {
    // One Byzantine worker rewriting its wire payloads: the check must trip
    // in round 0 (before the fast average can contaminate the model), latch,
    // and replay every round through the configured robust GAR — making the
    // attacked speculative run bit-identical to the pure SSMW run of the
    // same seed and fault plan, end to end.
    // Counting is gated on the process-wide obs flag (a disabled counter is
    // a load and a branch); flip it on so the latch trips are observable.
    garfield_obs::enable();
    let fallbacks = garfield_obs::metrics::counter(
        "garfield_speculation_fallback_total",
        "Rounds in which the speculative check tripped and the robust fallback ran.",
        &[],
    );
    for attack in AttackKind::all() {
        let cfg = live_config();
        let plan = || FaultPlan::new().byzantine_worker(0, attack);
        let before = fallbacks.value();
        let spec = LiveExecutor::new(cfg.clone())
            .with_faults(plan())
            .run_live(SystemKind::Speculative)
            .unwrap();
        assert!(
            fallbacks.value() > before,
            "{attack}: the fallback counter must move when the check trips"
        );
        let robust = LiveExecutor::new(cfg)
            .with_faults(plan())
            .run_live(SystemKind::Ssmw)
            .unwrap();
        assert_eq!(
            model_bits(&spec.final_models[0]),
            model_bits(&robust.final_models[0]),
            "{attack}: the attacked speculative run must equal the pure robust run"
        );
    }
}

#[test]
fn speculative_aggregation_is_engine_thread_count_independent() {
    // The consistency check is a fixed sequential scalar pass and both the
    // average fast path and the robust fallback are engine-bit-identical, so
    // the composite rule must produce the same bits (and the same latch
    // decision) on sequential and parallel engines.
    let (n, f, d) = (9usize, 2usize, 4096usize);
    let kind = GarKind::Speculative {
        fallback: Box::new(GarKind::MultiKrum),
    };
    let mut rng = TensorRng::seed_from(0x5bec);
    let honest: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
    let mut attacked = honest.clone();
    attacked[0] = honest[0].scale(-30.0);
    for inputs in [&honest, &attacked] {
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let seq_gar = build_gar(&kind, n, f).unwrap();
        let par_gar = build_gar(&kind, n, f).unwrap();
        let seq = seq_gar
            .aggregate_views(&views, &Engine::sequential())
            .unwrap();
        let par = par_gar
            .aggregate_views(&views, &Engine::with_threads(4))
            .unwrap();
        assert_eq!(
            model_bits(&seq),
            model_bits(&par),
            "sequential and parallel speculative aggregation must agree bit for bit"
        );
        assert_eq!(seq_gar.fell_back(), par_gar.fell_back());
    }
}
