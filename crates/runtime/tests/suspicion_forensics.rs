//! Byzantine forensics acceptance: under every attack in the catalog, the
//! attacked peer must hold the top-`f` suspicion slot(s) once training has
//! run — the ledger's whole purpose is to let an operator *name* the
//! attacker, not just survive it.

use garfield_attacks::AttackKind;
use garfield_core::{ExperimentConfig, SystemKind};
use garfield_runtime::{FaultPlan, LiveExecutor};

/// A configuration sized so forensics separate cleanly. Two things matter:
/// `nw = 7`, `fw = 1` gives Multi-Krum `m = 4` of 7 — the attacker is refused
/// round after round while honest trims rotate — and the dataset/batch are
/// large enough that honest workers are statistically exchangeable (tiny
/// shards give each honest worker a persistent sample bias that masquerades
/// as attack signal).
fn forensic_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 7;
    cfg.fw = 1;
    cfg.nps = 1;
    cfg.fps = 0;
    cfg.dataset_samples = 2048;
    cfg.batch_size = 32;
    cfg.iterations = 30;
    cfg.eval_every = 0;
    cfg
}

#[test]
fn every_attack_in_the_catalog_ranks_the_attacker_top_f() {
    for kind in AttackKind::all() {
        let cfg = forensic_config();
        let byzantine_worker = 0usize;
        // SSMW: one trusted server (node 0), workers at node ids 1..=nw.
        let byzantine_node = 1 + byzantine_worker as u32;
        let report = LiveExecutor::new(cfg.clone())
            .with_faults(FaultPlan::new().byzantine_worker(byzantine_worker, kind))
            .run_live(SystemKind::Ssmw)
            .unwrap_or_else(|e| panic!("{kind:?}: live run failed: {e}"));

        assert_eq!(
            report.suspicion.len(),
            cfg.nw,
            "{kind:?}: the ledger must have scored every worker"
        );
        for peer in &report.suspicion {
            assert!(
                peer.score.is_finite(),
                "{kind:?}: peer {} score {}",
                peer.peer,
                peer.score
            );
            assert_eq!(
                peer.observed_rounds, cfg.iterations as u64,
                "{kind:?}: peer {} missed rounds",
                peer.peer
            );
        }

        // The acceptance criterion: the attacked peer owns the top-f slots.
        let mut ranked: Vec<&garfield_runtime::PeerSuspicion> = report.suspicion.iter().collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
        let top: Vec<u32> = ranked.iter().take(cfg.fw).map(|p| p.peer).collect();
        assert_eq!(
            top,
            vec![byzantine_node],
            "{kind:?}: suspicion ranking {:?}",
            ranked
                .iter()
                .map(|p| (p.peer, p.score, p.excluded_rounds))
                .collect::<Vec<_>>()
        );

        // The attacker's suspicion must also clear the honest field by a
        // real margin, not a tie-break.
        let attacker = ranked[0];
        let runner_up = ranked[1];
        assert!(
            attacker.score > runner_up.score + 0.5,
            "{kind:?}: attacker {:.3} vs runner-up {:.3} — no forensic margin",
            attacker.score,
            runner_up.score
        );
        assert!(
            attacker.excluded_rounds > runner_up.excluded_rounds,
            "{kind:?}: attacker excluded {} rounds, runner-up {}",
            attacker.excluded_rounds,
            runner_up.excluded_rounds
        );
    }
}

#[test]
fn a_fault_free_run_accuses_no_one() {
    let cfg = forensic_config();
    let report = LiveExecutor::new(cfg.clone())
        .run_live(SystemKind::Ssmw)
        .unwrap();
    assert_eq!(report.suspicion.len(), cfg.nw);
    // Honest-only field: no peer may accumulate an attacker-grade score.
    // Multi-Krum still trims someone every round, so scores are not zero,
    // and shard-level heterogeneity gives each honest worker a mild
    // persistent bias (the seed-42 honest ceiling measures ~2.7). Every
    // attacker in the catalog test scores 4.6+, so 3.0 splits the two
    // populations with margin on both sides.
    let table: Vec<(u32, f64, u64)> = report
        .suspicion
        .iter()
        .map(|p| (p.peer, p.score, p.excluded_rounds))
        .collect();
    for peer in &report.suspicion {
        assert!(
            peer.score < 3.0,
            "peer {} looks accused at {:.3} in an honest run: {table:?}",
            peer.peer,
            peer.score
        );
    }
}
