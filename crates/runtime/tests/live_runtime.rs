//! Integration tests of the threaded live runtime: liveness under faults,
//! determinism of the aggregation path, and agreement with the sim executor.

use garfield_core::{Executor, ExperimentConfig, SimExecutor, SystemKind};
use garfield_net::Role;
use garfield_runtime::{executor_for, FaultPlan, LiveExecutor, LiveOptions};

/// A small, fast live configuration: 5 workers, tiny model.
fn live_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 5;
    cfg.fw = 1;
    cfg.nps = 3;
    cfg.fps = 1;
    cfg.iterations = 8;
    cfg.eval_every = 4;
    cfg
}

#[test]
fn live_run_with_f_crashed_workers_and_q_equals_n_minus_f_completes() {
    // The asynchronous liveness condition: with q = n − f, a server never
    // waits on the f crashed workers and completes every iteration.
    // nw = 6 keeps Multi-Krum satisfied at the reduced quorum (q = 5 ≥ 2f + 3).
    let mut cfg = live_config();
    cfg.nw = 6;
    let n = cfg.nw;
    let f = cfg.fw;
    let faults = FaultPlan::new().crash_worker_at(n - 1, 1); // f = 1 crash
    let mut live = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            gradient_quorum: Some(n - f),
            ..LiveOptions::default()
        })
        .with_faults(faults);
    let report = live.run_live(SystemKind::Ssmw).unwrap();
    assert_eq!(report.trace.len(), 8, "all iterations must complete");
    assert!(report.trace.final_accuracy() > 0.5);
    // The crashed worker replied during iteration 0, then went silent: it
    // sent at least one message but far fewer than the live workers.
    let workers: Vec<_> = report.telemetry.nodes_with_role(Role::Worker).collect();
    let crashed = workers.iter().max_by_key(|w| w.node).unwrap();
    let live_max = workers
        .iter()
        .filter(|w| w.node != crashed.node)
        .map(|w| w.messages_sent)
        .max()
        .unwrap();
    assert!(crashed.messages_sent >= 1 && crashed.messages_sent < live_max);
}

#[test]
fn restarted_worker_rejoins_and_contributes_again() {
    // RestartAt is the scenario CrashAt cannot express: the worker dies at
    // iteration 2 (its transport really goes silent and its inbox is
    // replaced), sits out iterations 2..5, then serves again from
    // iteration 5. With q = n − 1 the run never stalls, and the rejoined
    // worker's reply counter proves it contributed after coming back.
    let mut cfg = live_config();
    cfg.nw = 6; // q = 5 keeps Multi-Krum satisfied (2f + 3 = 5)
    cfg.iterations = 10;
    let n = cfg.nw;
    let (crash, rejoin) = (2usize, 5usize);
    let restarted_rank = n - 1;
    let faults = FaultPlan::new().restart_worker_at(restarted_rank, crash, rejoin);
    let mut live = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            gradient_quorum: Some(n - 1),
            request_retry: std::time::Duration::from_millis(100),
            ..LiveOptions::default()
        })
        .with_faults(faults);
    let report = live.run_live(SystemKind::Ssmw).unwrap();
    assert_eq!(report.trace.len(), 10, "all iterations must complete");
    assert!(report.trace.final_accuracy() > 0.5);

    let workers: Vec<_> = report.telemetry.nodes_with_role(Role::Worker).collect();
    let restarted = workers.iter().max_by_key(|w| w.node).unwrap();
    assert_eq!(restarted.resumes, 1, "exactly one rejoin must be recorded");
    // Replies before the crash (rounds 0..crash) plus replies after the
    // rejoin (rounds rejoin..iterations); re-requests may add duplicates,
    // never remove contributions. Round `rejoin` itself can race the
    // re-registration: with q = n − 1 the other five workers form quorum
    // alone, so that one boundary round may legitimately go unanswered.
    let min_replies = (crash + (10 - rejoin) - 1) as u64;
    assert!(
        restarted.messages_sent >= min_replies,
        "rejoined worker sent {} replies, expected at least {min_replies}",
        restarted.messages_sent
    );
    for w in &workers {
        if w.node != restarted.node {
            assert_eq!(w.resumes, 0);
        }
    }
}

#[test]
fn restarted_server_replica_catches_up_via_state_transfer_bit_exactly() {
    // MSMW with a *server* replica that dies and comes back. While it is
    // down it keeps serving its stale crash-time snapshot (a straggler —
    // covered by the fps tolerance of the model GAR), so its peers never
    // stall; on rejoin it pulls a StateChunk from the fastest live peer and
    // adopts that replica's model + optimizer state. Because synchronous
    // full-quorum replicas evolve in lockstep, adopting a peer's state puts
    // the restarted replica back in lockstep: all three final models must
    // agree bit for bit.
    let mut cfg = live_config(); // nps = 3, fps = 1, synchronous (q = nw)
    cfg.iterations = 10;
    let faults = FaultPlan::new().restart_server_at(2, 3, 6);
    let mut live = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            request_retry: std::time::Duration::from_millis(100),
            ..LiveOptions::default()
        })
        .with_faults(faults);
    let report = live.run_live(SystemKind::Msmw).unwrap();
    assert_eq!(report.trace.len(), 10, "the observer completes every round");
    assert_eq!(report.final_models.len(), 3);
    let bits: Vec<Vec<u32>> = report
        .final_models
        .iter()
        .map(|m| m.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    assert_eq!(bits[0], bits[1], "peers stay in lockstep");
    assert_eq!(
        bits[0], bits[2],
        "the restarted replica must catch up bit-exactly via state transfer"
    );

    let servers: Vec<_> = report.telemetry.nodes_with_role(Role::Server).collect();
    let restarted = servers.iter().find(|s| s.node == 2).unwrap();
    assert_eq!(restarted.resumes, 1);
    assert_eq!(restarted.state_chunks_received, 1);
    let served: u64 = servers.iter().map(|s| s.state_chunks_served).sum();
    assert!(served >= 1, "some live peer must have served the state");
}

#[test]
fn live_run_without_quorum_reports_a_liveness_failure() {
    // q = n with a crashed worker can never gather the quorum: the deadline
    // must convert the stall into an error instead of blocking forever.
    let mut cfg = live_config();
    cfg.iterations = 2;
    let faults = FaultPlan::new().crash_worker_at(0, 0);
    let mut live = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            round_deadline: std::time::Duration::from_millis(300),
            ..LiveOptions::default()
        })
        .with_faults(faults);
    let err = live.run_live(SystemKind::Vanilla).unwrap_err();
    assert!(err.to_string().contains("liveness"), "got: {err}");
}

#[test]
fn same_seed_live_runs_produce_identical_final_models() {
    // Thread scheduling changes message arrival order between runs; the
    // aggregation path must be order-independent (replies sorted by node id),
    // so two same-seed MSMW runs end with bit-identical replicas.
    let run = || {
        let mut live = LiveExecutor::new(live_config());
        live.run_live(SystemKind::Msmw).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.final_models.len(), 3);
    assert_eq!(first.final_models, second.final_models);
    assert_eq!(first.trace.accuracy.len(), second.trace.accuracy.len());
    for (a, b) in first.trace.accuracy.iter().zip(&second.trace.accuracy) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.loss, b.loss);
    }
}

#[test]
fn fault_free_live_matches_sim_accuracy_on_every_system() {
    // Same deployment objects, same aggregation inputs in the same order:
    // the live substrate must reproduce the sim learning trajectory.
    for system in [SystemKind::Vanilla, SystemKind::Ssmw, SystemKind::Msmw] {
        let cfg = live_config();
        let sim_trace = SimExecutor::new(cfg.clone()).run(system).unwrap();
        let mut live = LiveExecutor::new(cfg);
        let report = live.run_live(system).unwrap();
        assert_eq!(report.trace.len(), sim_trace.len(), "{system}");
        assert_eq!(
            report.trace.final_accuracy(),
            sim_trace.final_accuracy(),
            "{system}: live and sim should agree exactly on a fault-free run"
        );
        assert!(
            report.telemetry.all_nodes_active(),
            "{system}: every node must have sent and received messages"
        );
        assert!(report.telemetry.total_bytes() > 0);
        assert_eq!(report.telemetry.round_latencies.len(), cfg_iterations());
    }
}

fn cfg_iterations() -> usize {
    live_config().iterations
}

#[test]
fn byzantine_payload_rewrite_is_tolerated_by_ssmw_but_not_vanilla() {
    // The FaultPlan's Byzantine rewrite corrupts gradients on the wire path;
    // Multi-Krum filters it out, plain averaging is destroyed by it.
    let mut cfg = live_config();
    cfg.iterations = 30;
    cfg.eval_every = 10;
    let faults = || FaultPlan::new().byzantine_worker(0, garfield_attacks::AttackKind::Reversed);
    let robust = LiveExecutor::new(cfg.clone())
        .with_faults(faults())
        .run_live(SystemKind::Ssmw)
        .unwrap();
    assert!(
        robust.trace.final_accuracy() > 0.5,
        "SSMW should survive the rewrite, got {}",
        robust.trace.final_accuracy()
    );
    let fragile = LiveExecutor::new(cfg)
        .with_faults(faults())
        .run_live(SystemKind::Vanilla)
        .unwrap();
    assert!(
        fragile.trace.final_accuracy() < robust.trace.final_accuracy(),
        "vanilla averaging should suffer more than SSMW under the rewrite"
    );
}

#[test]
fn delayed_workers_are_left_behind_by_partial_quorums() {
    // A straggler delayed beyond the round deadline must not stall a
    // q = n − f run. The check is structural, not a wall-clock assertion: the
    // deadline (800 ms) is far above an honest round (~1 ms, generous slack
    // for loaded CI machines) but below the straggler's 2 s delay, so any
    // round that waited for the straggler would time out with a liveness
    // error — completing all iterations proves the quorum left it behind.
    let mut cfg = live_config();
    cfg.nw = 6; // q = 5 keeps Multi-Krum satisfied (2f + 3 = 5)
    cfg.iterations = 2; // bounds the straggler's reply backlog at shutdown
    let n = cfg.nw;
    let f = cfg.fw;
    let mut live = LiveExecutor::new(cfg)
        .with_options(LiveOptions {
            gradient_quorum: Some(n - f),
            round_deadline: std::time::Duration::from_millis(800),
            ..LiveOptions::default()
        })
        .with_faults(FaultPlan::new().delay_worker(0, 2_000));
    let report = live.run_live(SystemKind::Ssmw).unwrap();
    assert_eq!(report.trace.len(), 2);
}

#[test]
fn executor_trait_selects_sim_or_live_for_the_same_experiment() {
    let mut cfg = live_config();
    cfg.iterations = 4;
    cfg.eval_every = 2;
    let mut by_mode = Vec::new();
    for mode in [garfield_core::ExecMode::Sim, garfield_core::ExecMode::Live] {
        let mut executor = executor_for(mode, cfg.clone());
        assert_eq!(executor.name(), mode.as_str());
        let trace = executor.run(SystemKind::Ssmw).unwrap();
        assert_eq!(trace.len(), 4);
        by_mode.push(trace);
    }
    assert_eq!(
        by_mode[0].final_accuracy(),
        by_mode[1].final_accuracy(),
        "both substrates must learn the same model fault-free"
    );
}

#[test]
fn unsupported_systems_are_rejected_up_front() {
    let mut live = LiveExecutor::new(live_config());
    let err = live.run_live(SystemKind::Decentralized).unwrap_err();
    assert!(err.to_string().contains("live runtime"));
    assert!(live.last_report().is_none());
}
