//! Catalog-wide invariants: every [`AttackKind`] builds an attack that
//! (1) preserves the gradient's shape, (2) measurably diverges from the
//! honest gradient, and (3) is reproducible under a fixed RNG seed.

use garfield_attacks::AttackKind;
use garfield_tensor::{l2_distance, Shape, Tensor, TensorRng};

/// A realistic honest gradient plus a colluding peer view for the
/// omniscient attacks.
fn setup(d: usize) -> (Tensor, Vec<Tensor>, TensorRng) {
    let mut rng = TensorRng::seed_from(99);
    let honest = rng.normal_tensor(d).scale(0.5);
    let peers: Vec<Tensor> = (0..5)
        .map(|_| honest.try_add(&rng.normal_tensor(d).scale(0.05)).unwrap())
        .collect();
    (honest, peers, rng)
}

#[test]
fn every_attack_preserves_the_gradient_shape() {
    let (honest, peers, mut rng) = setup(48);
    for kind in AttackKind::all() {
        let out = kind.build().corrupt(&honest, &peers, &mut rng);
        assert_eq!(out.shape(), honest.shape(), "{kind} changed the shape");
        assert!(out.is_finite(), "{kind} produced non-finite values");
    }
}

#[test]
fn every_attack_preserves_matrix_shapes_too() {
    let mut rng = TensorRng::seed_from(5);
    let honest = rng.normal_tensor(Shape::matrix(6, 8));
    for kind in AttackKind::all() {
        let out = kind.build().corrupt(&honest, &[], &mut rng);
        assert_eq!(out.shape().dims(), &[6, 8], "{kind} flattened the matrix");
    }
}

#[test]
fn every_attack_measurably_diverges_from_the_honest_gradient() {
    let (honest, peers, mut rng) = setup(64);
    // Nothing in the honest gradient is exactly zero, so even the drop
    // attacks must move the vector by a measurable distance.
    assert!(
        honest.iter().all(|&v| v != 0.0),
        "setup produced a degenerate gradient"
    );
    for kind in AttackKind::all() {
        let out = kind.build().corrupt(&honest, &peers, &mut rng);
        let distance = l2_distance(&out, &honest);
        assert!(
            distance > 1e-3 * honest.norm(),
            "{kind} is indistinguishable from honest (distance {distance})"
        );
    }
}

#[test]
fn attacks_are_reproducible_under_a_fixed_seed() {
    for kind in AttackKind::all() {
        let (honest, peers, mut rng_a) = setup(32);
        let (_, _, mut rng_b) = setup(32);
        let a = kind.build().corrupt(&honest, &peers, &mut rng_a);
        let b = kind.build().corrupt(&honest, &peers, &mut rng_b);
        assert_eq!(a, b, "{kind} is not deterministic under a fixed seed");
    }
}

#[test]
fn built_attacks_report_their_catalog_name() {
    for kind in AttackKind::all() {
        assert_eq!(kind.build().name(), kind.as_str());
    }
}

#[test]
fn amplified_attacks_blow_up_the_norm_while_stealthy_ones_do_not() {
    let (honest, peers, mut rng) = setup(64);
    let norm = honest.norm();
    let reversed = AttackKind::Reversed
        .build()
        .corrupt(&honest, &peers, &mut rng);
    assert!(
        reversed.norm() > 50.0 * norm,
        "the ×(−100) attack should be a loud outlier"
    );
    let lie = AttackKind::LittleIsEnough
        .build()
        .corrupt(&honest, &peers, &mut rng);
    assert!(
        lie.norm() < 3.0 * norm + 1.0,
        "a-little-is-enough should stay inside the honest envelope, norm {} vs {}",
        lie.norm(),
        norm
    );
}
