//! The [`Attack`] trait and the attack catalogue enumeration.

use garfield_tensor::{Tensor, TensorRng};
use std::fmt;
use std::str::FromStr;

/// A Byzantine behaviour: transforms the vector an honest node would have sent.
///
/// `honest` is the correct gradient or model vector the node computed;
/// `peers` optionally contains the honest vectors of the colluding Byzantine
/// group (the omniscient-adversary model used by "a little is enough" and
/// "fall of empires"); `rng` supplies randomness for stochastic attacks.
pub trait Attack: Send + Sync {
    /// The attack's short name.
    fn name(&self) -> &'static str;

    /// Produces the Byzantine vector that will actually be sent.
    fn corrupt(&self, honest: &Tensor, peers: &[Tensor], rng: &mut TensorRng) -> Tensor;
}

/// Identifiers for the attacks shipped with Garfield, used by configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttackKind {
    /// Replace the vector with Gaussian noise (Fig. 5a).
    Random,
    /// Reverse and amplify the vector (×(−100), Fig. 5b).
    Reversed,
    /// Send an all-zero vector (drop the contribution).
    Drop,
    /// Flip the sign without amplification.
    SignFlip,
    /// "A little is enough" (Baruch et al. 2019).
    LittleIsEnough,
    /// "Fall of empires" (Xie et al. 2019).
    FallOfEmpires,
    /// Compute the gradient on permuted labels (data poisoning).
    LabelFlip,
    /// Zero out a random fraction of the coordinates.
    PartialDrop,
}

impl AttackKind {
    /// All attack kinds.
    pub fn all() -> [AttackKind; 8] {
        [
            AttackKind::Random,
            AttackKind::Reversed,
            AttackKind::Drop,
            AttackKind::SignFlip,
            AttackKind::LittleIsEnough,
            AttackKind::FallOfEmpires,
            AttackKind::LabelFlip,
            AttackKind::PartialDrop,
        ]
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackKind::Random => "random",
            AttackKind::Reversed => "reversed",
            AttackKind::Drop => "drop",
            AttackKind::SignFlip => "sign-flip",
            AttackKind::LittleIsEnough => "little-is-enough",
            AttackKind::FallOfEmpires => "fall-of-empires",
            AttackKind::LabelFlip => "label-flip",
            AttackKind::PartialDrop => "partial-drop",
        }
    }

    /// Builds the default-parameter implementation of this attack.
    pub fn build(self) -> Box<dyn Attack> {
        use crate::catalog::*;
        match self {
            AttackKind::Random => Box::new(RandomVectorAttack::default()),
            AttackKind::Reversed => Box::new(ReversedVectorAttack::amplified(100.0)),
            AttackKind::Drop => Box::new(DropVectorAttack),
            AttackKind::SignFlip => Box::new(SignFlipAttack),
            AttackKind::LittleIsEnough => Box::new(LittleIsEnoughAttack::default()),
            AttackKind::FallOfEmpires => Box::new(FallOfEmpiresAttack::default()),
            AttackKind::LabelFlip => Box::new(LabelFlipAttack::default()),
            AttackKind::PartialDrop => Box::new(PartialDropAttack::default()),
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AttackKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AttackKind::all()
            .into_iter()
            .find(|k| k.as_str() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown attack '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_strings() {
        for kind in AttackKind::all() {
            assert_eq!(kind.as_str().parse::<AttackKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("nonsense".parse::<AttackKind>().is_err());
    }

    #[test]
    fn every_kind_builds_an_attack_with_matching_name_prefix() {
        let mut rng = TensorRng::seed_from(1);
        let honest = Tensor::ones(4usize);
        for kind in AttackKind::all() {
            let attack = kind.build();
            let out = attack.corrupt(&honest, &[], &mut rng);
            assert_eq!(out.len(), honest.len(), "{kind} changed the vector length");
        }
    }
}
