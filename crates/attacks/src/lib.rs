//! # garfield-attacks
//!
//! Byzantine attack implementations for the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021).
//!
//! The paper's `Byzantine Server` / `Byzantine Worker` objects (§3.2) replace
//! the vector they are supposed to send — a gradient or a model — with an
//! adversarial one. This crate implements the attacks the paper lists:
//!
//! * simple attacks: [`RandomVectorAttack`], [`ReversedVectorAttack`]
//!   (reverse and amplify, the paper's "×(−100)" attack of Fig. 5b),
//!   [`DropVectorAttack`], [`SignFlipAttack`];
//! * the state-of-the-art attacks: [`LittleIsEnoughAttack`] (Baruch et al.)
//!   and [`FallOfEmpiresAttack`] (Xie et al.), which both craft vectors that
//!   stay *within* the honest variance envelope so naive filters accept them.
//!
//! Every attack implements the [`Attack`] trait: given the vector an honest
//! node would have sent plus (optionally) the vectors of its colluding peers,
//! it produces the Byzantine vector actually sent.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_attacks::{Attack, ReversedVectorAttack};
//! use garfield_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed_from(1);
//! let honest = Tensor::from_slice(&[1.0, -2.0]);
//! let attack = ReversedVectorAttack::amplified(100.0);
//! let byz = attack.corrupt(&honest, &[], &mut rng);
//! assert_eq!(byz.data(), &[-100.0, 200.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod traits;

pub use catalog::{
    DropVectorAttack, FallOfEmpiresAttack, LabelFlipAttack, LittleIsEnoughAttack,
    PartialDropAttack, RandomVectorAttack, ReversedVectorAttack, SignFlipAttack,
};
pub use traits::{Attack, AttackKind};
