//! Concrete Byzantine attack implementations.

use crate::Attack;
use garfield_tensor::{Tensor, TensorRng};

/// Replaces the vector with Gaussian noise of configurable magnitude.
///
/// This is the paper's "random vectors" attack (Fig. 5a). Vanilla averaging
/// collapses under it; Byzantine-resilient GARs filter it out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomVectorAttack {
    /// Standard deviation of the injected noise.
    pub std_dev: f32,
}

impl Default for RandomVectorAttack {
    fn default() -> Self {
        RandomVectorAttack { std_dev: 10.0 }
    }
}

impl Attack for RandomVectorAttack {
    fn name(&self) -> &'static str {
        "random"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], rng: &mut TensorRng) -> Tensor {
        rng.normal_tensor(honest.shape().clone())
            .scale(self.std_dev)
    }
}

/// Reverses the vector and amplifies it, the paper's "×(−100)" attack (Fig. 5b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReversedVectorAttack {
    /// Amplification factor applied after the sign flip.
    pub amplification: f32,
}

impl ReversedVectorAttack {
    /// Creates a reversed attack with the given amplification factor.
    pub fn amplified(amplification: f32) -> Self {
        ReversedVectorAttack { amplification }
    }
}

impl Default for ReversedVectorAttack {
    fn default() -> Self {
        ReversedVectorAttack::amplified(100.0)
    }
}

impl Attack for ReversedVectorAttack {
    fn name(&self) -> &'static str {
        "reversed"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], _rng: &mut TensorRng) -> Tensor {
        honest.scale(-self.amplification)
    }
}

/// Sends an all-zero vector, effectively dropping the node's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropVectorAttack;

impl Attack for DropVectorAttack {
    fn name(&self) -> &'static str {
        "drop"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], _rng: &mut TensorRng) -> Tensor {
        Tensor::zeros(honest.shape().clone())
    }
}

/// Flips the sign of the vector without amplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignFlipAttack;

impl Attack for SignFlipAttack {
    fn name(&self) -> &'static str {
        "sign-flip"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], _rng: &mut TensorRng) -> Tensor {
        honest.scale(-1.0)
    }
}

/// "A little is enough" (Baruch, Baruch & Goldberg, 2019).
///
/// The omniscient adversary estimates the honest gradients' coordinate-wise
/// mean `μ` and standard deviation `σ`, and sends `μ − z·σ`: a vector that
/// stays within the natural noise envelope (so distance-based defences accept
/// it) yet consistently biases the aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LittleIsEnoughAttack {
    /// The `z` factor controlling how far inside the envelope the shift stays.
    pub z: f32,
}

impl Default for LittleIsEnoughAttack {
    fn default() -> Self {
        LittleIsEnoughAttack { z: 1.5 }
    }
}

impl Attack for LittleIsEnoughAttack {
    fn name(&self) -> &'static str {
        "little-is-enough"
    }

    fn corrupt(&self, honest: &Tensor, peers: &[Tensor], _rng: &mut TensorRng) -> Tensor {
        // With no peers to estimate the envelope from (the first round, before
        // any history accumulates), σ degenerates to zero and μ to the honest
        // gradient itself — the payload would be the honest gradient bit for
        // bit, i.e. no attack at all. Attack from the start instead: send the
        // reflected gradient until an envelope estimate exists.
        if peers.iter().all(|p| p.len() != honest.len()) {
            return honest.scale(-1.0);
        }
        let (mean, std) = coordinate_moments(honest, peers);
        let mut out = mean;
        for (o, s) in out.data_mut().iter_mut().zip(std.data().iter()) {
            *o -= self.z * s;
        }
        out
    }
}

/// "Fall of empires" (Xie, Koyejo & Gupta, 2019): inner-product manipulation.
///
/// The adversary sends `−ε · μ`, the negated (scaled) mean of the honest
/// gradients, which keeps a small norm while pointing against the descent
/// direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallOfEmpiresAttack {
    /// The ε scale applied to the negated mean.
    pub epsilon: f32,
}

impl Default for FallOfEmpiresAttack {
    fn default() -> Self {
        FallOfEmpiresAttack { epsilon: 1.1 }
    }
}

impl Attack for FallOfEmpiresAttack {
    fn name(&self) -> &'static str {
        "fall-of-empires"
    }

    fn corrupt(&self, honest: &Tensor, peers: &[Tensor], _rng: &mut TensorRng) -> Tensor {
        let (mean, _) = coordinate_moments(honest, peers);
        mean.scale(-self.epsilon)
    }
}

/// Gradient computed as if the labels had been shifted by one class
/// (approximated at the vector level by a partial sign flip plus noise).
///
/// Unlike the omniscient attacks this models *data poisoning*: the Byzantine
/// worker honestly runs SGD but on corrupted labels. At the vector level the
/// resulting gradient points towards a wrong minimum, which we model as a
/// blend of the true gradient and its reflection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelFlipAttack {
    /// Blend factor: 0 = honest, 1 = fully reflected gradient.
    pub strength: f32,
}

impl Default for LabelFlipAttack {
    fn default() -> Self {
        LabelFlipAttack { strength: 0.8 }
    }
}

impl Attack for LabelFlipAttack {
    fn name(&self) -> &'static str {
        "label-flip"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], rng: &mut TensorRng) -> Tensor {
        let noise = rng
            .normal_tensor(honest.shape().clone())
            .scale(0.05 * honest.norm().max(1e-6));
        honest
            .scale(1.0 - 2.0 * self.strength)
            .try_add(&noise)
            .expect("noise shares the gradient shape")
    }
}

/// Zeros out a random fraction of the coordinates (a lossy / omission fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialDropAttack {
    /// Fraction of coordinates to zero, in `[0, 1]`.
    pub fraction: f32,
}

impl Default for PartialDropAttack {
    fn default() -> Self {
        PartialDropAttack { fraction: 0.5 }
    }
}

impl Attack for PartialDropAttack {
    fn name(&self) -> &'static str {
        "partial-drop"
    }

    fn corrupt(&self, honest: &Tensor, _peers: &[Tensor], rng: &mut TensorRng) -> Tensor {
        let mut out = honest.clone();
        for v in out.data_mut() {
            if rng.uniform01() < self.fraction {
                *v = 0.0;
            }
        }
        out
    }
}

/// Coordinate-wise mean and standard deviation of the honest vector plus any
/// observed peers (the omniscient-adversary estimate).
fn coordinate_moments(honest: &Tensor, peers: &[Tensor]) -> (Tensor, Tensor) {
    let mut all: Vec<&Tensor> = Vec::with_capacity(peers.len() + 1);
    all.push(honest);
    all.extend(peers.iter().filter(|p| p.len() == honest.len()));
    let n = all.len() as f32;
    let mut mean = Tensor::zeros(honest.shape().clone());
    for t in &all {
        mean.add_assign_checked(t).expect("equal shapes");
    }
    mean.scale_inplace(1.0 / n);
    let mut var = Tensor::zeros(honest.shape().clone());
    for t in &all {
        for (v, (x, m)) in var
            .data_mut()
            .iter_mut()
            .zip(t.data().iter().zip(mean.data().iter()))
        {
            let d = x - m;
            *v += d * d;
        }
    }
    var.scale_inplace(1.0 / n);
    let std = var.map(f32::sqrt);
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(17)
    }

    #[test]
    fn reversed_attack_multiplies_by_minus_amplification() {
        let honest = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let out = ReversedVectorAttack::amplified(100.0).corrupt(&honest, &[], &mut rng());
        assert_eq!(out.data(), &[-100.0, 200.0, -50.0]);
    }

    #[test]
    fn drop_and_sign_flip() {
        let honest = Tensor::from_slice(&[1.0, -2.0]);
        assert!(DropVectorAttack
            .corrupt(&honest, &[], &mut rng())
            .iter()
            .all(|&v| v == 0.0));
        assert_eq!(
            SignFlipAttack.corrupt(&honest, &[], &mut rng()).data(),
            &[-1.0, 2.0]
        );
    }

    #[test]
    fn random_attack_is_unrelated_to_the_honest_vector() {
        let honest = Tensor::ones(64usize);
        let out = RandomVectorAttack::default().corrupt(&honest, &[], &mut rng());
        assert_eq!(out.len(), 64);
        // Norm should be far from the honest vector's norm of 8.
        assert!(out.norm() > 20.0);
    }

    #[test]
    fn little_is_enough_stays_near_the_honest_envelope() {
        let mut r = rng();
        let peers: Vec<Tensor> = (0..5)
            .map(|_| {
                Tensor::ones(16usize)
                    .try_add(&r.normal_tensor(16usize).scale(0.1))
                    .unwrap()
            })
            .collect();
        let honest = peers[0].clone();
        let out = LittleIsEnoughAttack::default().corrupt(&honest, &peers, &mut r);
        // The attack vector stays within a few σ of the mean: small distance,
        // unlike the amplified attacks.
        for &v in out.data() {
            assert!((0.0..2.0).contains(&v), "value {v} escaped the envelope");
        }
    }

    #[test]
    fn little_is_enough_attacks_from_round_zero() {
        // Before any estimation view exists the envelope is degenerate
        // (μ = honest, σ = 0): the naive payload would be the honest gradient
        // itself. The adversary must still attack — it sends the reflection.
        let honest = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let out = LittleIsEnoughAttack::default().corrupt(&honest, &[], &mut rng());
        assert_eq!(out.data(), &[-1.0, 2.0, -0.5]);
        // Mismatched peers are no estimation view either.
        let bad = vec![Tensor::ones(7usize)];
        let out = LittleIsEnoughAttack::default().corrupt(&honest, &bad, &mut rng());
        assert_eq!(out.data(), &[-1.0, 2.0, -0.5]);
    }

    #[test]
    fn fall_of_empires_points_against_the_mean() {
        let mut r = rng();
        let peers: Vec<Tensor> = (0..4).map(|_| Tensor::ones(8usize)).collect();
        let out = FallOfEmpiresAttack::default().corrupt(&peers[0], &peers, &mut r);
        let dot: f32 = out.dot(&peers[0]).unwrap();
        assert!(dot < 0.0, "attack should oppose the descent direction");
    }

    #[test]
    fn label_flip_reverses_most_of_the_gradient() {
        let honest = Tensor::from_slice(&[1.0; 32]);
        let out = LabelFlipAttack::default().corrupt(&honest, &[], &mut rng());
        let dot = out.dot(&honest).unwrap();
        assert!(dot < 0.0);
    }

    #[test]
    fn partial_drop_zeroes_roughly_the_requested_fraction() {
        let honest = Tensor::ones(1000usize);
        let out = PartialDropAttack { fraction: 0.3 }.corrupt(&honest, &[], &mut rng());
        let zeros = out.iter().filter(|&&v| v == 0.0).count();
        assert!((200..400).contains(&zeros), "zeroed {zeros} of 1000");
    }

    #[test]
    fn moments_ignore_mismatched_peers() {
        let honest = Tensor::ones(4usize);
        let peers = vec![Tensor::ones(3usize)];
        let (mean, std) = coordinate_moments(&honest, &peers);
        assert_eq!(mean.data(), honest.data());
        assert!(std.iter().all(|&v| v == 0.0));
    }
}
