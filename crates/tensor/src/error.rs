//! Error types for tensor operations.

use std::fmt;

/// Result alias used across the tensor crate.
pub type TensorResult<T> = Result<T, TensorError>;

/// Errors produced by tensor construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The amount of data provided does not match the requested shape.
    DataShapeMismatch {
        /// Number of scalar elements supplied by the caller.
        data_len: usize,
        /// Number of scalar elements the shape requires.
        shape_len: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix multiplication do not agree.
    MatmulMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An operation that requires a non-empty tensor received an empty one.
    EmptyTensor,
    /// An index was out of bounds for the tensor.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// The operation is only defined for matrices (rank-2 tensors).
    NotAMatrix {
        /// Actual rank of the tensor.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataShapeMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "data length {data_len} does not match shape element count {shape_len}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulMismatch { left, right } => {
                write!(
                    f,
                    "matrix multiply dimension mismatch between {left:?} and {right:?}"
                )
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of length {len}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape tensor of {from} elements into shape of {to} elements"
                )
            }
            TensorError::NotAMatrix { rank } => {
                write!(f, "operation requires a rank-2 tensor, got rank {rank}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            TensorError::DataShapeMismatch {
                data_len: 3,
                shape_len: 4,
            },
            TensorError::ShapeMismatch {
                left: vec![2],
                right: vec![3],
            },
            TensorError::MatmulMismatch {
                left: vec![2, 2],
                right: vec![3, 3],
            },
            TensorError::EmptyTensor,
            TensorError::IndexOutOfBounds { index: 9, len: 3 },
            TensorError::ReshapeMismatch { from: 4, to: 5 },
            TensorError::NotAMatrix { rank: 1 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
