//! Random tensor initialisation.

use crate::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Uniform};

/// Weight-initialisation schemes used by the model zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the interval.
        limit: f32,
    },
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the distribution.
        std_dev: f32,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    Xavier {
        /// Number of input units of the layer.
        fan_in: usize,
        /// Number of output units of the layer.
        fan_out: usize,
    },
}

/// A deterministic random number generator for tensors.
///
/// Every component of the workspace that needs randomness (data synthesis,
/// weight initialisation, attacks, simulated network jitter) derives from a
/// seeded [`TensorRng`] so experiments are exactly reproducible.
///
/// ```rust
/// use garfield_tensor::{TensorRng, Initializer};
/// let mut rng = TensorRng::seed_from(42);
/// let w = rng.tensor(10usize, Initializer::Normal { std_dev: 0.1 });
/// assert_eq!(w.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a child component.
    ///
    /// The derived stream is a deterministic function of this generator's
    /// current state and `stream`, so sibling components (e.g. workers) get
    /// uncorrelated but reproducible randomness.
    pub fn derive(&mut self, stream: u64) -> TensorRng {
        let base: u64 = self.rng.gen();
        TensorRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The generator's full internal state, for checkpointing.
    ///
    /// A generator rebuilt via [`TensorRng::from_state_words`] continues the
    /// stream exactly where this one stands — the property crash recovery
    /// relies on to keep resumed runs bit-identical to uninterrupted ones.
    pub fn state_words(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a generator from a state previously returned by
    /// [`TensorRng::state_words`].
    pub fn from_state_words(words: [u64; 4]) -> Self {
        TensorRng {
            rng: StdRng::from_state(words),
        }
    }

    /// Samples a single uniform value in `[0, 1)`.
    pub fn uniform01(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Samples a single standard-normal value.
    pub fn standard_normal(&mut self) -> f32 {
        Normal::new(0.0f32, 1.0)
            .expect("valid distribution")
            .sample(&mut self.rng)
    }

    /// Samples an integer uniformly in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// Samples a tensor of the given shape with the given initialiser.
    pub fn tensor(&mut self, shape: impl Into<Shape>, init: Initializer) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        let data: Vec<f32> = match init {
            Initializer::Zeros => vec![0.0; n],
            Initializer::Uniform { limit } => {
                let dist = Uniform::new_inclusive(-limit, limit);
                (0..n).map(|_| dist.sample(&mut self.rng)).collect()
            }
            Initializer::Normal { std_dev } => {
                let dist = Normal::new(0.0f32, std_dev.max(f32::EPSILON))
                    .expect("std dev is finite and positive");
                (0..n).map(|_| dist.sample(&mut self.rng)).collect()
            }
            Initializer::Xavier { fan_in, fan_out } => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                let dist = Uniform::new_inclusive(-limit, limit);
                (0..n).map(|_| dist.sample(&mut self.rng)).collect()
            }
        };
        Tensor::from_vec(data, shape).expect("generated data matches shape")
    }

    /// Samples a standard-normal tensor (mean 0, std 1) of the given shape.
    pub fn normal_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        self.tensor(shape, Initializer::Normal { std_dev: 1.0 })
    }

    /// Produces a random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        let ta = a.normal_tensor(32usize);
        let tb = b.normal_tensor(32usize);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        assert_ne!(a.normal_tensor(32usize), b.normal_tensor(32usize));
    }

    #[test]
    fn derived_streams_are_independent_and_deterministic() {
        let mut parent1 = TensorRng::seed_from(9);
        let mut parent2 = TensorRng::seed_from(9);
        let mut c1 = parent1.derive(3);
        let mut c2 = parent2.derive(3);
        assert_eq!(c1.normal_tensor(8usize), c2.normal_tensor(8usize));
        let mut other = TensorRng::seed_from(9).derive(4);
        assert_ne!(
            TensorRng::seed_from(9).derive(3).normal_tensor(8usize),
            other.normal_tensor(8usize)
        );
    }

    #[test]
    fn initializers_respect_bounds() {
        let mut rng = TensorRng::seed_from(11);
        let z = rng.tensor(16usize, Initializer::Zeros);
        assert!(z.iter().all(|&v| v == 0.0));
        let u = rng.tensor(256usize, Initializer::Uniform { limit: 0.5 });
        assert!(u.iter().all(|&v| (-0.5..=0.5).contains(&v)));
        let x = rng.tensor(
            256usize,
            Initializer::Xavier {
                fan_in: 10,
                fan_out: 20,
            },
        );
        let lim = (6.0f32 / 30.0).sqrt();
        assert!(x.iter().all(|&v| v.abs() <= lim + 1e-6));
    }

    #[test]
    fn normal_tensor_has_reasonable_moments() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.normal_tensor(10_000usize);
        assert!(t.mean().abs() < 0.05);
        let var: f32 = t.iter().map(|&v| v * v).sum::<f32>() / t.len() as f32;
        assert!((var - 1.0).abs() < 0.1);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = TensorRng::seed_from(3);
        let mut p = rng.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = TensorRng::seed_from(3);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
