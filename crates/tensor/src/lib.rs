//! # garfield-tensor
//!
//! Dense tensor math substrate for the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021).
//!
//! The paper builds on TensorFlow / PyTorch tensors; this crate provides the
//! minimal, dependency-light equivalent needed by the rest of the workspace:
//! an `f32` dense [`Tensor`] with shape tracking, element-wise arithmetic,
//! matrix multiplication, reductions, distance / norm kernels and random
//! initialisation. Gradient aggregation rules (GARs), models and the
//! distributed runtime all consume and produce these tensors.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2)).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.data(), a.data());
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
mod linalg;
mod ops;
mod shape;
mod stats;
mod tensor;
mod view;

pub use error::{TensorError, TensorResult};
pub use init::{Initializer, TensorRng};
pub use linalg::{
    accumulate_dot, accumulate_squared_l2, cosine_similarity, dot_slices, l2_distance,
    reduce_kernel_lanes, squared_l2_distance, squared_l2_distance_scalar,
    squared_l2_distance_slices, squared_norm_slices, KERNEL_LANES,
};
pub use shape::Shape;
pub use stats::{
    mean, median_inplace, std_dev, total_cmp_f32, total_order_key_f32, total_order_unkey_f32,
    variance,
};
pub use tensor::Tensor;
pub use view::GradientView;
