//! Distance and similarity kernels used by the gradient aggregation rules.

use crate::Tensor;

/// Squared Euclidean distance between two tensors viewed as flat vectors.
///
/// The two tensors must have the same number of elements; trailing elements of
/// the longer tensor are ignored otherwise (callers in this workspace always
/// pass equal-length gradients).
///
/// ```rust
/// use garfield_tensor::{Tensor, squared_l2_distance};
/// let a = Tensor::from_slice(&[0.0, 0.0]);
/// let b = Tensor::from_slice(&[3.0, 4.0]);
/// assert_eq!(squared_l2_distance(&a, &b), 25.0);
/// ```
pub fn squared_l2_distance(a: &Tensor, b: &Tensor) -> f32 {
    squared_l2_distance_slices(a.data(), b.data())
}

/// Squared Euclidean distance between two flat slices.
///
/// This is the allocation-free kernel behind [`squared_l2_distance`] and the
/// zero-copy aggregation engine's `DistanceCache`: callers hand in borrowed
/// wire payloads or tensor storage directly. The accumulation order is a
/// single left-to-right pass, so sequential and thread-chunked engines that
/// compute each *pair* on one thread produce bit-identical results.
pub fn squared_l2_distance_slices(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two tensors viewed as flat vectors.
pub fn l2_distance(a: &Tensor, b: &Tensor) -> f32 {
    squared_l2_distance(a, b).sqrt()
}

/// Cosine similarity (`cos φ`) between two tensors viewed as flat vectors.
///
/// Returns 0.0 when either vector has zero norm. This is the quantity the
/// paper reports in its Table 2 parameter-vector alignment study.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot: f32 = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| x * y)
        .sum();
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computed_values() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 6.0, 3.0]);
        assert_eq!(squared_l2_distance(&a, &b), 9.0 + 16.0);
        assert!((l2_distance(&a, &b) - 5.0).abs() < 1e-6);
        assert_eq!(squared_l2_distance(&a, &a), 0.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal_vectors() {
        let a = Tensor::from_slice(&[1.0, 0.0]);
        let b = Tensor::from_slice(&[2.0, 0.0]);
        let c = Tensor::from_slice(&[0.0, 5.0]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &c).abs() < 1e-6);
        assert!((cosine_similarity(&a, &(-&b)) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = Tensor::zeros(3usize);
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
    }
}
