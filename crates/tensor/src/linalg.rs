//! Distance and similarity kernels used by the gradient aggregation rules.
//!
//! # The chunked multi-lane kernel
//!
//! The pairwise squared-L2 fill is the `O(n² d)` hot spot of every
//! distance-based GAR, and a naive `zip().map().sum()` compiles to a *serial*
//! dependent chain of `f32` adds — float addition is not associative, so the
//! autovectorizer must preserve the left-to-right order and emits one scalar
//! `addss` per element, bounded by FP-add latency (~4–5 cycles/element).
//!
//! The kernels below fix the accumulation order by *definition* instead:
//! element `k` accumulates into lane `k % KERNEL_LANES` of an independent
//! accumulator array, and the lanes are combined at the end with the fixed
//! reduction tree of [`reduce_kernel_lanes`]. That order is explicitly
//! data-parallel — the compiler keeps [`KERNEL_LANES`] independent dependency
//! chains in SIMD registers (or unrolled scalar registers on any ISA) — and it
//! is **deterministic**: the same inputs produce the same bits on every call,
//! every thread, and every block decomposition whose block length is a
//! multiple of [`KERNEL_LANES`] (see [`accumulate_squared_l2`]).
//!
//! Two accumulation primitives are exposed so callers can run the kernels
//! *blocked* over cache-sized `d`-ranges without changing the result:
//! [`accumulate_squared_l2`] and [`accumulate_dot`] fold a block into a
//! caller-held lane array; [`squared_l2_distance_slices`] and [`dot_slices`]
//! are the one-shot wrappers.

use crate::Tensor;

/// Number of independent accumulator lanes of the chunked distance kernels.
///
/// Element `k` of an input pair always accumulates into lane
/// `k % KERNEL_LANES`; the lane array is reduced with
/// [`reduce_kernel_lanes`]. Sixteen `f32` lanes fill four SSE2 registers (two
/// AVX2 registers): enough independent FP-add dependency chains to cover the
/// 3–4-cycle add latency that kept the old scalar kernel at ~1 element per
/// 4–5 cycles. (Measured on the perf container: 16 lanes beat both 8 and 32.)
pub const KERNEL_LANES: usize = 16;

/// Reduces a lane accumulator array with a fixed halving binary tree:
/// `a[l] += a[l + width]` for `width = LANES/2, LANES/4, …, 1`.
///
/// The tree shape is part of the kernel contract — it is what makes blocked
/// and unblocked evaluations bit-identical — so it is exposed for reference
/// implementations and tests.
#[inline]
pub fn reduce_kernel_lanes(acc: [f32; KERNEL_LANES]) -> f32 {
    let mut a = acc;
    let mut width = KERNEL_LANES / 2;
    while width > 0 {
        for l in 0..width {
            a[l] += a[l + width];
        }
        width /= 2;
    }
    a[0]
}

/// Folds one block of squared differences into a caller-held lane array:
/// `acc[k % KERNEL_LANES] += (a[k] - b[k])²` for ascending `k`.
///
/// Blocked evaluation is bit-identical to a single whole-slice call provided
/// every block except the last has a length that is a multiple of
/// [`KERNEL_LANES`]: element `k` then lands in the same lane, in the same
/// order, regardless of the block decomposition. This is what lets the
/// aggregation engine sweep cache-sized `d`-blocks of *all* inputs while
/// preserving the sequential/parallel bit-identity contract.
///
/// Mismatched lengths accumulate over the common prefix (callers in this
/// workspace always pass equal-length blocks).
#[inline]
pub fn accumulate_squared_l2(a: &[f32], b: &[f32], acc: &mut [f32; KERNEL_LANES]) {
    let mut chunks_a = a.chunks_exact(KERNEL_LANES);
    let mut chunks_b = b.chunks_exact(KERNEL_LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        // Fixed-size views: the compiler sees eight independent lanes with no
        // bounds checks and keeps them in vector registers.
        let ca: &[f32; KERNEL_LANES] = ca.try_into().expect("chunks_exact length");
        let cb: &[f32; KERNEL_LANES] = cb.try_into().expect("chunks_exact length");
        for l in 0..KERNEL_LANES {
            let d = ca[l] - cb[l];
            acc[l] += d * d;
        }
    }
    for (l, (&x, &y)) in chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .enumerate()
    {
        let d = x - y;
        acc[l] += d * d;
    }
}

/// Folds one block of products into a caller-held lane array:
/// `acc[k % KERNEL_LANES] += a[k] * b[k]` for ascending `k`.
///
/// Same blocking contract as [`accumulate_squared_l2`].
#[inline]
pub fn accumulate_dot(a: &[f32], b: &[f32], acc: &mut [f32; KERNEL_LANES]) {
    let mut chunks_a = a.chunks_exact(KERNEL_LANES);
    let mut chunks_b = b.chunks_exact(KERNEL_LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let ca: &[f32; KERNEL_LANES] = ca.try_into().expect("chunks_exact length");
        let cb: &[f32; KERNEL_LANES] = cb.try_into().expect("chunks_exact length");
        for l in 0..KERNEL_LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (l, (&x, &y)) in chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .enumerate()
    {
        acc[l] += x * y;
    }
}

/// Squared Euclidean distance between two tensors viewed as flat vectors.
///
/// The two tensors must have the same number of elements; trailing elements of
/// the longer tensor are ignored otherwise (callers in this workspace always
/// pass equal-length gradients).
///
/// ```rust
/// use garfield_tensor::{Tensor, squared_l2_distance};
/// let a = Tensor::from_slice(&[0.0, 0.0]);
/// let b = Tensor::from_slice(&[3.0, 4.0]);
/// assert_eq!(squared_l2_distance(&a, &b), 25.0);
/// ```
pub fn squared_l2_distance(a: &Tensor, b: &Tensor) -> f32 {
    squared_l2_distance_slices(a.data(), b.data())
}

/// Squared Euclidean distance between two flat slices — the chunked
/// multi-lane kernel (see the module docs for the accumulation contract).
///
/// This is the allocation-free kernel behind [`squared_l2_distance`] and the
/// zero-copy aggregation engine's `DistanceCache`. Each input pair is
/// evaluated with a fixed, lane-structured accumulation order, so sequential
/// and thread-chunked engines that compute each *pair* on one thread produce
/// bit-identical results, and so does the engine's cache-blocked fill
/// (blocks are [`KERNEL_LANES`]-aligned).
pub fn squared_l2_distance_slices(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; KERNEL_LANES];
    accumulate_squared_l2(a, b, &mut acc);
    reduce_kernel_lanes(acc)
}

/// The retained scalar reference kernel: a single left-to-right pass.
///
/// This is what `squared_l2_distance_slices` compiled to before the chunked
/// rewrite. It is kept for the `kernels` criterion group (scalar vs chunked
/// vs Gram) and as an independently-auditable reference in tests; production
/// call sites all use the chunked kernel. Note the *values* differ from the
/// chunked kernel by float non-associativity (within rounding error); the
/// bit-exact reference for the chunked kernel is lane-ordered accumulation,
/// pinned by the proptests in `tests/kernel_properties.rs`.
pub fn squared_l2_distance_scalar(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Dot product of two flat slices with the chunked multi-lane kernel.
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; KERNEL_LANES];
    accumulate_dot(a, b, &mut acc);
    reduce_kernel_lanes(acc)
}

/// Squared L2 norm of a flat slice (`‖a‖² = a·a`), chunked kernel.
pub fn squared_norm_slices(a: &[f32]) -> f32 {
    dot_slices(a, a)
}

/// Euclidean distance between two tensors viewed as flat vectors.
pub fn l2_distance(a: &Tensor, b: &Tensor) -> f32 {
    squared_l2_distance(a, b).sqrt()
}

/// Cosine similarity (`cos φ`) between two tensors viewed as flat vectors.
///
/// Returns 0.0 when either vector has zero norm. This is the quantity the
/// paper reports in its Table 2 parameter-vector alignment study.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot = dot_slices(a.data(), b.data());
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computed_values() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 6.0, 3.0]);
        assert_eq!(squared_l2_distance(&a, &b), 9.0 + 16.0);
        assert!((l2_distance(&a, &b) - 5.0).abs() < 1e-6);
        assert_eq!(squared_l2_distance(&a, &a), 0.0);
    }

    #[test]
    fn chunked_kernel_handles_every_remainder_length() {
        // Exact values over small integers are order-independent: the chunked
        // kernel must agree with the scalar reference exactly for lengths
        // spanning several chunk boundaries.
        for len in 0..(4 * KERNEL_LANES + 3) {
            let a: Vec<f32> = (0..len).map(|k| k as f32).collect();
            let b: Vec<f32> = (0..len).map(|k| (k as f32) - 2.0).collect();
            assert_eq!(
                squared_l2_distance_slices(&a, &b),
                squared_l2_distance_scalar(&a, &b),
                "length {len}"
            );
            assert_eq!(squared_l2_distance_slices(&a, &a), 0.0);
        }
    }

    #[test]
    fn blocked_accumulation_is_bit_identical_to_one_shot() {
        let d = 3 * KERNEL_LANES * 5 + 5; // several blocks plus a ragged tail
        let a: Vec<f32> = (0..d).map(|k| ((k * 37) as f32 * 0.01).sin()).collect();
        let b: Vec<f32> = (0..d).map(|k| ((k * 11) as f32 * 0.02).cos()).collect();
        let whole = squared_l2_distance_slices(&a, &b);
        // Any KERNEL_LANES-aligned block decomposition must reproduce it.
        for block in [KERNEL_LANES, 2 * KERNEL_LANES, 5 * KERNEL_LANES] {
            let mut acc = [0.0f32; KERNEL_LANES];
            let mut start = 0;
            while start < d {
                let end = (start + block).min(d);
                accumulate_squared_l2(&a[start..end], &b[start..end], &mut acc);
                start = end;
            }
            assert_eq!(
                reduce_kernel_lanes(acc).to_bits(),
                whole.to_bits(),
                "block {block}"
            );
        }
    }

    #[test]
    fn dot_and_norm_kernels_match_hand_values() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [2.0f32, -1.0, 0.5, 1.0];
        assert_eq!(dot_slices(&a, &b), 2.0 - 2.0 + 1.5 + 4.0);
        assert_eq!(squared_norm_slices(&a), 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(dot_slices(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal_vectors() {
        let a = Tensor::from_slice(&[1.0, 0.0]);
        let b = Tensor::from_slice(&[2.0, 0.0]);
        let c = Tensor::from_slice(&[0.0, 5.0]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &c).abs() < 1e-6);
        assert!((cosine_similarity(&a, &(-&b)) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = Tensor::zeros(3usize);
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
    }
}
