//! Scalar statistics helpers shared by the GARs and the variance tool.

/// The total order every float sort in the workspace uses
/// ([`f32::total_cmp`]: `-NaN < -∞ < … < -0.0 < +0.0 < … < +∞ < +NaN`).
///
/// Byzantine peers send NaN payloads on purpose. An ad-hoc
/// `partial_cmp(..).unwrap_or(Equal)` comparator is *not* a total order
/// (NaN compares equal to everything), so two call sites sorting the same
/// NaN-bearing column could disagree on the resulting order — and a trimmed
/// window cut from that order would differ between them. Funnelling every
/// sort through this one comparator makes NaN placement identical
/// everywhere.
#[inline]
pub fn total_cmp_f32(a: &f32, b: &f32) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance of a slice (0.0 for slices with fewer than two elements).
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Median of a mutable slice, computed with the introselect-style
/// `select_nth_unstable` kernel (the CPU path described in §4.3 of the paper).
///
/// The slice order is perturbed. For even-length slices the lower median is
/// returned, matching the coordinate-wise Median GAR's behaviour.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn median_inplace(values: &mut [f32]) -> f32 {
    assert!(!values.is_empty(), "median of an empty slice is undefined");
    let mid = (values.len() - 1) / 2;
    let (_, m, _) = values.select_nth_unstable_by(mid, total_cmp_f32);
    *m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        let mut odd = vec![5.0, 1.0, 3.0];
        assert_eq!(median_inplace(&mut odd), 3.0);
        let mut even = vec![4.0, 1.0, 3.0, 2.0];
        // Lower median for even-length input.
        assert_eq!(median_inplace(&mut even), 2.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut v = vec![1.0, 1.0, 1.0, 1.0, 1e9];
        assert_eq!(median_inplace(&mut v), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_of_empty_slice_panics() {
        median_inplace(&mut []);
    }
}
