//! Scalar statistics helpers shared by the GARs and the variance tool.

/// The total order every float sort in the workspace uses
/// ([`f32::total_cmp`]: `-NaN < -∞ < … < -0.0 < +0.0 < … < +∞ < +NaN`).
///
/// Byzantine peers send NaN payloads on purpose. An ad-hoc
/// `partial_cmp(..).unwrap_or(Equal)` comparator is *not* a total order
/// (NaN compares equal to everything), so two call sites sorting the same
/// NaN-bearing column could disagree on the resulting order — and a trimmed
/// window cut from that order would differ between them. Funnelling every
/// sort through this one comparator makes NaN placement identical
/// everywhere.
#[inline]
pub fn total_cmp_f32(a: &f32, b: &f32) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance of a slice (0.0 for slices with fewer than two elements).
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Median of a mutable slice, computed with the introselect-style
/// `select_nth_unstable` kernel (the CPU path described in §4.3 of the paper).
///
/// The slice order is perturbed. For even-length slices the lower median is
/// returned, matching the coordinate-wise Median GAR's behaviour.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn median_inplace(values: &mut [f32]) -> f32 {
    assert!(!values.is_empty(), "median of an empty slice is undefined");
    let mid = (values.len() - 1) / 2;
    let (_, m, _) = values.select_nth_unstable_by(mid, total_cmp_f32);
    *m
}

/// Maps an `f32` to a `u32` whose *native unsigned order* equals the
/// [`total_cmp_f32`] total order: the sign bit is flipped for non-negatives
/// and all bits are flipped for negatives (IEEE 754 totalOrder, the classic
/// radix-sort float key).
///
/// The map is a bijection, so selecting the `k`-th key and mapping back with
/// [`total_order_unkey_f32`] returns exactly the element that
/// `select_nth_unstable_by(k, total_cmp_f32)` would — but the selection runs
/// on branch-predictable integer compares instead of comparator calls, which
/// is what makes the coordinate-wise Median/Bulyan trimmed-median kernels
/// `O(n)`-per-coordinate in practice and not comparator-call-bound.
#[inline]
pub fn total_order_key_f32(x: f32) -> u32 {
    let b = x.to_bits();
    b ^ ((((b as i32) >> 31) as u32) | 0x8000_0000)
}

/// Inverse of [`total_order_key_f32`].
#[inline]
pub fn total_order_unkey_f32(k: u32) -> f32 {
    let b = k ^ ((((k ^ 0x8000_0000) as i32 >> 31) as u32) | 0x8000_0000);
    f32::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        let mut odd = vec![5.0, 1.0, 3.0];
        assert_eq!(median_inplace(&mut odd), 3.0);
        let mut even = vec![4.0, 1.0, 3.0, 2.0];
        // Lower median for even-length input.
        assert_eq!(median_inplace(&mut even), 2.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut v = vec![1.0, 1.0, 1.0, 1.0, 1e9];
        assert_eq!(median_inplace(&mut v), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_of_empty_slice_panics() {
        median_inplace(&mut []);
    }

    #[test]
    fn total_order_key_is_a_monotone_bijection() {
        let samples = [
            f32::NEG_INFINITY,
            -1e30,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            1e30,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
        ];
        for &a in &samples {
            // Bijective: round-trips to the same bits (including NaN payloads).
            assert_eq!(
                total_order_unkey_f32(total_order_key_f32(a)).to_bits(),
                a.to_bits()
            );
            for &b in &samples {
                // Monotone: key order is exactly the totalOrder predicate.
                assert_eq!(
                    total_order_key_f32(a).cmp(&total_order_key_f32(b)),
                    total_cmp_f32(&a, &b),
                    "key order diverged from total_cmp for {a} vs {b}"
                );
            }
        }
    }
}
