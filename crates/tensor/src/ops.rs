//! Element-wise arithmetic, reductions and matrix multiplication.

use crate::{Shape, Tensor, TensorError, TensorResult};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

impl Tensor {
    /// Element-wise addition of two tensors with identical shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_sub(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_mul(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Applies a binary function element-wise to two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> TensorResult<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign_checked(&mut self, other: &Tensor) -> TensorResult<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` in place (an `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> TensorResult<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Applies a unary function to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.shape().clone()).expect("map preserves length")
    }

    /// Applies a unary function to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `scalar`, returning a new tensor.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|v| v * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_inplace(&mut self, scalar: f32) {
        self.map_inplace(|v| v * scalar);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Largest element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element, or `None` for empty tensors.
    pub fn argmax(&self) -> Option<usize> {
        self.data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the element counts differ.
    pub fn dot(&self, other: &Tensor) -> TensorResult<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Matrix multiplication `self (r x k) * other (k x c) -> (r x c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non rank-2 operands and
    /// [`TensorError::MatmulMismatch`] when inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> TensorResult<Tensor> {
        let (r, k1) = self.matrix_dims()?;
        let (k2, c) = other.matrix_dims()?;
        if k1 != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; r * c];
        // Simple ikj loop order: keeps the inner loop sequential over `b` and
        // `out`, which the optimiser vectorises well enough for our model sizes.
        for i in 0..r {
            for k in 0..k1 {
                let aik = a[i * k1 + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[k * c..(k + 1) * c];
                let orow = &mut out[i * c..(i + 1) * c];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_vec(out, Shape::matrix(r, c))
    }

    /// Matrix transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non rank-2 tensors.
    pub fn transpose(&self) -> TensorResult<Tensor> {
        let (r, c) = self.matrix_dims()?;
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data()[i * c + j];
            }
        }
        Tensor::from_vec(out, Shape::matrix(c, r))
    }

    /// Sums matrix rows, producing a vector of length `cols`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non rank-2 tensors.
    pub fn sum_rows(&self) -> TensorResult<Tensor> {
        let (r, c) = self.matrix_dims()?;
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            let row = &self.data()[i * c..(i + 1) * c];
            for (acc, &v) in out.iter_mut().zip(row) {
                *acc += v;
            }
        }
        Ok(Tensor::from(out))
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics when the shapes differ; use [`Tensor::try_add`] for a fallible version.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.try_add(rhs)
            .expect("tensor addition requires identical shapes")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics when the shapes differ; use [`Tensor::try_sub`] for a fallible version.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.try_sub(rhs)
            .expect("tensor subtraction requires identical shapes")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// # Panics
    ///
    /// Panics when the shapes differ; use [`Tensor::add_assign_checked`] for a
    /// fallible version.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.add_assign_checked(rhs)
            .expect("tensor += requires identical shapes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.try_add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.try_sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.try_mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(a.try_add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0])).unwrap();
        assert_eq!(a.data(), &[7.0, 9.0]);
        a.add_assign_checked(&t(&[1.0, 1.0])).unwrap();
        assert_eq!(a.data(), &[8.0, 10.0]);
        assert!(a.axpy(1.0, &t(&[1.0])).is_err());
    }

    #[test]
    fn scale_map_and_neg() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, -6.0]);
        assert_eq!((-&a).data(), &[-1.0, 2.0]);
        assert_eq!(a.map(|v| v.abs()).data(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v + 1.0);
        assert_eq!(b.data(), &[2.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.argmax(), Some(3));
        assert_eq!(Tensor::from(Vec::<f32>::new()).argmax(), None);
    }

    #[test]
    fn dot_and_norm() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.dot(&a).unwrap(), 25.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::matrix(2, 3)).unwrap();
        let id = Tensor::eye(3);
        assert_eq!(a.matmul(&id).unwrap().data(), a.data());

        let b =
            Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], Shape::matrix(3, 2)).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(c.shape().dims(), &[2, 2]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::from_vec(vec![1.0; 6], Shape::matrix(2, 3)).unwrap();
        let b = Tensor::from_vec(vec![1.0; 4], Shape::matrix(2, 2)).unwrap();
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulMismatch { .. })
        ));
        let v = t(&[1.0, 2.0]);
        assert!(matches!(v.matmul(&a), Err(TensorError::NotAMatrix { .. })));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::matrix(2, 3)).unwrap();
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, a);
        assert_eq!(a.transpose().unwrap().at(0, 1).unwrap(), 4.0);
    }

    #[test]
    fn sum_rows_collapses_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::matrix(2, 3)).unwrap();
        assert_eq!(a.sum_rows().unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn operator_add_panics_on_mismatch() {
        let _ = &t(&[1.0]) + &t(&[1.0, 2.0]);
    }
}
