//! Tensor shape handling.

use std::fmt;

/// The shape (list of dimension sizes) of a [`crate::Tensor`].
///
/// A rank-0 shape (no dimensions) describes a scalar with one element.
///
/// ```rust
/// use garfield_tensor::Shape;
/// let s = Shape::matrix(3, 4);
/// assert_eq!(s.len(), 12);
/// assert_eq!(s.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an explicit list of dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Shape of a scalar (single element, rank 0).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Shape of a 1-D vector of length `n`.
    pub fn vector(n: usize) -> Self {
        Shape { dims: vec![n] }
    }

    /// Shape of a `rows x cols` matrix.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of scalar elements described by this shape.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows, when interpreted as a matrix.
    ///
    /// Returns `None` for non rank-2 shapes.
    pub fn rows(&self) -> Option<usize> {
        (self.rank() == 2).then(|| self.dims[0])
    }

    /// Number of columns, when interpreted as a matrix.
    ///
    /// Returns `None` for non rank-2 shapes.
    pub fn cols(&self) -> Option<usize> {
        (self.rank() == 2).then(|| self.dims[1])
    }
}

impl Default for Shape {
    fn default() -> Self {
        Shape::scalar()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::vector(n)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Self {
        Shape::matrix(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element_rank_zero() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn vector_and_matrix_constructors() {
        assert_eq!(Shape::vector(5).dims(), &[5]);
        assert_eq!(Shape::matrix(2, 3).dims(), &[2, 3]);
        assert_eq!(Shape::matrix(2, 3).len(), 6);
    }

    #[test]
    fn rows_cols_only_defined_for_matrices() {
        assert_eq!(Shape::matrix(4, 7).rows(), Some(4));
        assert_eq!(Shape::matrix(4, 7).cols(), Some(7));
        assert_eq!(Shape::vector(4).rows(), None);
        assert_eq!(Shape::scalar().cols(), None);
    }

    #[test]
    fn zero_sized_dim_means_empty() {
        let s = Shape::new(vec![3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn conversions_from_common_types() {
        assert_eq!(Shape::from(4usize), Shape::vector(4));
        assert_eq!(Shape::from((2usize, 3usize)), Shape::matrix(2, 3));
        assert_eq!(Shape::from(vec![1, 2, 3]).rank(), 3);
        let dims: &[usize] = &[5, 6];
        assert_eq!(Shape::from(dims), Shape::matrix(5, 6));
    }

    #[test]
    fn display_formats_dimensions() {
        assert_eq!(Shape::matrix(2, 3).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
