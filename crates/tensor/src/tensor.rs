//! The dense `f32` tensor type.

use crate::{Shape, TensorError, TensorResult};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// This is the single numeric currency of the workspace: model parameters,
/// gradient estimates and aggregated updates are all flattened `Tensor`s.
///
/// ```rust
/// use garfield_tensor::Tensor;
/// let g = Tensor::from_slice(&[1.0, -2.0, 3.0]);
/// assert_eq!(g.len(), 3);
/// assert!((g.norm() - (14.0f32).sqrt()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataShapeMismatch`] if `data.len()` differs from
    /// the number of elements described by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> TensorResult<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::DataShapeMismatch {
                data_len: data.len(),
                shape_len: shape.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a 1-D tensor by copying a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::vector(data.len()),
            data: data.to_vec(),
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![1.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::matrix(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of scalar elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at flat index `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= self.len()`.
    pub fn get(&self, i: usize) -> TensorResult<f32> {
        self.data
            .get(i)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: i,
                len: self.data.len(),
            })
    }

    /// Sets the element at flat index `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: f32) -> TensorResult<()> {
        let len = self.data.len();
        match self.data.get_mut(i) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds { index: i, len }),
        }
    }

    /// Returns element `(row, col)` of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non rank-2 tensors and
    /// [`TensorError::IndexOutOfBounds`] for out-of-range indices.
    pub fn at(&self, row: usize, col: usize) -> TensorResult<f32> {
        let (rows, cols) = self.matrix_dims()?;
        if row >= rows || col >= cols {
            return Err(TensorError::IndexOutOfBounds {
                index: row * cols + col,
                len: self.data.len(),
            });
        }
        Ok(self.data[row * cols + col])
    }

    /// Reinterprets the tensor with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> TensorResult<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Returns a flattened (rank-1) view of this tensor as a new tensor.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::vector(self.data.len()),
        }
    }

    /// Interprets the tensor as a matrix and returns `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank 2.
    pub fn matrix_dims(&self) -> TensorResult<(usize, usize)> {
        match (self.shape.rows(), self.shape.cols()) {
            (Some(r), Some(c)) => Ok((r, c)),
            _ => Err(TensorError::NotAMatrix {
                rank: self.shape.rank(),
            }),
        }
    }

    /// Iterates over the scalar elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Approximate number of bytes occupied by the tensor payload.
    ///
    /// Used by the simulated network fabric to charge bandwidth costs, mirroring
    /// the serialized-tensor sizes the paper reports in Table 1.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Returns `true` when every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 8;
        write!(f, "Tensor{}[", self.shape)?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(data: Vec<f32>) -> Self {
        Tensor {
            shape: Shape::vector(data.len()),
            data,
        }
    }
}

impl From<&[f32]> for Tensor {
    fn from(data: &[f32]) -> Self {
        Tensor::from_slice(data)
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor::from(data)
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], Shape::matrix(1, 2)).is_ok());
        let err = Tensor::from_vec(vec![1.0, 2.0], Shape::matrix(2, 2)).unwrap_err();
        assert_eq!(
            err,
            TensorError::DataShapeMismatch {
                data_len: 2,
                shape_len: 4
            }
        );
    }

    #[test]
    fn zeros_ones_full_eye() {
        assert!(Tensor::zeros(3usize).iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(3usize).iter().all(|&v| v == 1.0));
        assert!(Tensor::full(4usize, 2.5).iter().all(|&v| v == 2.5));
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(0, 0).unwrap(), 1.0);
        assert_eq!(eye.at(0, 1).unwrap(), 0.0);
        assert_eq!(eye.at(2, 2).unwrap(), 1.0);
    }

    #[test]
    fn get_set_bounds_checked() {
        let mut t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(t.get(1).unwrap(), 2.0);
        t.set(1, 9.0).unwrap();
        assert_eq!(t.get(1).unwrap(), 9.0);
        assert!(t.get(3).is_err());
        assert!(t.set(3, 0.0).is_err());
    }

    #[test]
    fn reshape_preserves_data_and_checks_len() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let m = t.reshape((2usize, 2usize)).unwrap();
        assert_eq!(m.at(1, 0).unwrap(), 3.0);
        assert!(t.reshape(3usize).is_err());
    }

    #[test]
    fn flatten_keeps_elements() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2)).unwrap();
        let v = m.flatten();
        assert_eq!(v.shape().rank(), 1);
        assert_eq!(v.data(), m.data());
    }

    #[test]
    fn matrix_dims_errors_on_vectors() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(
            v.matrix_dims().unwrap_err(),
            TensorError::NotAMatrix { rank: 1 }
        );
    }

    #[test]
    fn size_bytes_counts_f32() {
        assert_eq!(Tensor::zeros(10usize).size_bytes(), 40);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Tensor::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Tensor::from_slice(&[1.0, f32::NAN]).is_finite());
        assert!(!Tensor::from_slice(&[f32::INFINITY]).is_finite());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(100usize);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn clone_preserves_equality() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2)).unwrap();
        let back = t.clone();
        assert_eq!(back, t);
    }
}
