//! Borrowed, zero-copy views over gradient storage.
//!
//! The aggregation hot path used to materialise one [`Tensor`] per candidate
//! gradient — a full `Vec<f32>` clone of every wire payload before the GAR
//! even looked at it. A [`GradientView`] is the zero-copy alternative: a flat
//! `&[f32]` borrowed straight from wherever the values already live (a decoded
//! wire payload, a tensor's storage, a pooled scratch buffer). GARs score and
//! select over views and copy *only* the winning data into their output.

use crate::{Shape, Tensor};

/// A borrowed flat `f32` vector: the zero-copy currency of the GAR engine.
///
/// Views are `Copy` — passing them around moves two words, never data. The
/// underlying slice is row-major flattened storage; aggregation rules treat
/// every input as a flat vector regardless of the tensor shape it came from
/// (the paper aggregates gradients and models alike).
///
/// ```rust
/// use garfield_tensor::{GradientView, Tensor};
/// let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
/// let v = GradientView::from(&t);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.data(), t.data()); // same memory, no copy
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientView<'a> {
    data: &'a [f32],
}

impl<'a> GradientView<'a> {
    /// Wraps a flat slice of values.
    pub fn new(data: &'a [f32]) -> Self {
        GradientView { data }
    }

    /// The borrowed values.
    pub fn data(self) -> &'a [f32] {
        self.data
    }

    /// Number of scalar elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.data.len()
    }

    /// Whether the view holds no elements.
    pub fn is_empty(self) -> bool {
        self.data.is_empty()
    }

    /// Materialises the view into an owned flat [`Tensor`] — the *single*
    /// copy a zero-copy aggregation performs, at the very end.
    pub fn to_tensor(self) -> Tensor {
        Tensor::from_slice(self.data)
    }

    /// Materialises the view with an explicit shape (element counts must match).
    pub fn to_tensor_shaped(self, shape: Shape) -> Option<Tensor> {
        Tensor::from_vec(self.data.to_vec(), shape).ok()
    }

    /// Returns `true` when every element is finite (no NaN / infinity).
    pub fn is_finite(self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl<'a> From<&'a Tensor> for GradientView<'a> {
    fn from(t: &'a Tensor) -> Self {
        GradientView { data: t.data() }
    }
}

impl<'a> From<&'a [f32]> for GradientView<'a> {
    fn from(data: &'a [f32]) -> Self {
        GradientView { data }
    }
}

impl<'a> From<&'a Vec<f32>> for GradientView<'a> {
    fn from(data: &'a Vec<f32>) -> Self {
        GradientView { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_memory_with_their_source() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        let v = GradientView::from(&t);
        assert_eq!(v.data().as_ptr(), t.data().as_ptr());
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn to_tensor_copies_once_and_preserves_values() {
        let data = vec![3.0f32, -1.0, 0.5];
        let v = GradientView::from(&data);
        let t = v.to_tensor();
        assert_eq!(t.data(), &data[..]);
        assert_ne!(t.data().as_ptr(), data.as_ptr());
    }

    #[test]
    fn shaped_materialisation_checks_element_count() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0];
        let v = GradientView::new(&data);
        assert!(v.to_tensor_shaped(Shape::matrix(2, 2)).is_some());
        assert!(v.to_tensor_shaped(Shape::matrix(2, 3)).is_none());
    }

    #[test]
    fn finiteness_matches_tensor_semantics() {
        assert!(GradientView::new(&[1.0, 2.0]).is_finite());
        assert!(!GradientView::new(&[1.0, f32::NAN]).is_finite());
        assert!(!GradientView::new(&[f32::NEG_INFINITY]).is_finite());
    }
}
