//! Property-based tests for the tensor algebra.

use garfield_tensor::{cosine_similarity, l2_distance, Tensor};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0f32, 1..max_len)
}

fn same_len_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f32..100.0f32, n),
            prop::collection::vec(-100.0f32..100.0f32, n),
        )
    })
}

proptest! {
    #[test]
    fn addition_commutes(pair in same_len_pair(64)) {
        let (a, b) = pair;
        let ta = Tensor::from(a);
        let tb = Tensor::from(b);
        let ab = ta.try_add(&tb).unwrap();
        let ba = tb.try_add(&ta).unwrap();
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn subtraction_then_addition_round_trips(pair in same_len_pair(64)) {
        let (a, b) = pair;
        let ta = Tensor::from(a);
        let tb = Tensor::from(b);
        let back = ta.try_sub(&tb).unwrap().try_add(&tb).unwrap();
        for (x, y) in back.iter().zip(ta.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn scaling_scales_the_norm(v in finite_vec(64), k in -10.0f32..10.0f32) {
        let t = Tensor::from(v);
        let scaled = t.scale(k);
        prop_assert!((scaled.norm() - k.abs() * t.norm()).abs() < 1e-2 * (1.0 + t.norm()));
    }

    #[test]
    fn triangle_inequality_for_l2_distance(pair in same_len_pair(32), c in finite_vec(32)) {
        let (a, b) = pair;
        let n = a.len().min(c.len());
        let ta = Tensor::from(a[..n].to_vec());
        let tb = Tensor::from(b[..n].to_vec());
        let tc = Tensor::from(c[..n].to_vec());
        let direct = l2_distance(&ta, &tb);
        let via = l2_distance(&ta, &tc) + l2_distance(&tc, &tb);
        prop_assert!(direct <= via + 1e-2);
    }

    #[test]
    fn cosine_similarity_is_bounded(pair in same_len_pair(64)) {
        let (a, b) = pair;
        let cs = cosine_similarity(&Tensor::from(a), &Tensor::from(b));
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&cs));
    }

    #[test]
    fn mean_lies_between_min_and_max(v in finite_vec(64)) {
        let t = Tensor::from(v);
        prop_assert!(t.mean() >= t.min() - 1e-4);
        prop_assert!(t.mean() <= t.max() + 1e-4);
    }

    #[test]
    fn reshape_round_trip_preserves_data(v in finite_vec(64)) {
        let t = Tensor::from(v.clone());
        let n = v.len();
        let back = t.reshape((1usize, n)).unwrap().reshape(n).unwrap();
        prop_assert_eq!(back.data(), t.data());
    }

    #[test]
    fn transpose_is_an_involution(v in prop::collection::vec(-10.0f32..10.0, 6)) {
        let m = Tensor::from_vec(v, garfield_tensor::Shape::matrix(2, 3)).unwrap();
        let back = m.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-5.0f32..5.0, 4),
        b in prop::collection::vec(-5.0f32..5.0, 4),
        c in prop::collection::vec(-5.0f32..5.0, 4),
    ) {
        use garfield_tensor::Shape;
        let ma = Tensor::from_vec(a, Shape::matrix(2, 2)).unwrap();
        let mb = Tensor::from_vec(b, Shape::matrix(2, 2)).unwrap();
        let mc = Tensor::from_vec(c, Shape::matrix(2, 2)).unwrap();
        let lhs = ma.matmul(&mb.try_add(&mc).unwrap()).unwrap();
        let rhs = ma.matmul(&mb).unwrap().try_add(&ma.matmul(&mc).unwrap()).unwrap();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }
}
