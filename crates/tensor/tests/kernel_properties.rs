//! Property tests pinning the chunked distance kernels to their documented
//! accumulation order.
//!
//! The kernel contract is *not* "close to the naive sum" — it is an exact,
//! bit-level definition: element `k` accumulates into lane
//! `k % KERNEL_LANES`, lanes reduce with the fixed halving tree. These tests
//! pin the optimized `chunks_exact` implementation to an independently
//! written lane-ordered reference across every remainder length and across
//! NaN/±inf payloads, and pin blocked evaluation (what the aggregation
//! engine's cache-sized `d`-sweeps do) to one-shot evaluation.

use garfield_tensor::{
    accumulate_dot, accumulate_squared_l2, dot_slices, reduce_kernel_lanes,
    squared_l2_distance_slices, squared_norm_slices, KERNEL_LANES,
};
use proptest::prelude::*;

/// The kernel's definition, written the slow obvious way.
fn reference_squared_l2(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; KERNEL_LANES];
    for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let d = x - y;
        acc[k % KERNEL_LANES] += d * d;
    }
    reduce_kernel_lanes(acc)
}

fn reference_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; KERNEL_LANES];
    for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        acc[k % KERNEL_LANES] += x * y;
    }
    reduce_kernel_lanes(acc)
}

proptest! {
    /// Every length from empty through several chunks plus every possible
    /// remainder, random payloads including NaN/±inf: the optimized kernel
    /// must reproduce the lane-ordered reference bit for bit.
    #[test]
    fn chunked_squared_l2_is_bit_identical_to_lane_reference(
        len in 0usize..(4 * KERNEL_LANES + 3),
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = deterministic_pair(len, seed);
        prop_assert_eq!(
            squared_l2_distance_slices(&a, &b).to_bits(),
            reference_squared_l2(&a, &b).to_bits(),
            "len {}", len
        );
    }

    #[test]
    fn chunked_dot_is_bit_identical_to_lane_reference(
        len in 0usize..(4 * KERNEL_LANES + 3),
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = deterministic_pair(len, seed);
        prop_assert_eq!(
            dot_slices(&a, &b).to_bits(),
            reference_dot(&a, &b).to_bits(),
            "len {}", len
        );
        prop_assert_eq!(
            squared_norm_slices(&a).to_bits(),
            reference_dot(&a, &a).to_bits()
        );
    }

    /// Random payloads (non-finite values included) at a fixed multi-chunk
    /// length.
    #[test]
    fn chunked_kernels_match_reference_on_adversarial_payloads(
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = deterministic_pair(3 * KERNEL_LANES + 5, seed);
        prop_assert_eq!(
            squared_l2_distance_slices(&a, &b).to_bits(),
            reference_squared_l2(&a, &b).to_bits()
        );
        prop_assert_eq!(
            dot_slices(&a, &b).to_bits(),
            reference_dot(&a, &b).to_bits()
        );
    }

    /// Splitting the input into KERNEL_LANES-aligned blocks and folding each
    /// into a persistent lane array must be bit-identical to one whole-slice
    /// call — the property the engine's cache-blocked pairwise fill relies
    /// on (its block boundaries are always lane-aligned).
    #[test]
    fn lane_aligned_blocking_never_changes_the_bits(
        blocks in prop::collection::vec(1usize..5, 1..6),
        tail in 0usize..KERNEL_LANES,
        seed in 0u64..u64::MAX,
    ) {
        let cuts: Vec<usize> = blocks.iter().map(|b| b * KERNEL_LANES).collect();
        let len = cuts.iter().sum::<usize>() + tail;
        let (a, b) = deterministic_pair(len, seed);

        let mut acc_l2 = [0.0f32; KERNEL_LANES];
        let mut acc_dot = [0.0f32; KERNEL_LANES];
        let mut start = 0;
        for &c in &cuts {
            accumulate_squared_l2(&a[start..start + c], &b[start..start + c], &mut acc_l2);
            accumulate_dot(&a[start..start + c], &b[start..start + c], &mut acc_dot);
            start += c;
        }
        accumulate_squared_l2(&a[start..], &b[start..], &mut acc_l2);
        accumulate_dot(&a[start..], &b[start..], &mut acc_dot);

        prop_assert_eq!(
            reduce_kernel_lanes(acc_l2).to_bits(),
            squared_l2_distance_slices(&a, &b).to_bits()
        );
        prop_assert_eq!(
            reduce_kernel_lanes(acc_dot).to_bits(),
            dot_slices(&a, &b).to_bits()
        );
    }
}

/// Seeded payload with NaN/±inf sprinkled on seed-dependent coordinates, so
/// the exhaustive-length tests cover non-finite values too.
fn deterministic_pair(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut gen = |_k: usize| {
        let r = next();
        if r % 23 == 0 {
            match r % 3 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => f32::NEG_INFINITY,
            }
        } else {
            ((r % 100_000) as f32 - 50_000.0) / 7.0
        }
    };
    let a = (0..len).map(&mut gen).collect();
    let b = (0..len).map(&mut gen).collect();
    (a, b)
}
