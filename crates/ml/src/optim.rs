//! Optimizers applying aggregated gradients to model parameters.

use crate::{MlError, MlResult, Model};
use garfield_tensor::Tensor;

/// An optimizer that updates a [`Model`] in place from a flat gradient.
pub trait Optimizer: Send {
    /// Applies one update step with the given flat gradient.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterMismatch`] when the gradient length does
    /// not match the model's parameter count.
    fn step(&mut self, model: &mut dyn Model, gradient: &Tensor) -> MlResult<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain SGD with optional Polyak momentum and learning-rate decay.
///
/// ```rust
/// use garfield_ml::{Sgd, Optimizer};
/// let opt = Sgd::new(0.1).with_momentum(0.9).with_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    decay: f32,
    steps: u64,
    velocity: Option<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no momentum.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            decay: 0.0,
            steps: 0,
            velocity: None,
        }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets a multiplicative inverse-time learning-rate decay
    /// (`lr_t = lr / (1 + decay * t)`).
    pub fn with_decay(mut self, decay: f32) -> Self {
        self.decay = decay;
        self
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The accumulated momentum velocity, if any step has built one.
    pub fn velocity(&self) -> Option<&Tensor> {
        self.velocity.as_ref()
    }

    /// Restores the optimizer's mutable state (step count and velocity) from
    /// a checkpoint.
    ///
    /// The hyper-parameters (learning rate, momentum, decay) are *not*
    /// restored: they are derived from the experiment configuration when the
    /// optimizer is rebuilt, and a resumed run must use the same config. With
    /// the state restored, the next [`Sgd::step`] is bit-identical to the one
    /// the original optimizer would have taken.
    pub fn restore(&mut self, steps: u64, velocity: Option<Tensor>) {
        self.steps = steps;
        self.velocity = velocity;
    }

    fn effective_lr(&self) -> f32 {
        self.learning_rate / (1.0 + self.decay * self.steps as f32)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Model, gradient: &Tensor) -> MlResult<()> {
        let mut params = model.parameters();
        if gradient.len() != params.len() {
            return Err(MlError::ParameterMismatch {
                expected: params.len(),
                got: gradient.len(),
            });
        }
        let lr = self.effective_lr();
        let update = if self.momentum > 0.0 {
            let mut v = match self.velocity.take() {
                Some(v) if v.len() == gradient.len() => v,
                _ => Tensor::zeros(gradient.len()),
            };
            v.scale_inplace(self.momentum);
            v.axpy(1.0, gradient)
                .expect("velocity and gradient share length");
            self.velocity = Some(v.clone());
            v
        } else {
            gradient.clone()
        };
        params.axpy(-lr, &update).expect("length checked above");
        model.set_parameters(&params)?;
        self.steps += 1;
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, DatasetKind};
    use crate::model::Mlp;
    use garfield_tensor::TensorRng;

    #[test]
    fn sgd_moves_parameters_against_the_gradient() {
        let mut rng = TensorRng::seed_from(5);
        let mut model = Mlp::tiny(&mut rng);
        let before = model.parameters();
        let grad = Tensor::ones(model.num_parameters());
        let mut opt = Sgd::new(0.5);
        opt.step(&mut model, &grad).unwrap();
        let after = model.parameters();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn sgd_rejects_wrong_gradient_length() {
        let mut rng = TensorRng::seed_from(5);
        let mut model = Mlp::tiny(&mut rng);
        let mut opt = Sgd::new(0.1);
        assert!(opt.step(&mut model, &Tensor::zeros(3usize)).is_err());
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut rng = TensorRng::seed_from(5);
        let mut model = Mlp::tiny(&mut rng);
        let n = model.num_parameters();
        let before = model.parameters();
        let grad = Tensor::ones(n);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        opt.step(&mut model, &grad).unwrap();
        opt.step(&mut model, &grad).unwrap();
        // After two steps: first update 0.1, second 0.1 * (1 + 0.9) = 0.19.
        let after = model.parameters();
        let moved = before.data()[0] - after.data()[0];
        assert!((moved - 0.29).abs() < 1e-5, "moved {moved}");
    }

    #[test]
    fn decay_reduces_effective_learning_rate() {
        let opt = Sgd::new(1.0).with_decay(1.0);
        assert_eq!(opt.effective_lr(), 1.0);
        let mut opt2 = Sgd::new(1.0).with_decay(1.0);
        opt2.steps = 4;
        assert!((opt2.effective_lr() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn restored_optimizer_steps_bit_identically() {
        // Run 3 steps, checkpoint (steps + velocity), rebuild a fresh
        // optimizer from the same hyper-parameters, restore, run 2 more
        // steps on both: the parameter trajectories must agree bit for bit.
        let mut rng = TensorRng::seed_from(17);
        let mut model_a = Mlp::tiny(&mut rng);
        let mut model_b = model_a.clone();
        let n = model_a.num_parameters();
        let grads: Vec<Tensor> = (0..5)
            .map(|k| Tensor::full(n, 0.25 * (k as f32 + 1.0)))
            .collect();

        let mut opt_a = Sgd::new(0.1).with_momentum(0.9).with_decay(1e-3);
        for g in &grads[..3] {
            opt_a.step(&mut model_a, g).unwrap();
        }
        let steps = opt_a.steps();
        let velocity = opt_a.velocity().cloned();

        let mut opt_b = Sgd::new(0.1).with_momentum(0.9).with_decay(1e-3);
        model_b.set_parameters(&model_a.parameters()).unwrap();
        opt_b.restore(steps, velocity);

        for g in &grads[3..] {
            opt_a.step(&mut model_a, g).unwrap();
            opt_b.step(&mut model_b, g).unwrap();
        }
        let bits_a: Vec<u32> = model_a
            .parameters()
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let bits_b: Vec<u32> = model_b
            .parameters()
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits_a, bits_b);
        assert_eq!(opt_a.steps(), opt_b.steps());
    }

    #[test]
    fn sgd_trains_the_tiny_task() {
        let mut rng = TensorRng::seed_from(13);
        let ds = Dataset::synthetic(DatasetKind::Tiny, 128, &mut rng);
        let mut model = Mlp::tiny(&mut rng);
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        let eval = ds.full_batch().unwrap();
        let before = model.evaluate_accuracy(&eval);
        for step in 0..80 {
            let batch = ds.batch(step, 32).unwrap();
            let (_, grad) = model.gradient(&batch);
            opt.step(&mut model, &grad).unwrap();
        }
        let after = model.evaluate_accuracy(&eval);
        assert!(after > before.max(0.5), "accuracy {before} -> {after}");
    }
}
