//! # garfield-ml
//!
//! Machine-learning substrate for the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021).
//!
//! The paper trains image-classification models with TensorFlow / PyTorch;
//! this crate provides the equivalent pure-Rust pieces the distributed layer
//! needs:
//!
//! * dense layers, activations and a multi-layer perceptron [`Mlp`] with
//!   manual back-propagation (models exchange *flat parameter vectors*, which
//!   is all the Byzantine-resilient machinery ever sees);
//! * softmax cross-entropy and mean-squared-error losses;
//! * an [`Sgd`] optimizer with optional momentum;
//! * synthetic, seeded classification datasets standing in for MNIST and
//!   CIFAR-10 (see `DESIGN.md` for the substitution rationale), with IID and
//!   non-IID sharding across workers;
//! * the paper's Table 1 model zoo: parameter counts for throughput workloads
//!   plus small trainable models for convergence experiments.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_ml::{Dataset, DatasetKind, Mlp, Sgd, Model, Optimizer};
//! use garfield_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from(1);
//! let data = Dataset::synthetic(DatasetKind::MnistLike, 256, &mut rng);
//! let mut model = Mlp::mnist_cnn_lite(&mut rng);
//! let mut opt = Sgd::new(0.05);
//! let batch = data.batch(0, 32).unwrap();
//! let (loss, grad) = model.gradient(&batch);
//! opt.step(&mut model, &grad).unwrap();
//! assert!(loss > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod layers;
mod loss;
mod metrics;
mod model;
mod optim;
pub mod zoo;

pub use data::{Batch, Dataset, DatasetKind, Partition, ShardStrategy};
pub use layers::{Activation, DenseLayer};
pub use loss::{mse_loss, softmax, softmax_cross_entropy, LossKind};
pub use metrics::{accuracy, top1_accuracy};
pub use model::{LinearModel, MlError, MlResult, Mlp, Model, SyntheticWorkloadModel};
pub use optim::{Optimizer, Sgd};
pub use zoo::{paper_models, ModelSpec};
