//! Synthetic datasets and mini-batch sharding across workers.
//!
//! The paper evaluates on MNIST (28×28×1, 10 classes) and CIFAR-10
//! (32×32×3, 10 classes). Real image files are not available in this
//! environment, so [`Dataset::synthetic`] generates a seeded Gaussian-cluster
//! classification task with the same input dimensionality and class count:
//! each class has a random mean image and samples are that mean plus noise.
//! The task is learnable but not trivial, which is exactly what the paper's
//! convergence and attack experiments require (see `DESIGN.md` §1).

use crate::{MlError, MlResult};
use garfield_tensor::{Shape, Tensor, TensorRng};

/// The synthetic stand-ins for the paper's two datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DatasetKind {
    /// 28×28 single-channel images, 10 classes (MNIST-shaped).
    MnistLike,
    /// 32×32 three-channel images, 10 classes (CIFAR-10-shaped).
    CifarLike,
    /// A tiny 16-feature task used by fast unit tests.
    Tiny,
}

impl DatasetKind {
    /// Number of input features per sample.
    pub fn features(self) -> usize {
        match self {
            DatasetKind::MnistLike => 28 * 28,
            DatasetKind::CifarLike => 32 * 32 * 3,
            DatasetKind::Tiny => 16,
        }
    }

    /// Number of target classes.
    pub fn classes(self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::CifarLike => 10,
            DatasetKind::Tiny => 4,
        }
    }

    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "mnist-like",
            DatasetKind::CifarLike => "cifar-like",
            DatasetKind::Tiny => "tiny",
        }
    }
}

/// How a dataset is partitioned across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ShardStrategy {
    /// Samples are shuffled and dealt round-robin: every worker sees every class.
    Iid,
    /// Samples are sorted by label before dealing: workers see disjoint label
    /// subsets, the non-IID regime the decentralized application targets.
    ByLabel,
}

impl ShardStrategy {
    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardStrategy::Iid => "iid",
            ShardStrategy::ByLabel => "by-label",
        }
    }
}

impl std::fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ShardStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "iid" => Ok(ShardStrategy::Iid),
            "by-label" => Ok(ShardStrategy::ByLabel),
            other => Err(format!(
                "unknown shard strategy '{other}' (expected iid or by-label)"
            )),
        }
    }
}

/// A mini-batch: a `(batch, features)` input matrix plus integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Input matrix, one row per sample.
    pub inputs: Tensor,
    /// Class label of each row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// An in-memory labelled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    inputs: Vec<Vec<f32>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Generates a synthetic dataset of `samples` labelled points.
    ///
    /// Class means are sampled once from the provided RNG; every sample is its
    /// class mean plus Gaussian noise, so the task is linearly separable in
    /// expectation but individual gradients remain noisy (non-zero variance —
    /// the property the GAR variance conditions of §3.1 are about).
    pub fn synthetic(kind: DatasetKind, samples: usize, rng: &mut TensorRng) -> Self {
        let d = kind.features();
        let c = kind.classes();
        let noise = 0.6f32;
        let means: Vec<Vec<f32>> = (0..c).map(|_| rng.normal_tensor(d).into_vec()).collect();
        let mut inputs = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let label = i % c;
            let mut x = means[label].clone();
            for v in &mut x {
                *v += noise * rng.standard_normal();
            }
            inputs.push(x);
            labels.push(label);
        }
        // Shuffle so labels are not trivially ordered.
        let perm = rng.permutation(samples);
        let inputs = perm.iter().map(|&i| inputs[i].clone()).collect();
        let labels = perm.iter().map(|&i| labels[i]).collect();
        Dataset {
            kind,
            inputs,
            labels,
        }
    }

    /// Builds a dataset from explicit samples.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] if `inputs` and `labels` differ in
    /// length or any label is out of range for `kind`.
    pub fn from_samples(
        kind: DatasetKind,
        inputs: Vec<Vec<f32>>,
        labels: Vec<usize>,
    ) -> MlResult<Self> {
        if inputs.len() != labels.len() {
            return Err(MlError::InvalidData(format!(
                "{} inputs but {} labels",
                inputs.len(),
                labels.len()
            )));
        }
        if let Some(bad) = labels.iter().find(|&&l| l >= kind.classes()) {
            return Err(MlError::InvalidData(format!(
                "label {bad} out of range for {} classes",
                kind.classes()
            )));
        }
        if let Some(row) = inputs.iter().find(|r| r.len() != kind.features()) {
            return Err(MlError::InvalidData(format!(
                "sample has {} features, expected {}",
                row.len(),
                kind.features()
            )));
        }
        Ok(Dataset {
            kind,
            inputs,
            labels,
        })
    }

    /// The dataset kind.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts the `index`-th batch of size `batch_size` (wrapping around the
    /// end of the dataset, so every index is valid for non-empty datasets).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for an empty dataset or a zero batch size.
    pub fn batch(&self, index: usize, batch_size: usize) -> MlResult<Batch> {
        if self.is_empty() {
            return Err(MlError::InvalidData(
                "cannot draw a batch from an empty dataset".into(),
            ));
        }
        if batch_size == 0 {
            return Err(MlError::InvalidData("batch size must be positive".into()));
        }
        let d = self.kind.features();
        let mut data = Vec::with_capacity(batch_size * d);
        let mut labels = Vec::with_capacity(batch_size);
        let start = index.wrapping_mul(batch_size);
        for k in 0..batch_size {
            let i = (start + k) % self.len();
            data.extend_from_slice(&self.inputs[i]);
            labels.push(self.labels[i]);
        }
        let inputs = Tensor::from_vec(data, Shape::matrix(batch_size, d))
            .expect("batch construction uses consistent dimensions");
        Ok(Batch { inputs, labels })
    }

    /// A batch containing the entire dataset (used for accuracy evaluation and
    /// for the large-batch "true gradient" estimate of the variance tool).
    pub fn full_batch(&self) -> MlResult<Batch> {
        self.batch(0, self.len().max(1))
    }

    /// Splits the dataset into a head of `n` samples and a tail with the rest.
    ///
    /// Used to carve a held-out test set from one synthetic generation so that
    /// train and test share the same class structure.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] when `n` is zero or not smaller than the
    /// dataset size (both splits must be non-empty).
    pub fn split_at(&self, n: usize) -> MlResult<(Dataset, Dataset)> {
        if n == 0 || n >= self.len() {
            return Err(MlError::InvalidData(format!(
                "cannot split {} samples at {n}: both parts must be non-empty",
                self.len()
            )));
        }
        let head = Dataset {
            kind: self.kind,
            inputs: self.inputs[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        };
        let tail = Dataset {
            kind: self.kind,
            inputs: self.inputs[n..].to_vec(),
            labels: self.labels[n..].to_vec(),
        };
        Ok((head, tail))
    }

    /// Splits the dataset into `shards` worker partitions.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] when `shards` is zero or exceeds the
    /// number of samples.
    pub fn shard(&self, shards: usize, strategy: ShardStrategy) -> MlResult<Vec<Partition>> {
        if shards == 0 {
            return Err(MlError::InvalidData(
                "cannot shard into zero partitions".into(),
            ));
        }
        if shards > self.len() {
            return Err(MlError::InvalidData(format!(
                "cannot shard {} samples into {shards} partitions",
                self.len()
            )));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        if strategy == ShardStrategy::ByLabel {
            order.sort_by_key(|&i| self.labels[i]);
        }
        let mut parts: Vec<(Vec<Vec<f32>>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); shards];
        match strategy {
            ShardStrategy::Iid => {
                for (pos, &i) in order.iter().enumerate() {
                    let p = pos % shards;
                    parts[p].0.push(self.inputs[i].clone());
                    parts[p].1.push(self.labels[i]);
                }
            }
            ShardStrategy::ByLabel => {
                // Contiguous label-sorted ranges whose sizes differ by at most one,
                // so no shard is ever empty.
                for (pos, &i) in order.iter().enumerate() {
                    let p = (pos * shards / self.len()).min(shards - 1);
                    parts[p].0.push(self.inputs[i].clone());
                    parts[p].1.push(self.labels[i]);
                }
            }
        }
        Ok(parts
            .into_iter()
            .enumerate()
            .map(|(worker, (inputs, labels))| Partition {
                worker,
                data: Dataset {
                    kind: self.kind,
                    inputs,
                    labels,
                },
            })
            .collect())
    }
}

/// One worker's shard of a dataset.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Index of the worker owning this shard.
    pub worker: usize,
    /// The shard's local data.
    pub data: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(42)
    }

    #[test]
    fn synthetic_dataset_has_requested_size_and_shapes() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 100, &mut rng());
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.kind().features(), 16);
        let b = ds.batch(0, 10).unwrap();
        assert_eq!(b.len(), 10);
        assert_eq!(b.inputs.shape().dims(), &[10, 16]);
    }

    #[test]
    fn synthetic_dataset_is_reproducible() {
        let a = Dataset::synthetic(DatasetKind::Tiny, 50, &mut rng());
        let b = Dataset::synthetic(DatasetKind::Tiny, 50, &mut rng());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inputs[0], b.inputs[0]);
    }

    #[test]
    fn batches_wrap_around() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 10, &mut rng());
        let b = ds.batch(3, 8).unwrap();
        assert_eq!(b.len(), 8);
        // index far beyond the dataset still works (wraps modulo len)
        assert!(ds.batch(1000, 4).is_ok());
    }

    #[test]
    fn batch_errors_on_empty_or_zero() {
        let ds = Dataset::from_samples(DatasetKind::Tiny, vec![], vec![]).unwrap();
        assert!(ds.batch(0, 4).is_err());
        let ds2 = Dataset::synthetic(DatasetKind::Tiny, 4, &mut rng());
        assert!(ds2.batch(0, 0).is_err());
    }

    #[test]
    fn from_samples_validates() {
        let good = Dataset::from_samples(DatasetKind::Tiny, vec![vec![0.0; 16]], vec![1]);
        assert!(good.is_ok());
        assert!(Dataset::from_samples(DatasetKind::Tiny, vec![vec![0.0; 16]], vec![]).is_err());
        assert!(Dataset::from_samples(DatasetKind::Tiny, vec![vec![0.0; 16]], vec![9]).is_err());
        assert!(Dataset::from_samples(DatasetKind::Tiny, vec![vec![0.0; 3]], vec![0]).is_err());
    }

    #[test]
    fn iid_sharding_spreads_labels() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 200, &mut rng());
        let shards = ds.shard(4, ShardStrategy::Iid).unwrap();
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.data.len()).sum();
        assert_eq!(total, 200);
        for s in &shards {
            let mut seen = std::collections::HashSet::new();
            for &l in &s.data.labels {
                seen.insert(l);
            }
            assert_eq!(
                seen.len(),
                DatasetKind::Tiny.classes(),
                "IID shard should see all classes"
            );
        }
    }

    #[test]
    fn by_label_sharding_concentrates_labels() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 200, &mut rng());
        let shards = ds.shard(4, ShardStrategy::ByLabel).unwrap();
        // With 4 classes and 4 shards, each shard should be dominated by few labels.
        for s in &shards {
            let mut seen = std::collections::HashSet::new();
            for &l in &s.data.labels {
                seen.insert(l);
            }
            assert!(seen.len() <= 2, "non-IID shard saw {} labels", seen.len());
        }
    }

    #[test]
    fn shard_count_validation() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 10, &mut rng());
        assert!(ds.shard(0, ShardStrategy::Iid).is_err());
        assert!(ds.shard(11, ShardStrategy::Iid).is_err());
    }

    #[test]
    fn dataset_kind_dimensions_match_paper() {
        assert_eq!(DatasetKind::MnistLike.features(), 784);
        assert_eq!(DatasetKind::CifarLike.features(), 3072);
        assert_eq!(DatasetKind::MnistLike.classes(), 10);
        assert_eq!(DatasetKind::CifarLike.classes(), 10);
    }

    #[test]
    fn split_at_partitions_without_overlap() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 50, &mut rng());
        let (train, test) = ds.split_at(40).unwrap();
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
        assert_eq!(train.inputs[0], ds.inputs[0]);
        assert_eq!(test.inputs[0], ds.inputs[40]);
        assert!(ds.split_at(0).is_err());
        assert!(ds.split_at(50).is_err());
    }

    #[test]
    fn full_batch_covers_everything() {
        let ds = Dataset::synthetic(DatasetKind::Tiny, 33, &mut rng());
        let b = ds.full_batch().unwrap();
        assert_eq!(b.len(), 33);
    }
}
