//! Evaluation metrics.

use garfield_tensor::Tensor;

/// Top-1 accuracy: the fraction of logit rows whose argmax equals the label.
///
/// This is the paper's "accuracy" metric (§6.1). Returns 0.0 for empty input.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let Ok((rows, cols)) = logits.matrix_dims() else {
        return 0.0;
    };
    if rows == 0 || labels.is_empty() {
        return 0.0;
    }
    let n = rows.min(labels.len());
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate().take(n) {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

/// Alias for [`top1_accuracy`], matching the paper's terminology.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    top1_accuracy(logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::Shape;

    #[test]
    fn perfect_and_zero_accuracy() {
        let logits =
            Tensor::from_vec(vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0], Shape::matrix(2, 3)).unwrap();
        assert_eq!(top1_accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(top1_accuracy(&logits, &[2, 2]), 0.0);
        assert_eq!(top1_accuracy(&logits, &[0, 2]), 0.5);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(top1_accuracy(&Tensor::from_slice(&[1.0]), &[0]), 0.0);
        let logits = Tensor::zeros(Shape::matrix(1, 3));
        assert_eq!(top1_accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn ties_resolve_to_first_maximum() {
        let logits = Tensor::from_vec(vec![1.0, 1.0], Shape::matrix(1, 2)).unwrap();
        assert_eq!(top1_accuracy(&logits, &[0]), 1.0);
        assert_eq!(top1_accuracy(&logits, &[1]), 0.0);
    }
}
