//! Dense layers and activation functions with manual back-propagation.

use crate::{MlError, MlResult};
use garfield_tensor::{Initializer, Shape, Tensor, TensorRng};

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Activation {
    /// Identity (no non-linearity); used by the output layer.
    Linear,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Linear => x.clone(),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        }
    }

    /// Multiplies an upstream gradient by the activation derivative, evaluated
    /// at the *pre-activation* input `x`.
    pub fn backward(self, x: &Tensor, upstream: &Tensor) -> Tensor {
        let deriv = match self {
            Activation::Linear => return upstream.clone(),
            Activation::Relu => x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Tanh => x.map(|v| 1.0 - v.tanh() * v.tanh()),
            Activation::Sigmoid => x.map(|v| {
                let s = 1.0 / (1.0 + (-v).exp());
                s * (1.0 - s)
            }),
        };
        upstream
            .try_mul(&deriv)
            .expect("activation gradients share the layer shape")
    }
}

/// A fully connected layer `y = x W + b` followed by an [`Activation`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    input_dim: usize,
    output_dim: usize,
    activation: Activation,
    /// Weights, `(input_dim, output_dim)`.
    weights: Tensor,
    /// Bias, length `output_dim`.
    bias: Tensor,
}

/// Cached forward-pass values needed by the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// Layer input `(batch, input_dim)`.
    pub input: Tensor,
    /// Pre-activation output `(batch, output_dim)`.
    pub pre_activation: Tensor,
}

impl DenseLayer {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut TensorRng,
    ) -> Self {
        let weights = rng.tensor(
            Shape::matrix(input_dim, output_dim),
            Initializer::Xavier {
                fan_in: input_dim,
                fan_out: output_dim,
            },
        );
        let bias = Tensor::zeros(output_dim);
        DenseLayer {
            input_dim,
            output_dim,
            activation,
            weights,
            bias,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters (`weights + bias`).
    pub fn num_parameters(&self) -> usize {
        self.input_dim * self.output_dim + self.output_dim
    }

    /// Appends the layer parameters (weights then bias) to `out`.
    pub fn write_parameters(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(self.bias.data());
    }

    /// Reads the layer parameters back from a flat slice, returning how many
    /// values were consumed.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterMismatch`] if the slice is too short.
    pub fn read_parameters(&mut self, flat: &[f32]) -> MlResult<usize> {
        let need = self.num_parameters();
        if flat.len() < need {
            return Err(MlError::ParameterMismatch {
                expected: need,
                got: flat.len(),
            });
        }
        let w = self.input_dim * self.output_dim;
        self.weights = Tensor::from_vec(
            flat[..w].to_vec(),
            Shape::matrix(self.input_dim, self.output_dim),
        )
        .expect("length checked above");
        self.bias = Tensor::from(flat[w..need].to_vec());
        Ok(need)
    }

    /// Forward pass over a batch, returning the activated output and the cache
    /// required by [`DenseLayer::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterMismatch`] if the input's column count is
    /// not `input_dim`.
    pub fn forward(&self, input: &Tensor) -> MlResult<(Tensor, DenseCache)> {
        let (_, cols) = input
            .matrix_dims()
            .map_err(|_| MlError::InvalidData("dense layer input must be a matrix".into()))?;
        if cols != self.input_dim {
            return Err(MlError::ParameterMismatch {
                expected: self.input_dim,
                got: cols,
            });
        }
        let mut pre = input.matmul(&self.weights).expect("dimensions validated");
        // broadcast-add bias over rows
        let (rows, out_cols) = pre.matrix_dims().expect("matmul yields a matrix");
        for r in 0..rows {
            for c in 0..out_cols {
                let idx = r * out_cols + c;
                pre.data_mut()[idx] += self.bias.data()[c];
            }
        }
        let activated = self.activation.forward(&pre);
        Ok((
            activated,
            DenseCache {
                input: input.clone(),
                pre_activation: pre,
            },
        ))
    }

    /// Backward pass: given the gradient of the loss w.r.t. this layer's
    /// activated output, computes `(grad_weights, grad_bias, grad_input)`.
    pub fn backward(&self, cache: &DenseCache, upstream: &Tensor) -> (Tensor, Tensor, Tensor) {
        // d pre-activation
        let dpre = self.activation.backward(&cache.pre_activation, upstream);
        let grad_weights = cache
            .input
            .transpose()
            .expect("cache input is a matrix")
            .matmul(&dpre)
            .expect("dims agree by construction");
        let grad_bias = dpre.sum_rows().expect("dpre is a matrix");
        let grad_input = dpre
            .matmul(&self.weights.transpose().expect("weights are a matrix"))
            .expect("dims agree by construction");
        (grad_weights, grad_bias, grad_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_forward_values() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(Activation::Relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(Activation::Linear.forward(&x).data(), x.data());
        let s = Activation::Sigmoid.forward(&Tensor::from_slice(&[0.0]));
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        let t = Activation::Tanh.forward(&Tensor::from_slice(&[0.0]));
        assert!(t.data()[0].abs() < 1e-6);
    }

    #[test]
    fn relu_backward_masks_negative_inputs() {
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        let up = Tensor::from_slice(&[5.0, 5.0]);
        assert_eq!(Activation::Relu.backward(&x, &up).data(), &[0.0, 5.0]);
    }

    #[test]
    fn dense_layer_shapes_and_param_count() {
        let mut rng = TensorRng::seed_from(1);
        let layer = DenseLayer::new(4, 3, Activation::Relu, &mut rng);
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
        let x = Tensor::from_vec(vec![0.5; 8], Shape::matrix(2, 4)).unwrap();
        let (y, cache) = layer.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(cache.pre_activation.shape().dims(), &[2, 3]);
    }

    #[test]
    fn dense_layer_rejects_wrong_input_width() {
        let mut rng = TensorRng::seed_from(1);
        let layer = DenseLayer::new(4, 3, Activation::Relu, &mut rng);
        let x = Tensor::from_vec(vec![0.5; 6], Shape::matrix(2, 3)).unwrap();
        assert!(layer.forward(&x).is_err());
    }

    #[test]
    fn parameter_round_trip() {
        let mut rng = TensorRng::seed_from(2);
        let layer = DenseLayer::new(5, 2, Activation::Tanh, &mut rng);
        let mut flat = Vec::new();
        layer.write_parameters(&mut flat);
        assert_eq!(flat.len(), layer.num_parameters());

        let mut other = DenseLayer::new(5, 2, Activation::Tanh, &mut rng);
        assert_ne!(other, layer);
        let consumed = other.read_parameters(&flat).unwrap();
        assert_eq!(consumed, flat.len());
        assert_eq!(other, layer);
        assert!(other.read_parameters(&flat[..3]).is_err());
    }

    #[test]
    fn numerical_gradient_check_linear_layer() {
        // For a Linear activation and a scalar loss L = sum(y), the analytic
        // gradient of the weights is X^T * ones.
        let mut rng = TensorRng::seed_from(3);
        let layer = DenseLayer::new(3, 2, Activation::Linear, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::matrix(2, 3)).unwrap();
        let (_, cache) = layer.forward(&x).unwrap();
        let upstream = Tensor::ones(Shape::matrix(2, 2));
        let (gw, gb, gx) = layer.backward(&cache, &upstream);
        // grad bias = column sums of upstream = [2, 2]
        assert_eq!(gb.data(), &[2.0, 2.0]);
        // grad weights = X^T * upstream
        let expected_gw = x.transpose().unwrap().matmul(&upstream).unwrap();
        assert_eq!(gw, expected_gw);
        assert_eq!(gx.shape().dims(), &[2, 3]);
    }
}
