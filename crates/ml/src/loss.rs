//! Loss functions: softmax cross-entropy and mean squared error.

use garfield_tensor::Tensor;

/// Which loss a model trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LossKind {
    /// Softmax + cross-entropy, the classification loss used by every paper experiment.
    CrossEntropy,
    /// Mean squared error (used by a few unit tests and the regression example).
    MeanSquaredError,
}

/// Row-wise softmax of a `(batch, classes)` logit matrix.
///
/// Numerically stabilised by subtracting the per-row maximum.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (rows, cols) = logits
        .matrix_dims()
        .expect("softmax expects a (batch, classes) matrix");
    let mut out = logits.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(f32::MIN_POSITIVE);
        }
    }
    out
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits` already includes the
/// `1 / batch` factor so it can be back-propagated directly.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of logit rows, or a label
/// is out of range — these are programming errors in the caller.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (rows, cols) = logits
        .matrix_dims()
        .expect("cross entropy expects a (batch, classes) matrix");
    assert_eq!(rows, labels.len(), "one label per logit row is required");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < cols,
            "label {label} out of range for {cols} classes"
        );
        let p = probs.data()[r * cols + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[r * cols + label] -= 1.0;
    }
    let scale = 1.0 / rows as f32;
    grad.scale_inplace(scale);
    (loss * scale, grad)
}

/// Mean squared error between predictions and targets, plus its gradient with
/// respect to the predictions (including the `2 / n` factor).
///
/// # Panics
///
/// Panics if the two tensors differ in length.
pub fn mse_loss(predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mse requires equal-length tensors"
    );
    let n = predictions.len().max(1) as f32;
    let diff = predictions.try_sub(targets).expect("lengths checked");
    let loss = diff.data().iter().map(|&d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], Shape::matrix(2, 3)).unwrap();
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(p.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::matrix(1, 3)).unwrap();
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], Shape::matrix(1, 3)).unwrap();
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], Shape::matrix(1, 3)).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_ln_classes() {
        let logits = Tensor::zeros(Shape::matrix(1, 4));
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient for the true class is p - 1 = 0.25 - 1.
        assert!((grad.data()[2] - (0.25 - 1.0)).abs() < 1e-5);
        assert!((grad.data()[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let base = vec![0.3f32, -0.2, 0.5, 0.1, 0.9, -0.4];
        let labels = vec![2usize, 0];
        let logits = Tensor::from_vec(base.clone(), Shape::matrix(2, 3)).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(
                &Tensor::from_vec(plus, Shape::matrix(2, 3)).unwrap(),
                &labels,
            );
            let (lm, _) = softmax_cross_entropy(
                &Tensor::from_vec(minus, Shape::matrix(2, 3)).unwrap(),
                &labels,
            );
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-2,
                "index {i}: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse_loss(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
        let (zero_loss, zero_grad) = mse_loss(&pred, &pred);
        assert_eq!(zero_loss, 0.0);
        assert!(zero_grad.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "one label per logit row")]
    fn cross_entropy_panics_on_label_count_mismatch() {
        let logits = Tensor::zeros(Shape::matrix(2, 3));
        softmax_cross_entropy(&logits, &[0]);
    }
}
