//! The [`Model`] trait and its concrete implementations.
//!
//! A model is anything that can (1) expose its parameters as one flat
//! [`Tensor`], (2) accept a new flat parameter vector, and (3) compute a loss
//! and flat gradient on a mini-batch. The whole Byzantine-resilience stack —
//! GARs, servers, workers, attacks — operates only on those flat vectors,
//! mirroring how the paper's library wraps TensorFlow / PyTorch models.

use crate::data::Batch;
use crate::layers::{Activation, DenseLayer};
use crate::loss::softmax_cross_entropy;
use crate::DatasetKind;
use garfield_tensor::{Shape, Tensor, TensorRng};
use std::fmt;

/// Result alias for the ml crate.
pub type MlResult<T> = Result<T, MlError>;

/// Errors produced by models, datasets and optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// A flat parameter / gradient vector had the wrong length.
    ParameterMismatch {
        /// Expected number of scalars.
        expected: usize,
        /// Number of scalars received.
        got: usize,
    },
    /// Dataset or batch construction was given inconsistent data.
    InvalidData(String),
    /// An unknown model name was requested from the zoo.
    UnknownModel(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ParameterMismatch { expected, got } => {
                write!(
                    f,
                    "parameter vector length mismatch: expected {expected}, got {got}"
                )
            }
            MlError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            MlError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
        }
    }
}

impl std::error::Error for MlError {}

/// A trainable model operating on flat parameter vectors.
pub trait Model: Send {
    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize;

    /// The current parameters as one flat vector.
    fn parameters(&self) -> Tensor;

    /// Overwrites the parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterMismatch`] when the length is wrong.
    fn set_parameters(&mut self, params: &Tensor) -> MlResult<()>;

    /// Computes `(loss, flat_gradient)` on a mini-batch at the current parameters.
    fn gradient(&self, batch: &Batch) -> (f32, Tensor);

    /// Computes class logits for a batch of inputs (one row per sample).
    fn predict(&self, inputs: &Tensor) -> Tensor;

    /// Mean loss over a batch at the current parameters.
    fn loss(&self, batch: &Batch) -> f32 {
        self.gradient(batch).0
    }

    /// Top-1 accuracy over a batch at the current parameters.
    fn evaluate_accuracy(&self, batch: &Batch) -> f32 {
        crate::metrics::top1_accuracy(&self.predict(&batch.inputs), &batch.labels)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Clones the model into a boxed trait object.
    fn clone_boxed(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_boxed()
    }
}

/// A multinomial logistic-regression model (single dense layer + softmax).
#[derive(Debug, Clone)]
pub struct LinearModel {
    layer: DenseLayer,
    name: String,
}

impl LinearModel {
    /// Creates a linear classifier for the given dataset kind.
    pub fn new(kind: DatasetKind, rng: &mut TensorRng) -> Self {
        LinearModel {
            layer: DenseLayer::new(kind.features(), kind.classes(), Activation::Linear, rng),
            name: format!("linear-{}", kind.name()),
        }
    }

    /// Creates a linear classifier with explicit dimensions.
    pub fn with_dims(features: usize, classes: usize, rng: &mut TensorRng) -> Self {
        LinearModel {
            layer: DenseLayer::new(features, classes, Activation::Linear, rng),
            name: format!("linear-{features}x{classes}"),
        }
    }
}

impl Model for LinearModel {
    fn num_parameters(&self) -> usize {
        self.layer.num_parameters()
    }

    fn parameters(&self) -> Tensor {
        let mut flat = Vec::with_capacity(self.num_parameters());
        self.layer.write_parameters(&mut flat);
        Tensor::from(flat)
    }

    fn set_parameters(&mut self, params: &Tensor) -> MlResult<()> {
        if params.len() != self.num_parameters() {
            return Err(MlError::ParameterMismatch {
                expected: self.num_parameters(),
                got: params.len(),
            });
        }
        self.layer.read_parameters(params.data())?;
        Ok(())
    }

    fn gradient(&self, batch: &Batch) -> (f32, Tensor) {
        let (logits, cache) = self
            .layer
            .forward(&batch.inputs)
            .expect("batch inputs match the model's feature count");
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.labels);
        let (gw, gb, _) = self.layer.backward(&cache, &dlogits);
        let mut flat = Vec::with_capacity(self.num_parameters());
        flat.extend_from_slice(gw.data());
        flat.extend_from_slice(gb.data());
        (loss, Tensor::from(flat))
    }

    fn predict(&self, inputs: &Tensor) -> Tensor {
        self.layer
            .forward(inputs)
            .expect("inputs match feature count")
            .0
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// A multi-layer perceptron with ReLU hidden layers and a linear output layer.
///
/// The small trainable models standing in for the paper's MNIST CNN and
/// CifarNet are [`Mlp::mnist_cnn_lite`] and [`Mlp::cifarnet_lite`].
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    name: String,
}

impl Mlp {
    /// Builds an MLP with the given layer widths.
    ///
    /// `dims` must contain at least an input and an output width; hidden
    /// layers use ReLU and the final layer is linear (logits).
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn new(name: impl Into<String>, dims: &[usize], rng: &mut TensorRng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let activation = if i + 2 == dims.len() {
                Activation::Linear
            } else {
                Activation::Relu
            };
            layers.push(DenseLayer::new(dims[i], dims[i + 1], activation, rng));
        }
        Mlp {
            layers,
            name: name.into(),
        }
    }

    /// Small trainable stand-in for the paper's `MNIST_CNN` (Table 1).
    pub fn mnist_cnn_lite(rng: &mut TensorRng) -> Self {
        Mlp::new(
            "mnist-cnn-lite",
            &[DatasetKind::MnistLike.features(), 32, 10],
            rng,
        )
    }

    /// Small trainable stand-in for the paper's `CifarNet` (Table 1).
    pub fn cifarnet_lite(rng: &mut TensorRng) -> Self {
        Mlp::new(
            "cifarnet-lite",
            &[DatasetKind::CifarLike.features(), 48, 10],
            rng,
        )
    }

    /// Small trainable model for the `Tiny` dataset used by fast tests.
    pub fn tiny(rng: &mut TensorRng) -> Self {
        Mlp::new(
            "tiny-mlp",
            &[DatasetKind::Tiny.features(), 8, DatasetKind::Tiny.classes()],
            rng,
        )
    }

    /// The layer widths, input first.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.layers[0].input_dim()];
        dims.extend(self.layers.iter().map(|l| l.output_dim()));
        dims
    }
}

impl Model for Mlp {
    fn num_parameters(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_parameters).sum()
    }

    fn parameters(&self) -> Tensor {
        let mut flat = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            layer.write_parameters(&mut flat);
        }
        Tensor::from(flat)
    }

    fn set_parameters(&mut self, params: &Tensor) -> MlResult<()> {
        if params.len() != self.num_parameters() {
            return Err(MlError::ParameterMismatch {
                expected: self.num_parameters(),
                got: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_parameters(&params.data()[offset..])?;
        }
        Ok(())
    }

    fn gradient(&self, batch: &Batch) -> (f32, Tensor) {
        // Forward pass, caching every layer.
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut activ = batch.inputs.clone();
        for layer in &self.layers {
            let (out, cache) = layer
                .forward(&activ)
                .expect("batch inputs match the model's feature count");
            caches.push(cache);
            activ = out;
        }
        let (loss, mut upstream) = softmax_cross_entropy(&activ, &batch.labels);

        // Backward pass, collecting per-layer gradients in forward order.
        let mut grads: Vec<(Tensor, Tensor)> = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (gw, gb, gx) = layer.backward(cache, &upstream);
            grads.push((gw, gb));
            upstream = gx;
        }
        grads.reverse();

        let mut flat = Vec::with_capacity(self.num_parameters());
        for (gw, gb) in grads {
            flat.extend_from_slice(gw.data());
            flat.extend_from_slice(gb.data());
        }
        (loss, Tensor::from(flat))
    }

    fn predict(&self, inputs: &Tensor) -> Tensor {
        let mut activ = inputs.clone();
        for layer in &self.layers {
            activ = layer.forward(&activ).expect("inputs match feature count").0;
        }
        activ
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// A non-trainable model of a given parameter count, used as a pure
/// *throughput workload* for the paper's large architectures (ResNet-50/200,
/// VGG, Inception) whose full topology is irrelevant to the distributed-layer
/// measurements — only the parameter-vector dimension `d` matters there.
#[derive(Debug, Clone)]
pub struct SyntheticWorkloadModel {
    params: Tensor,
    name: String,
    classes: usize,
}

impl SyntheticWorkloadModel {
    /// Creates a workload model with `d` parameters.
    pub fn new(name: impl Into<String>, d: usize, rng: &mut TensorRng) -> Self {
        SyntheticWorkloadModel {
            params: rng.tensor(d, garfield_tensor::Initializer::Normal { std_dev: 0.01 }),
            name: name.into(),
            classes: 10,
        }
    }
}

impl Model for SyntheticWorkloadModel {
    fn num_parameters(&self) -> usize {
        self.params.len()
    }

    fn parameters(&self) -> Tensor {
        self.params.clone()
    }

    fn set_parameters(&mut self, params: &Tensor) -> MlResult<()> {
        if params.len() != self.params.len() {
            return Err(MlError::ParameterMismatch {
                expected: self.params.len(),
                got: params.len(),
            });
        }
        self.params = params.clone();
        Ok(())
    }

    fn gradient(&self, batch: &Batch) -> (f32, Tensor) {
        // A deterministic pseudo-gradient: scaled, sign-alternating copy of the
        // parameters perturbed by the batch contents. It exercises the exact
        // communication and aggregation paths without a real backward pass.
        let seed = batch.labels.iter().sum::<usize>() as f32 + 1.0;
        let grad = self.params.map(|v| 0.01 * v + 1e-4 * seed);
        (seed, grad)
    }

    fn predict(&self, inputs: &Tensor) -> Tensor {
        let rows = inputs.matrix_dims().map(|(r, _)| r).unwrap_or(1);
        Tensor::zeros(Shape::matrix(rows, self.classes))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, DatasetKind};

    fn tiny_setup() -> (Dataset, Mlp) {
        let mut rng = TensorRng::seed_from(7);
        let ds = Dataset::synthetic(DatasetKind::Tiny, 120, &mut rng);
        let model = Mlp::tiny(&mut rng);
        (ds, model)
    }

    #[test]
    fn parameter_round_trip_mlp() {
        let (_, mut model) = tiny_setup();
        let p = model.parameters();
        assert_eq!(p.len(), model.num_parameters());
        let doubled = p.scale(2.0);
        model.set_parameters(&doubled).unwrap();
        assert_eq!(model.parameters(), doubled);
        assert!(model.set_parameters(&Tensor::zeros(3usize)).is_err());
    }

    #[test]
    fn linear_model_param_count_matches_formula() {
        let mut rng = TensorRng::seed_from(1);
        let m = LinearModel::with_dims(20, 5, &mut rng);
        assert_eq!(m.num_parameters(), 20 * 5 + 5);
        assert_eq!(m.parameters().len(), 105);
    }

    #[test]
    fn mlp_gradient_has_parameter_length_and_finite_values() {
        let (ds, model) = tiny_setup();
        let batch = ds.batch(0, 16).unwrap();
        let (loss, grad) = model.gradient(&batch);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grad.len(), model.num_parameters());
        assert!(grad.is_finite());
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let (ds, mut model) = tiny_setup();
        let batch = ds.batch(0, 64).unwrap();
        let initial = model.loss(&batch);
        for _ in 0..30 {
            let (_, grad) = model.gradient(&batch);
            let mut p = model.parameters();
            p.axpy(-0.1, &grad).unwrap();
            model.set_parameters(&p).unwrap();
        }
        let after = model.loss(&batch);
        assert!(
            after < initial * 0.8,
            "loss did not decrease: {initial} -> {after}"
        );
    }

    #[test]
    fn training_improves_accuracy_above_chance() {
        let (ds, mut model) = tiny_setup();
        let eval = ds.full_batch().unwrap();
        for step in 0..60 {
            let batch = ds.batch(step, 32).unwrap();
            let (_, grad) = model.gradient(&batch);
            let mut p = model.parameters();
            p.axpy(-0.1, &grad).unwrap();
            model.set_parameters(&p).unwrap();
        }
        let acc = model.evaluate_accuracy(&eval);
        assert!(
            acc > 0.5,
            "accuracy after training should beat chance, got {acc}"
        );
    }

    #[test]
    fn mlp_gradient_matches_finite_differences_on_a_few_coordinates() {
        let mut rng = TensorRng::seed_from(11);
        let ds = Dataset::synthetic(DatasetKind::Tiny, 32, &mut rng);
        let model = Mlp::new("fd-check", &[16, 6, 4], &mut rng);
        let batch = ds.batch(0, 8).unwrap();
        let (_, grad) = model.gradient(&batch);
        let base = model.parameters();
        let eps = 1e-2f32;
        // Spot-check a handful of coordinates spread across the vector.
        for &i in &[0usize, 17, 49, base.len() - 1] {
            let mut plus = model.clone();
            let mut p = base.clone();
            p.data_mut()[i] += eps;
            plus.set_parameters(&p).unwrap();
            let mut minus = model.clone();
            let mut m = base.clone();
            m.data_mut()[i] -= eps;
            minus.set_parameters(&m).unwrap();
            let numeric = (plus.loss(&batch) - minus.loss(&batch)) / (2.0 * eps);
            let analytic = grad.data()[i];
            assert!(
                (numeric - analytic).abs() < 0.05 + 0.1 * analytic.abs(),
                "coordinate {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn synthetic_workload_model_has_exact_dimension() {
        let mut rng = TensorRng::seed_from(3);
        let m = SyntheticWorkloadModel::new("resnet-ish", 1000, &mut rng);
        assert_eq!(m.num_parameters(), 1000);
        let batch = Dataset::synthetic(DatasetKind::Tiny, 8, &mut rng)
            .batch(0, 4)
            .unwrap();
        let (_, g) = m.gradient(&batch);
        assert_eq!(g.len(), 1000);
    }

    #[test]
    fn boxed_model_clone_is_independent() {
        let (_, model) = tiny_setup();
        let boxed: Box<dyn Model> = Box::new(model);
        let mut copy = boxed.clone();
        let zero = Tensor::zeros(copy.num_parameters());
        copy.set_parameters(&zero).unwrap();
        assert_ne!(boxed.parameters(), copy.parameters());
    }
}
