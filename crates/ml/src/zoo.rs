//! The model zoo: the paper's Table 1 architectures plus small trainable models.
//!
//! The paper evaluates throughput with six architectures ranging from a small
//! MNIST CNN (79 510 parameters) to VGG (128 807 306 parameters). For the
//! distributed-layer experiments only the flat parameter-vector dimension `d`
//! matters, so each entry is exposed both as a [`ModelSpec`] (exact paper
//! parameter count, for workload generation) and — for the two smallest — as a
//! trainable model for convergence experiments.

use crate::model::{Mlp, Model, SyntheticWorkloadModel};
use crate::{DatasetKind, MlError, MlResult};
use garfield_tensor::TensorRng;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelSpec {
    /// Model name as reported in the paper.
    pub name: &'static str,
    /// Exact number of trainable parameters reported in Table 1.
    pub parameters: usize,
    /// Serialized size in megabytes reported in Table 1.
    pub size_mb: f64,
}

impl ModelSpec {
    /// Serialized size in bytes (4 bytes per `f32` parameter).
    pub fn size_bytes(&self) -> usize {
        self.parameters * 4
    }
}

/// The six models of Table 1, in the paper's order.
pub fn paper_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "MNIST_CNN",
            parameters: 79_510,
            size_mb: 0.3,
        },
        ModelSpec {
            name: "CifarNet",
            parameters: 1_756_426,
            size_mb: 6.7,
        },
        ModelSpec {
            name: "Inception",
            parameters: 5_602_874,
            size_mb: 21.4,
        },
        ModelSpec {
            name: "ResNet-50",
            parameters: 23_539_850,
            size_mb: 89.8,
        },
        ModelSpec {
            name: "ResNet-200",
            parameters: 62_697_610,
            size_mb: 239.2,
        },
        ModelSpec {
            name: "VGG",
            parameters: 128_807_306,
            size_mb: 491.4,
        },
    ]
}

/// The model used by the appendix PyTorch experiments, which swaps ResNet-200
/// for ResNet-152.
pub fn resnet152_spec() -> ModelSpec {
    ModelSpec {
        name: "ResNet-152",
        parameters: 60_192_808,
        size_mb: 229.6,
    }
}

/// Looks up a Table 1 model by (case-insensitive) name.
///
/// # Errors
///
/// Returns [`MlError::UnknownModel`] if the name is not in Table 1.
pub fn spec_by_name(name: &str) -> MlResult<ModelSpec> {
    paper_models()
        .into_iter()
        .chain(std::iter::once(resnet152_spec()))
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| MlError::UnknownModel(name.to_string()))
}

/// Builds a non-trainable throughput workload with the exact parameter count
/// of the named Table 1 model, optionally scaled down by `scale_divisor` to
/// keep simulation memory reasonable (the scaling is recorded by the caller).
///
/// # Errors
///
/// Returns [`MlError::UnknownModel`] for unknown names and
/// [`MlError::InvalidData`] for a zero divisor.
pub fn workload_model(
    name: &str,
    scale_divisor: usize,
    rng: &mut TensorRng,
) -> MlResult<SyntheticWorkloadModel> {
    if scale_divisor == 0 {
        return Err(MlError::InvalidData(
            "scale divisor must be positive".into(),
        ));
    }
    let spec = spec_by_name(name)?;
    let d = (spec.parameters / scale_divisor).max(1);
    Ok(SyntheticWorkloadModel::new(spec.name, d, rng))
}

/// Builds a small *trainable* model by name for convergence experiments.
///
/// Supported names: `mnist-cnn-lite`, `cifarnet-lite`, `tiny`,
/// `linear-mnist`, `linear-cifar`.
///
/// # Errors
///
/// Returns [`MlError::UnknownModel`] for unsupported names.
pub fn trainable_model(name: &str, rng: &mut TensorRng) -> MlResult<Box<dyn Model>> {
    let boxed: Box<dyn Model> = match name.to_ascii_lowercase().as_str() {
        "mnist-cnn-lite" | "mnist_cnn" => Box::new(Mlp::mnist_cnn_lite(rng)),
        "cifarnet-lite" | "cifarnet" => Box::new(Mlp::cifarnet_lite(rng)),
        "tiny" => Box::new(Mlp::tiny(rng)),
        "linear-mnist" => Box::new(crate::model::LinearModel::new(DatasetKind::MnistLike, rng)),
        "linear-cifar" => Box::new(crate::model::LinearModel::new(DatasetKind::CifarLike, rng)),
        other => return Err(MlError::UnknownModel(other.to_string())),
    };
    Ok(boxed)
}

/// The dataset a trainable model expects.
///
/// # Errors
///
/// Returns [`MlError::UnknownModel`] for unsupported names.
pub fn dataset_for(name: &str) -> MlResult<DatasetKind> {
    match name.to_ascii_lowercase().as_str() {
        "mnist-cnn-lite" | "mnist_cnn" | "linear-mnist" => Ok(DatasetKind::MnistLike),
        "cifarnet-lite" | "cifarnet" | "linear-cifar" => Ok(DatasetKind::CifarLike),
        "tiny" => Ok(DatasetKind::Tiny),
        other => Err(MlError::UnknownModel(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_exactly() {
        let models = paper_models();
        assert_eq!(models.len(), 6);
        assert_eq!(models[0].name, "MNIST_CNN");
        assert_eq!(models[0].parameters, 79_510);
        assert_eq!(models[3].name, "ResNet-50");
        assert_eq!(models[3].parameters, 23_539_850);
        assert_eq!(models[5].name, "VGG");
        assert_eq!(models[5].parameters, 128_807_306);
        // Sizes are within rounding of 4 bytes/parameter.
        for m in &models {
            let mb = m.size_bytes() as f64 / 1_048_576.0;
            assert!(
                (mb - m.size_mb).abs() / m.size_mb < 0.05,
                "{}: {mb} vs {}",
                m.name,
                m.size_mb
            );
        }
    }

    #[test]
    fn spec_lookup_is_case_insensitive() {
        assert_eq!(spec_by_name("vgg").unwrap().parameters, 128_807_306);
        assert_eq!(spec_by_name("resnet-152").unwrap().name, "ResNet-152");
        assert!(spec_by_name("alexnet").is_err());
    }

    #[test]
    fn workload_model_scales_dimension() {
        let mut rng = TensorRng::seed_from(1);
        let full = workload_model("MNIST_CNN", 1, &mut rng).unwrap();
        assert_eq!(full.num_parameters(), 79_510);
        let scaled = workload_model("VGG", 1000, &mut rng).unwrap();
        assert_eq!(scaled.num_parameters(), 128_807);
        assert!(workload_model("VGG", 0, &mut rng).is_err());
    }

    #[test]
    fn trainable_models_build_and_have_consistent_dims() {
        let mut rng = TensorRng::seed_from(2);
        for name in [
            "mnist-cnn-lite",
            "cifarnet-lite",
            "tiny",
            "linear-mnist",
            "linear-cifar",
        ] {
            let m = trainable_model(name, &mut rng).unwrap();
            assert!(m.num_parameters() > 0, "{name}");
            let kind = dataset_for(name).unwrap();
            assert!(m.parameters().len() == m.num_parameters());
            assert!(kind.features() > 0);
        }
        assert!(trainable_model("nope", &mut rng).is_err());
        assert!(dataset_for("nope").is_err());
    }
}
