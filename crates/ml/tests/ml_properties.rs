//! Property-based tests for the ML substrate.

use garfield_ml::{softmax, softmax_cross_entropy, Dataset, DatasetKind, Mlp, Model};
use garfield_tensor::{Shape, Tensor, TensorRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn softmax_rows_are_probability_distributions(
        rows in 1usize..5,
        cols in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let logits = rng.normal_tensor(Shape::matrix(rows, cols)).scale(3.0);
        let p = softmax(&logits);
        for r in 0..rows {
            let row = &p.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_loss_is_nonnegative(seed in 0u64..1000, label in 0usize..4) {
        let mut rng = TensorRng::seed_from(seed);
        let logits = rng.normal_tensor(Shape::matrix(1, 4));
        let (loss, grad) = softmax_cross_entropy(&logits, &[label]);
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (softmax probabilities minus one-hot).
        let sum: f32 = grad.data().iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    #[test]
    fn model_parameter_round_trip_is_identity(seed in 0u64..500) {
        let mut rng = TensorRng::seed_from(seed);
        let mut model = Mlp::tiny(&mut rng);
        let original = model.parameters();
        model.set_parameters(&original).unwrap();
        prop_assert_eq!(model.parameters(), original);
    }

    #[test]
    fn gradient_is_zero_only_if_loss_is_flat(seed in 0u64..200) {
        let mut rng = TensorRng::seed_from(seed);
        let ds = Dataset::synthetic(DatasetKind::Tiny, 32, &mut rng);
        let model = Mlp::tiny(&mut rng);
        let batch = ds.batch(0, 8).unwrap();
        let (loss, grad) = model.gradient(&batch);
        prop_assert!(loss.is_finite());
        prop_assert!(grad.is_finite());
        prop_assert_eq!(grad.len(), model.num_parameters());
    }

    #[test]
    fn sharding_partitions_all_samples_exactly_once(
        samples in 8usize..100,
        shards in 1usize..8,
        seed in 0u64..500,
    ) {
        prop_assume!(shards <= samples);
        let mut rng = TensorRng::seed_from(seed);
        let ds = Dataset::synthetic(DatasetKind::Tiny, samples, &mut rng);
        for strategy in [garfield_ml::ShardStrategy::Iid, garfield_ml::ShardStrategy::ByLabel] {
            let parts = ds.shard(shards, strategy).unwrap();
            let total: usize = parts.iter().map(|p| p.data.len()).sum();
            prop_assert_eq!(total, samples);
            prop_assert!(parts.iter().all(|p| !p.data.is_empty()));
        }
    }

    #[test]
    fn scaling_gradient_scales_update_linearly(seed in 0u64..200) {
        use garfield_ml::{Optimizer, Sgd};
        let mut rng = TensorRng::seed_from(seed);
        let model_a = Mlp::tiny(&mut rng);
        let mut model_b = model_a.clone();
        let mut model_c = model_a.clone();
        let grad = Tensor::ones(model_a.num_parameters());
        Sgd::new(0.1).step(&mut model_b, &grad).unwrap();
        Sgd::new(0.2).step(&mut model_c, &grad).unwrap();
        let da = model_a.parameters();
        let db = model_b.parameters();
        let dc = model_c.parameters();
        for i in 0..da.len() {
            let step_b = da.data()[i] - db.data()[i];
            let step_c = da.data()[i] - dc.data()[i];
            prop_assert!((step_c - 2.0 * step_b).abs() < 1e-5);
        }
    }
}
