//! Property tests for the live runtime's binary wire format.
//!
//! The format carries adversarial content by design (Byzantine nodes send
//! arbitrary vectors), so the properties cover bit-exact round-trips of
//! non-finite payloads and strict rejection of malformed buffers.

use garfield_net::{MsgKind, NetError, WireMessage, WIRE_HEADER_BYTES, WIRE_VERSION};
use proptest::prelude::*;

fn kind_from_selector(selector: u8) -> MsgKind {
    let kinds = MsgKind::all();
    kinds[selector as usize % kinds.len()]
}

/// Maps a selector to a "hostile" float: non-finite values, signed zeros and
/// denormals alongside ordinary magnitudes.
fn special_value(selector: u8, magnitude: f32) -> f32 {
    match selector % 8 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f32::MIN_POSITIVE / 2.0, // subnormal
        6 => magnitude,
        _ => -magnitude,
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_the_identity(
        kind_sel in 0u8..6,
        round in 0u64..u64::MAX,
        aux_sel in 0u8..8,
        selectors in prop::collection::vec(0u8..8, 0..48),
        magnitudes in prop::collection::vec(-1.0e30f32..1.0e30, 48),
    ) {
        let values: Vec<f32> = selectors
            .iter()
            .zip(&magnitudes)
            .map(|(&s, &m)| special_value(s, m))
            .collect();
        let msg = WireMessage::new(
            kind_from_selector(kind_sel),
            round,
            special_value(aux_sel, 123.456),
            values,
        );
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        let back = WireMessage::decode(&encoded).unwrap();
        prop_assert_eq!(back.kind, msg.kind);
        prop_assert_eq!(back.round, msg.round);
        // Bit-level comparison so NaN payloads count as preserved.
        prop_assert_eq!(back.aux.to_bits(), msg.aux.to_bits());
        prop_assert_eq!(bits(&back.values), bits(&msg.values));
    }

    #[test]
    fn any_truncation_is_rejected(
        kind_sel in 0u8..6,
        round in 0u64..1_000_000,
        values in prop::collection::vec(-1.0f32..1.0, 0..32),
        cut_seed in 0usize..10_000,
    ) {
        let msg = WireMessage::new(kind_from_selector(kind_sel), round, 0.5, values);
        let encoded = msg.encode();
        let cut = cut_seed % encoded.len(); // strictly shorter than the full buffer
        prop_assert_eq!(
            WireMessage::decode(&encoded[..cut]),
            Err(NetError::WireSize {
                expected: if cut < WIRE_HEADER_BYTES { WIRE_HEADER_BYTES } else { encoded.len() },
                actual: cut,
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected(
        values in prop::collection::vec(-1.0f32..1.0, 0..16),
        extra in prop::collection::vec(0u8..=255, 1..9),
    ) {
        let msg = WireMessage::new(MsgKind::ModelReply, 3, 0.0, values);
        let mut buf = msg.encode().to_vec();
        let expected = buf.len();
        buf.extend_from_slice(&extra);
        prop_assert_eq!(
            WireMessage::decode(&buf),
            Err(NetError::WireSize { expected, actual: buf.len() })
        );
    }

    #[test]
    fn wrong_version_and_unknown_kind_are_rejected(
        version in 0u8..=255,
        kind_byte in 0u8..=255,
        values in prop::collection::vec(-1.0f32..1.0, 0..8),
    ) {
        prop_assume!(version != WIRE_VERSION);
        prop_assume!(kind_byte as usize >= MsgKind::COUNT);
        let mut buf = WireMessage::new(MsgKind::GradientReply, 9, 0.0, values).encode().to_vec();
        buf[0] = version;
        prop_assert_eq!(WireMessage::decode(&buf), Err(NetError::WireVersion(version)));
        // The version check fires first; with a valid version an unknown kind fires.
        buf[0] = WIRE_VERSION;
        buf[1] = kind_byte;
        prop_assert_eq!(WireMessage::decode(&buf), Err(NetError::WireKind(kind_byte)));
    }

    #[test]
    fn announced_length_must_match_the_buffer(
        values in prop::collection::vec(-1.0f32..1.0, 0..16),
        bump in 1u32..1000,
    ) {
        // Corrupt the length prefix so the header announces a different
        // payload size than the buffer carries.
        let msg = WireMessage::new(MsgKind::GradientRequest, 1, 0.0, values);
        let mut buf = msg.encode().to_vec();
        let lied = msg.values.len() as u32 + bump;
        buf[44..48].copy_from_slice(&lied.to_le_bytes());
        prop_assert_eq!(
            WireMessage::decode(&buf),
            Err(NetError::WireSize {
                expected: WIRE_HEADER_BYTES + 4 * lied as usize,
                actual: buf.len(),
            })
        );
    }

    #[test]
    fn shard_tags_round_trip_bit_identically(
        kind_sel in 0u8..6,
        round in 0u64..u64::MAX,
        shard in 0u16..u16::MAX,
        offset in 0u32..u32::MAX / 2,
        selectors in prop::collection::vec(0u8..8, 1..48),
        magnitudes in prop::collection::vec(-1.0e30f32..1.0e30, 48),
    ) {
        let values: Vec<f32> = selectors
            .iter()
            .zip(&magnitudes)
            .map(|(&s, &m)| special_value(s, m))
            .collect();
        let len = values.len() as u32;
        let msg = WireMessage::new(kind_from_selector(kind_sel), round, 0.5, values)
            .with_shard(shard, offset, len);
        let back = WireMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back.shard, shard);
        prop_assert_eq!(back.coord_offset, offset);
        prop_assert_eq!(back.coord_len, len);
        prop_assert_eq!(bits(&back.values), bits(&msg.values));
    }

    #[test]
    fn shard_ranges_disagreeing_with_the_payload_are_rejected(
        values in prop::collection::vec(-1.0f32..1.0, 0..16),
        lied in 1u32..1000,
    ) {
        // A coord_len that is non-zero and differs from the payload length
        // must fail strictly (coord_len 0 marks an unsharded message).
        prop_assume!(lied as usize != values.len());
        let payload_len = values.len();
        let msg = WireMessage::new(MsgKind::GradientReply, 5, 0.0, values);
        let mut buf = msg.encode().to_vec();
        buf[20..24].copy_from_slice(&lied.to_le_bytes());
        prop_assert_eq!(
            WireMessage::decode(&buf),
            Err(NetError::WireShard {
                coord_offset: 0,
                coord_len: lied,
                payload_len,
            })
        );
    }

    #[test]
    fn stamping_trace_fields_never_perturbs_the_logical_message(
        kind_sel in 0u8..6,
        round in 0u64..u64::MAX,
        values in prop::collection::vec(-1.0e30f32..1.0e30, 0..32),
        origin in 0u32..u32::MAX,
        seq in 0u64..u64::MAX,
        sent in 0u64..u64::MAX,
    ) {
        let msg = WireMessage::new(kind_from_selector(kind_sel), round, 0.5, values);
        let mut buf = msg.encode_vec();
        garfield_net::stamp_trace(&mut buf, origin, seq, sent);
        let header = WireMessage::peek(&buf).unwrap();
        prop_assert_eq!(header.origin, origin);
        prop_assert_eq!(header.seq, seq);
        prop_assert_eq!(header.sent_unix_us, sent);
        let back = WireMessage::decode(&buf).unwrap();
        prop_assert_eq!(back.kind, msg.kind);
        prop_assert_eq!(back.round, msg.round);
        prop_assert_eq!(bits(&back.values), bits(&msg.values));
    }
}
