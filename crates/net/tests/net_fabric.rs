//! Integration tests of the network layer: the cost model's monotonicity,
//! the pull-round primitive under crashes, and exact message counts on the
//! real router when nodes go silent.

use bytes::Bytes;
use garfield_net::{Cluster, CostModel, Device, NodeId, PullRound, Router, SimClock};
use std::time::Duration;

/// Builds the reply schedule a server would see from a crashed-aware cluster:
/// worker `i` replies at `base + i * step` seconds, crashed workers never do.
fn replies_from(cluster: &Cluster, server: NodeId, base: f64, step: f64) -> PullRound {
    let workers = cluster.workers();
    let replies = workers
        .iter()
        .enumerate()
        .filter(|&(_, &w)| cluster.reachable(server, w))
        .map(|(i, &w)| (w, base + i as f64 * step))
        .collect();
    PullRound::new(replies)
}

#[test]
fn cost_model_times_are_monotone_in_count_dimension_and_fanout() {
    let m = CostModel::default();
    for device in [Device::Cpu, Device::Gpu] {
        // More vectors pulled never gets cheaper.
        let mut last = 0.0;
        for count in [1usize, 2, 4, 8, 16, 32] {
            let t = m.parallel_pull_time(1_000_000, count, device);
            assert!(t > last, "pull time must grow with count ({device})");
            last = t;
        }
        // Bigger vectors never move faster.
        assert!(
            m.vector_transfer_time(2_000_000, device) > m.vector_transfer_time(1_000_000, device)
        );
        // Serving more replicas never gets cheaper.
        let mut last = 0.0;
        for fanout in [1usize, 2, 4, 8] {
            let t = m.fanout_pull_time(1_000_000, 10, fanout, device);
            assert!(
                t > last,
                "fanout pull time must grow with fanout ({device})"
            );
            last = t;
        }
        // Gradient and aggregation costs grow with the model dimension.
        assert!(m.gradient_time(2_000_000, 32, device) > m.gradient_time(1_000_000, 32, device));
        assert!(
            m.aggregation_time(2_000_000, 10, 2, device)
                > m.aggregation_time(1_000_000, 10, 2, device)
        );
    }
}

#[test]
fn crashing_workers_never_speeds_up_a_pull_round() {
    let server = NodeId(0);
    let mut cluster = Cluster::builder()
        .servers(1, Device::Cpu)
        .workers(8, Device::Cpu)
        .build();
    let q = 5;

    let full = replies_from(&cluster, server, 0.1, 0.05);
    assert_eq!(full.len(), 8);
    let (_, t_full) = full.try_fastest(q).unwrap();

    // Crash the fastest workers one at a time; the q-th arrival can only get
    // later, because every crash removes a reply the quorum could have used.
    let workers = cluster.workers();
    let mut previous = t_full;
    for crash_count in 1..=3 {
        cluster.crash(workers[crash_count - 1]);
        let degraded = replies_from(&cluster, server, 0.1, 0.05);
        assert_eq!(
            degraded.len(),
            8 - crash_count,
            "crashed workers must not reply"
        );
        let (ids, t) = degraded.try_fastest(q).unwrap();
        assert_eq!(ids.len(), q);
        assert!(
            t >= previous,
            "with {crash_count} crashes the quorum arrived at {t}, earlier than {previous}"
        );
        previous = t;
    }

    // Below the liveness threshold the round must fail, not stall forever.
    for &w in &workers[3..7] {
        cluster.crash(w);
    }
    let starved = replies_from(&cluster, server, 0.1, 0.05);
    assert_eq!(starved.len(), 1);
    assert!(starved.try_fastest(q).is_err());

    // Recovery restores liveness.
    cluster.recover(workers[0]);
    cluster.recover(workers[1]);
    cluster.recover(workers[2]);
    cluster.recover(workers[3]);
    let healed = replies_from(&cluster, server, 0.1, 0.05);
    assert!(healed.try_fastest(q).is_ok());
}

#[test]
fn sim_clock_advances_to_the_quorum_arrival() {
    let round = PullRound::new(vec![(NodeId(1), 0.4), (NodeId(2), 0.2), (NodeId(3), 0.9)]);
    let mut clock = SimClock::new();
    let (_, arrival) = round.try_fastest(2).unwrap();
    clock.advance_to(arrival);
    assert_eq!(clock.now(), 0.4);
    // A later synchronous wait moves it further; an earlier one is a no-op.
    clock.advance_to(round.slowest_arrival());
    assert_eq!(clock.now(), 0.9);
    clock.advance_to(0.1);
    assert_eq!(clock.now(), 0.9);
}

#[test]
fn router_delivers_exactly_the_live_replies() {
    let router = Router::new();
    let server = router.register(NodeId(0)).unwrap();
    let n = 6;
    let crashed = [NodeId(3), NodeId(5)];
    let handles: Vec<_> = (1..=n)
        .map(|i| router.register(NodeId(i)).unwrap())
        .collect();
    for &id in &crashed {
        router.crash(id);
    }

    let threads: Vec<_> = handles
        .into_iter()
        .map(|h| {
            std::thread::spawn(move || h.send(NodeId(0), 7, Bytes::from(vec![h.id().0 as u8])))
        })
        .collect();
    let outcomes: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    // Crashed *senders* get an error; messages to a live server all succeed.
    assert_eq!(
        outcomes.iter().filter(|r| r.is_err()).count(),
        crashed.len()
    );

    // Ask for more replies than the live set can produce: the server gets
    // exactly n - crashed messages, not one more, and then times out.
    let replies = server.collect(7, n as usize, Duration::from_millis(200));
    assert_eq!(replies.len(), n as usize - crashed.len());
    for reply in &replies {
        assert!(
            !crashed.contains(&reply.from),
            "a crashed worker's message leaked through"
        );
    }
    assert!(server.recv_timeout(Duration::from_millis(20)).is_err());
}

#[test]
fn fastest_quorum_count_matches_the_request_and_never_overshoots() {
    for n in [3usize, 5, 9] {
        let round = PullRound::new((0..n).map(|i| (NodeId(i as u32), 1.0 + i as f64)).collect());
        for q in 1..=n {
            let (ids, t) = round.try_fastest(q).unwrap();
            assert_eq!(ids.len(), q, "asked for {q} of {n}");
            assert_eq!(t, q as f64, "the q-th arrival time is the quorum time");
        }
        assert!(round.try_fastest(n + 1).is_err());
    }
}
