//! A real in-process message router used to exercise the pull-based
//! communication pattern with actual concurrency.
//!
//! The simulated experiments use the [`crate::CostModel`]; this router exists
//! so the communication layer itself (point-to-point, pull-based, tolerant of
//! silent peers via timeouts) is implemented and tested for real, with
//! threads and channels standing in for gRPC endpoints.

use crate::{NetError, NetResult, NodeId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A routed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sender of the message.
    pub from: NodeId,
    /// Recipient of the message.
    pub to: NodeId,
    /// Application-defined tag (e.g. iteration number or request kind).
    pub tag: u64,
    /// Opaque payload (a serialized gradient or model in the real system).
    pub payload: Bytes,
}

#[derive(Default)]
struct Registry {
    inboxes: HashMap<NodeId, Sender<Envelope>>,
    crashed: HashMap<NodeId, bool>,
}

/// The shared router: a registry of per-node inboxes.
///
/// Cloning the router is cheap (it is an `Arc` underneath); each participant
/// calls [`Router::register`] once to obtain its [`RouterHandle`].
#[derive(Clone, Default)]
pub struct Router {
    registry: Arc<RwLock<Registry>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a node and returns its handle (inbox + send capability).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateNode`] when the id is already registered:
    /// silently replacing an inbox would leave the previous handle dead while
    /// its owner keeps waiting on it. A reconnecting node that *wants* to
    /// replace its endpoint must say so via [`Router::register_replace`].
    pub fn register(&self, id: NodeId) -> NetResult<RouterHandle> {
        let mut reg = self.registry.write();
        if reg.inboxes.contains_key(&id) {
            return Err(NetError::DuplicateNode(id));
        }
        Ok(Self::install(&mut reg, self.clone(), id))
    }

    /// Registers a node, replacing any previous registration of the same id.
    ///
    /// The replaced handle (if any) stops receiving messages immediately —
    /// this is the reconnect path, where the old endpoint is known dead and
    /// a fresh inbox must take over its identity.
    pub fn register_replace(&self, id: NodeId) -> RouterHandle {
        let mut reg = self.registry.write();
        Self::install(&mut reg, self.clone(), id)
    }

    fn install(reg: &mut Registry, router: Router, id: NodeId) -> RouterHandle {
        let (tx, rx) = unbounded();
        reg.inboxes.insert(id, tx);
        reg.crashed.insert(id, false);
        RouterHandle {
            id,
            router,
            inbox: rx,
        }
    }

    /// Marks a node as crashed: messages to it are silently dropped, so
    /// senders only notice through their own timeouts — exactly the failure
    /// mode the paper's `get_gradients(q < n)` is designed to ride out.
    pub fn crash(&self, id: NodeId) {
        self.registry.write().crashed.insert(id, true);
    }

    /// Recovers a crashed node (its inbox starts receiving again).
    pub fn recover(&self, id: NodeId) {
        self.registry.write().crashed.insert(id, false);
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.registry.read().inboxes.len()
    }

    /// Whether no node is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn send(&self, envelope: Envelope) -> NetResult<()> {
        let reg = self.registry.read();
        if reg.crashed.get(&envelope.from).copied().unwrap_or(false) {
            // A crashed sender produces nothing.
            return Err(NetError::Unreachable {
                from: envelope.from,
                to: envelope.to,
            });
        }
        match reg.inboxes.get(&envelope.to) {
            None => Err(NetError::UnknownNode(envelope.to)),
            Some(_) if reg.crashed.get(&envelope.to).copied().unwrap_or(false) => {
                // Silently dropped: Byzantine-tolerant callers rely on timeouts.
                Ok(())
            }
            Some(tx) => tx.send(envelope).map_err(|_| NetError::RouterClosed),
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("nodes", &self.len())
            .finish()
    }
}

/// A node's endpoint on the router.
#[derive(Debug)]
pub struct RouterHandle {
    id: NodeId,
    router: Router,
    inbox: Receiver<Envelope>,
}

impl RouterHandle {
    /// The node id this handle belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `payload` to `to` with the given `tag`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for unregistered recipients and
    /// [`NetError::Unreachable`] when this node has been crashed.
    pub fn send(&self, to: NodeId, tag: u64, payload: Bytes) -> NetResult<()> {
        self.router.send(Envelope {
            from: self.id,
            to,
            tag,
            payload,
        })
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when nothing arrives in time and
    /// [`NetError::RouterClosed`] when the router is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::RouterClosed,
        })
    }

    /// Receives messages until `expected` with the matching `tag` have arrived
    /// or `timeout` elapses, returning whatever was collected.
    ///
    /// This is the receive side of the paper's "fastest `q` replies" pull: the
    /// caller asks every peer, then gathers the first `expected` answers and
    /// moves on, leaving stragglers and crashed peers behind.
    pub fn collect(&self, tag: u64, expected: usize, timeout: Duration) -> Vec<Envelope> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::with_capacity(expected);
        while out.len() < expected {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(env) if env.tag == tag => out.push(env),
                Ok(_) => {} // stale message from a previous round: ignore
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        let b = router.register(NodeId(2)).unwrap();
        a.send(NodeId(2), 7, Bytes::from_static(b"hello")).unwrap();
        let msg = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(msg.from, NodeId(1));
        assert_eq!(msg.tag, 7);
        assert_eq!(&msg.payload[..], b"hello");
    }

    #[test]
    fn unknown_recipient_is_an_error_and_timeout_is_reported() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        assert!(matches!(
            a.send(NodeId(9), 0, Bytes::new()),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn crashed_recipient_silently_drops_messages() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        let b = router.register(NodeId(2)).unwrap();
        router.crash(NodeId(2));
        a.send(NodeId(2), 0, Bytes::from_static(b"x")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(20)).is_err());
        router.recover(NodeId(2));
        a.send(NodeId(2), 0, Bytes::from_static(b"y")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_millis(100)).unwrap().payload[..],
            b"y"
        );
    }

    #[test]
    fn crashed_sender_cannot_send() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        router.register(NodeId(2)).unwrap();
        router.crash(NodeId(1));
        assert!(matches!(
            a.send(NodeId(2), 0, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
    }

    #[test]
    fn pull_round_collects_fastest_replies_despite_a_silent_peer() {
        let router = Router::new();
        let server = router.register(NodeId(0)).unwrap();
        let worker_ids = [NodeId(1), NodeId(2), NodeId(3)];
        let handles: Vec<RouterHandle> = worker_ids
            .iter()
            .map(|&id| router.register(id).unwrap())
            .collect();
        router.crash(NodeId(3)); // one worker never replies

        // Server "requests" by tag; workers reply on their own threads.
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let _ = h.send(NodeId(0), 42, Bytes::from(vec![h.id().0 as u8]));
                })
            })
            .collect();
        let replies = server.collect(42, 2, Duration::from_millis(500));
        assert_eq!(
            replies.len(),
            2,
            "server should proceed with the fastest 2 of 3"
        );
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn collect_ignores_messages_from_other_rounds() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        let b = router.register(NodeId(2)).unwrap();
        a.send(NodeId(2), 1, Bytes::from_static(b"old")).unwrap();
        a.send(NodeId(2), 2, Bytes::from_static(b"new")).unwrap();
        let replies = b.collect(2, 1, Duration::from_millis(100));
        assert_eq!(replies.len(), 1);
        assert_eq!(&replies[0].payload[..], b"new");
    }

    #[test]
    fn double_registration_is_an_error_and_keeps_the_first_handle_alive() {
        let router = Router::new();
        let a = router.register(NodeId(1)).unwrap();
        let b = router.register(NodeId(2)).unwrap();
        assert_eq!(
            router.register(NodeId(1)).unwrap_err(),
            NetError::DuplicateNode(NodeId(1))
        );
        // The original handle still receives: no silent replacement happened.
        b.send(NodeId(1), 3, Bytes::from_static(b"still here"))
            .unwrap();
        assert_eq!(
            &a.recv_timeout(Duration::from_millis(100)).unwrap().payload[..],
            b"still here"
        );
        assert_eq!(router.len(), 2);
    }

    #[test]
    fn register_replace_redirects_traffic_to_the_new_handle() {
        let router = Router::new();
        let old = router.register(NodeId(1)).unwrap();
        let b = router.register(NodeId(2)).unwrap();
        let new = router.register_replace(NodeId(1)); // the reconnect path
        b.send(NodeId(1), 9, Bytes::from_static(b"reconnected"))
            .unwrap();
        assert_eq!(
            &new.recv_timeout(Duration::from_millis(100))
                .unwrap()
                .payload[..],
            b"reconnected"
        );
        // The replaced handle is dead: nothing ever reaches it again.
        assert!(old.recv_timeout(Duration::from_millis(20)).is_err());
        // Replacing also clears crash state, like a fresh registration.
        router.crash(NodeId(1));
        let _fresh = router.register_replace(NodeId(1));
        b.send(NodeId(1), 10, Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn router_is_cloneable_and_countable() {
        let router = Router::new();
        assert!(router.is_empty());
        let _a = router.register(NodeId(1)).unwrap();
        let clone = router.clone();
        let _b = clone.register(NodeId(2)).unwrap();
        assert_eq!(router.len(), 2);
        assert!(format!("{router:?}").contains("Router"));
    }
}
