//! The transport abstraction of the live runtime.
//!
//! PR 2 ran every replica on its own thread with messages moving through the
//! in-process [`Router`]; the multi-process deployment moves the same
//! [`WireMessage`](crate::WireMessage) bytes over TCP sockets
//! (`garfield-transport`). [`Transport`] is the seam between the two: the
//! actors in `garfield-runtime` are written against this trait only, so the
//! *protocol* (pull-based `get_gradients()` / `get_models()`, quorums,
//! deadlines, crash silence) is identical whether the peers are threads or
//! OS processes on real sockets.
//!
//! Semantics every implementation must provide:
//!
//! * **Point-to-point sends** that never block the caller indefinitely: a
//!   slow or dead peer may cause the message to be dropped, never a stall.
//! * **Deadline-respecting receives** ([`Transport::recv_timeout`]): the
//!   pull primitives ride out silent peers through timeouts, so a receive
//!   must return [`NetError::Timeout`](crate::NetError::Timeout) when the
//!   window closes.
//! * **Crash silence** ([`Transport::crash`]): a crashed endpoint stops
//!   emitting; peers only notice through their own quorums and timeouts
//!   (no error is propagated on their side).
//! * **Per-peer accounting** ([`Transport::peer_counters`]): on-wire message
//!   and byte counts per remote peer, surfaced in
//!   `RuntimeTelemetry`/`expfig runtime` so live-vs-sim reports cover TCP
//!   runs too.

use crate::{Envelope, NetResult, NodeId, Router, RouterHandle};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// On-wire traffic counters of one endpoint toward one remote peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerCounters {
    /// The remote peer these counters describe.
    pub peer: NodeId,
    /// Messages successfully handed to the wire toward `peer`.
    pub messages_sent: u64,
    /// Bytes put on the wire toward `peer` (frame headers included where the
    /// substrate frames; the in-process router counts payload bytes).
    pub bytes_sent: u64,
    /// Messages received from `peer`.
    pub messages_received: u64,
    /// Bytes received from `peer`.
    pub bytes_received: u64,
    /// Messages involving `peer` this endpoint dropped: outbound sends shed
    /// because the peer's bounded queue was full (the backpressure signature
    /// of a slow or dead peer), plus stale inbound envelopes from `peer`
    /// discarded when a rejoining endpoint replaced its inbox
    /// ([`Transport::rejoin`]) — every message lost at this endpoint is
    /// accounted for here rather than vanishing.
    pub messages_dropped: u64,
}

impl PeerCounters {
    /// Creates zeroed counters toward `peer`.
    pub fn new(peer: NodeId) -> Self {
        PeerCounters {
            peer,
            messages_sent: 0,
            bytes_sent: 0,
            messages_received: 0,
            bytes_received: 0,
            messages_dropped: 0,
        }
    }
}

/// The per-peer `garfield-obs` handles mirroring one [`PeerCounters`] entry
/// into the metrics registry. Handles are registered once per peer (cold
/// path, under the map lock) and bumped with relaxed atomics afterwards;
/// with observability disabled every bump is a load and a branch.
#[derive(Debug)]
struct PeerMetrics {
    messages_sent: garfield_obs::Counter,
    bytes_sent: garfield_obs::Counter,
    messages_received: garfield_obs::Counter,
    bytes_received: garfield_obs::Counter,
    messages_dropped: garfield_obs::Counter,
}

impl PeerMetrics {
    fn register(peer: NodeId) -> Self {
        let peer = peer.0.to_string();
        let labels: &[(&'static str, &str)] = &[("peer", peer.as_str())];
        PeerMetrics {
            messages_sent: garfield_obs::metrics::counter(
                "garfield_messages_sent_total",
                "Messages handed to the wire, by destination peer.",
                labels,
            ),
            bytes_sent: garfield_obs::metrics::counter(
                "garfield_wire_bytes_sent_total",
                "On-wire bytes sent, by destination peer.",
                labels,
            ),
            messages_received: garfield_obs::metrics::counter(
                "garfield_messages_received_total",
                "Messages received, by sending peer.",
                labels,
            ),
            bytes_received: garfield_obs::metrics::counter(
                "garfield_wire_bytes_received_total",
                "On-wire bytes received, by sending peer.",
                labels,
            ),
            messages_dropped: garfield_obs::metrics::counter(
                "garfield_messages_dropped_total",
                "Messages dropped at this endpoint (backpressure shed or stale \
                 rejoin inbox), by peer.",
                labels,
            ),
        }
    }
}

/// A thread-safe map of [`PeerCounters`], shared between the I/O threads of
/// a transport endpoint. Every record also feeds the process-wide
/// `garfield-obs` registry (`garfield_messages_*`/`garfield_wire_bytes_*`
/// families, labeled by peer) and, for drops, the flight recorder — so live
/// scrapes and post-mortem dumps see the same accounting `NodeTelemetry`
/// reports at the end of the run. In-process multi-node runs share one
/// registry, so the labeled series aggregate over all local endpoints.
#[derive(Debug, Default)]
pub struct PeerCounterMap {
    inner: Mutex<HashMap<NodeId, (PeerCounters, PeerMetrics)>>,
}

impl PeerCounterMap {
    /// Creates an empty counter map.
    pub fn new() -> Self {
        PeerCounterMap::default()
    }

    fn with(&self, peer: NodeId, f: impl FnOnce(&mut PeerCounters, &PeerMetrics)) {
        let mut map = self.inner.lock();
        let (counters, metrics) = map
            .entry(peer)
            .or_insert_with(|| (PeerCounters::new(peer), PeerMetrics::register(peer)));
        f(counters, metrics);
    }

    /// Records one message of `bytes` on-wire bytes sent to `peer`.
    pub fn record_send(&self, peer: NodeId, bytes: usize) {
        self.with(peer, |c, m| {
            c.messages_sent += 1;
            c.bytes_sent += bytes as u64;
            m.messages_sent.inc();
            m.bytes_sent.add(bytes as u64);
        });
    }

    /// Records one message of `bytes` on-wire bytes received from `peer`.
    pub fn record_recv(&self, peer: NodeId, bytes: usize) {
        self.with(peer, |c, m| {
            c.messages_received += 1;
            c.bytes_received += bytes as u64;
            m.messages_received.inc();
            m.bytes_received.add(bytes as u64);
        });
    }

    /// Records one message to `peer` dropped under backpressure, attributed
    /// to no particular round (see [`PeerCounterMap::record_drop_at`]).
    pub fn record_drop(&self, peer: NodeId) {
        self.record_drop_at(peer, 0);
    }

    /// Records one dropped message to `peer` carrying the envelope tag
    /// `round`, so the flight-recorder event lands on the round that shed it.
    pub fn record_drop_at(&self, peer: NodeId, round: u64) {
        self.with(peer, |c, m| {
            c.messages_dropped += 1;
            m.messages_dropped.inc();
        });
        garfield_obs::flight::record(
            garfield_obs::flight::EventKind::FrameDropped,
            round,
            Some(peer.0),
            0.0,
        );
    }

    /// A snapshot of every peer's counters, sorted by peer id.
    pub fn snapshot(&self) -> Vec<PeerCounters> {
        let mut out: Vec<PeerCounters> = self.inner.lock().values().map(|(c, _)| *c).collect();
        out.sort_by_key(|c| c.peer);
        out
    }
}

/// Records a `wire_send` flight event for a trace-stamped payload reaching
/// the wire toward `to`. Both transports call this at the point a frame is
/// actually written (router: the channel send; TCP: the socket write), so
/// the event stream reflects wire order, not queueing order.
///
/// With observability disabled this is one relaxed load; with it enabled the
/// payload header is peeked (never decoded) and unstamped or non-wire
/// payloads record nothing.
#[inline]
pub fn record_wire_send(to: NodeId, payload: &[u8]) {
    if !garfield_obs::enabled() {
        return;
    }
    if let Ok(header) = crate::WireMessage::peek(payload) {
        if header.sent_unix_us != 0 {
            garfield_obs::flight::record(
                garfield_obs::flight::EventKind::WireSend,
                header.round,
                Some(to.0),
                header.seq as f64,
            );
        }
    }
}

/// Records a `wire_recv` flight event for a trace-stamped payload arriving
/// from `from`, carrying the one-way delay (receiver clock minus the
/// sender's stamped send time) in milliseconds. On one machine — every
/// deployment the test rigs and `expfig trace` cover — both clocks are the
/// same clock, so the delta is a true one-way delay; across machines it
/// additionally absorbs clock offset, like any timestamp-based tracing.
#[inline]
pub fn record_wire_recv(from: NodeId, payload: &[u8]) {
    if !garfield_obs::enabled() {
        return;
    }
    let Ok(header) = crate::WireMessage::peek(payload) else {
        return;
    };
    if header.sent_unix_us == 0 {
        return; // never stamped: no send time to attribute a delay to
    }
    let delay_us = crate::wire::unix_micros().saturating_sub(header.sent_unix_us);
    garfield_obs::flight::record(
        garfield_obs::flight::EventKind::WireRecv,
        header.round,
        Some(from.0),
        delay_us as f64 / 1_000.0,
    );
}

/// One node's endpoint on some message substrate (threads or sockets).
pub trait Transport: Send {
    /// The node id this endpoint speaks as.
    fn local_id(&self) -> NodeId;

    /// Sends `payload` to `to` with the given `tag`, without ever blocking
    /// indefinitely on a slow peer.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown recipients or a crashed/closed local
    /// endpoint. A reachable-but-slow peer is *not* an error: the message
    /// may be dropped (counted in [`PeerCounters::messages_dropped`]) and
    /// the sender's quorum logic rides it out.
    fn send(&self, to: NodeId, tag: u64, payload: Bytes) -> NetResult<()>;

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`](crate::NetError::Timeout) when nothing
    /// arrives in time and a closed-endpoint error when the substrate is
    /// gone for good.
    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope>;

    /// Makes this endpoint go silent (Byzantine crash semantics): it stops
    /// emitting and delivering, and its peers notice only through timeouts.
    fn crash(&self);

    /// Rejoins the substrate after [`Transport::crash`] under the same id,
    /// as a *fresh incarnation*: envelopes stranded on the dead incarnation
    /// are dropped (and counted per sending peer in
    /// [`PeerCounters::messages_dropped`]), and only messages sent after the
    /// rejoin reach the endpoint again.
    ///
    /// # Errors
    ///
    /// The default is unsupported ([`NetError::Io`](crate::NetError::Io)):
    /// substrates whose endpoints live and die with their OS process (TCP)
    /// rejoin by *respawning* the process — `garfield-node --resume` — not
    /// in place.
    fn rejoin(&self) -> NetResult<()> {
        Err(crate::NetError::Io(
            "this transport cannot rejoin in place; restart the node process".into(),
        ))
    }

    /// Waits up to `timeout` for messages already accepted by
    /// [`Transport::send`] to actually reach the wire, so a subsequent
    /// [`Transport::peer_counters`] snapshot covers them. Substrates that
    /// deliver synchronously keep the no-op default.
    fn flush(&self, timeout: Duration) {
        let _ = timeout;
    }

    /// Per-peer on-wire counters accumulated so far, sorted by peer id.
    fn peer_counters(&self) -> Vec<PeerCounters>;
}

/// The in-process [`Transport`]: a [`RouterHandle`] plus per-peer counters.
///
/// This is PR 2's substrate behind the new trait — one registered endpoint
/// on a shared [`Router`], with channel sends standing in for sockets. The
/// "on-wire" byte counts are payload bytes, since the router moves envelopes
/// without framing.
///
/// The handle sits behind a mutex so [`Transport::rejoin`] can swap in a
/// fresh inbox (via [`Router::register_replace`]) without `&mut self`; a
/// transport endpoint is driven by a single actor thread, so the lock is
/// never contended.
#[derive(Debug)]
pub struct RouterTransport {
    id: NodeId,
    handle: Mutex<RouterHandle>,
    router: Router,
    counters: PeerCounterMap,
}

impl RouterTransport {
    /// Registers `id` on the router and returns its transport endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateNode`](crate::NetError::DuplicateNode)
    /// when the id is already registered.
    pub fn connect(router: &Router, id: NodeId) -> NetResult<Self> {
        Ok(RouterTransport {
            id,
            handle: Mutex::new(router.register(id)?),
            router: router.clone(),
            counters: PeerCounterMap::new(),
        })
    }
}

impl Transport for RouterTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn send(&self, to: NodeId, tag: u64, payload: Bytes) -> NetResult<()> {
        let bytes = payload.len();
        record_wire_send(to, &payload);
        self.handle.lock().send(to, tag, payload)?;
        self.counters.record_send(to, bytes);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        let envelope = self.handle.lock().recv_timeout(timeout)?;
        self.counters
            .record_recv(envelope.from, envelope.payload.len());
        record_wire_recv(envelope.from, &envelope.payload);
        Ok(envelope)
    }

    fn crash(&self) {
        self.router.crash(self.id);
    }

    fn rejoin(&self) -> NetResult<()> {
        let mut handle = self.handle.lock();
        // Envelopes stranded on the stale inbox were addressed to the dead
        // incarnation: they are dropped here, counted per sending peer, so
        // the accounting never loses a message silently. (While the endpoint
        // is crashed the router drops new sends on the sender side, so
        // nothing races this drain.)
        while let Ok(stale) = handle.recv_timeout(Duration::ZERO) {
            self.counters.record_drop(stale.from);
        }
        // A fresh inbox takes over the identity; replacing also clears the
        // router-side crash flag, like a node process coming back up.
        *handle = self.router.register_replace(self.id);
        Ok(())
    }

    fn peer_counters(&self) -> Vec<PeerCounters> {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetError;

    #[test]
    fn router_transport_sends_receives_and_counts_per_peer() {
        let router = Router::new();
        let a = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let b = RouterTransport::connect(&router, NodeId(2)).unwrap();
        assert_eq!(a.local_id(), NodeId(1));
        a.send(NodeId(2), 4, Bytes::from_static(b"abcde")).unwrap();
        let env = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(env.from, NodeId(1));
        assert_eq!(env.tag, 4);

        let sent = a.peer_counters();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].peer, NodeId(2));
        assert_eq!(sent[0].messages_sent, 1);
        assert_eq!(sent[0].bytes_sent, 5);
        let received = b.peer_counters();
        assert_eq!(received[0].peer, NodeId(1));
        assert_eq!(received[0].messages_received, 1);
        assert_eq!(received[0].bytes_received, 5);
    }

    #[test]
    fn duplicate_connect_is_rejected_and_crash_goes_silent() {
        let router = Router::new();
        let a = RouterTransport::connect(&router, NodeId(1)).unwrap();
        assert_eq!(
            RouterTransport::connect(&router, NodeId(1)).unwrap_err(),
            NetError::DuplicateNode(NodeId(1))
        );
        let b = RouterTransport::connect(&router, NodeId(2)).unwrap();
        a.crash();
        assert!(matches!(
            a.send(NodeId(2), 0, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
        // Messages toward a crashed endpoint vanish silently: the sender
        // only notices through its own timeout.
        b.send(NodeId(1), 0, Bytes::from_static(b"x")).unwrap();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn rejoin_drops_and_counts_stale_envelopes_then_receives_fresh_ones() {
        // The satellite claim for the rejoin path: envelopes queued on the
        // stale handle at the moment of `register_replace` are never
        // delivered to the new incarnation, and each one is counted as
        // dropped in the PeerCounters instead of vanishing silently.
        let router = Router::new();
        let a = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let b = RouterTransport::connect(&router, NodeId(2)).unwrap();
        let c = RouterTransport::connect(&router, NodeId(3)).unwrap();

        // Three envelopes land in a's inbox before it dies.
        b.send(NodeId(1), 0, Bytes::from_static(b"stale-b1"))
            .unwrap();
        b.send(NodeId(1), 0, Bytes::from_static(b"stale-b2"))
            .unwrap();
        c.send(NodeId(1), 0, Bytes::from_static(b"stale-c"))
            .unwrap();

        a.crash();
        // Sends toward the crashed endpoint vanish at the router (sender
        // side) — they are *not* part of the stale-inbox accounting.
        b.send(NodeId(1), 0, Bytes::from_static(b"while-dead"))
            .unwrap();
        a.rejoin().unwrap();

        // The new incarnation only sees traffic sent after the rejoin.
        b.send(NodeId(1), 7, Bytes::from_static(b"fresh")).unwrap();
        let env = a.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.tag, 7);
        assert_eq!(&env.payload[..], b"fresh");
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));

        // Every stale envelope is in the drop accounting, per sending peer.
        let counters = a.peer_counters();
        let from_b = counters.iter().find(|p| p.peer == NodeId(2)).unwrap();
        let from_c = counters.iter().find(|p| p.peer == NodeId(3)).unwrap();
        assert_eq!(from_b.messages_dropped, 2);
        assert_eq!(from_c.messages_dropped, 1);
        // The fresh envelope was received, not dropped.
        assert_eq!(from_b.messages_received, 1);
        assert_eq!(router.len(), 3, "rejoin replaces, never duplicates");
    }

    #[test]
    fn rejoined_endpoint_can_send_again() {
        let router = Router::new();
        let a = RouterTransport::connect(&router, NodeId(1)).unwrap();
        let b = RouterTransport::connect(&router, NodeId(2)).unwrap();
        a.crash();
        assert!(matches!(
            a.send(NodeId(2), 0, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
        a.rejoin().unwrap();
        a.send(NodeId(2), 1, Bytes::from_static(b"back")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().payload[..],
            b"back"
        );
    }

    #[test]
    fn counter_map_snapshot_is_sorted_and_tracks_drops() {
        let map = PeerCounterMap::new();
        map.record_send(NodeId(7), 10);
        map.record_recv(NodeId(2), 4);
        map.record_drop(NodeId(7));
        let snap = map.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].peer, NodeId(2));
        assert_eq!(snap[1].peer, NodeId(7));
        assert_eq!(snap[1].messages_dropped, 1);
        assert_eq!(snap[1].messages_sent, 1);
        assert_eq!(PeerCounters::new(NodeId(3)).bytes_sent, 0);
    }
}
