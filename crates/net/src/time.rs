//! Simulated wall-clock time.

use std::fmt;

/// A per-node simulated clock, counting seconds of simulated time.
///
/// Every node of a simulated deployment owns one clock. Computation,
/// communication and aggregation phases advance it by the durations the
/// [`crate::CostModel`] produces, so "convergence versus time" and
/// "throughput" experiments read simulated seconds instead of host wall-clock
/// (which would reflect this machine, not the paper's testbed).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimClock {
    seconds: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock { seconds: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.seconds
    }

    /// Advances the clock by `seconds` (negative or non-finite advances are ignored).
    pub fn advance(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.seconds += seconds;
        }
    }

    /// Moves the clock forward to `deadline` if it is later than the current time.
    ///
    /// Used to synchronise a node with the completion time of a round it had
    /// to wait for (e.g. the `q`-th fastest reply of a pull round).
    pub fn advance_to(&mut self, deadline: f64) {
        if deadline.is_finite() && deadline > self.seconds {
            self.seconds = deadline;
        }
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.seconds = 0.0;
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_nan_and_infinite_advances_are_ignored() {
        let mut c = SimClock::new();
        c.advance(-1.0);
        c.advance(f64::NAN);
        c.advance(f64::INFINITY);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = SimClock::new();
        c.advance(5.0);
        c.advance_to(3.0);
        assert_eq!(c.now(), 5.0);
        c.advance_to(7.5);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    fn reset_and_display() {
        let mut c = SimClock::new();
        c.advance(1.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
        assert!(c.to_string().ends_with('s'));
    }
}
