//! The compact binary wire format of the live runtime.
//!
//! Every message the threaded actor runtime (`garfield-runtime`) exchanges
//! over the [`Router`](crate::Router) is one [`WireMessage`], encoded as a
//! fixed header followed by a length-prefixed little-endian `f32` payload:
//!
//! ```text
//! offset  size  field
//! 0       1     format version  (= [`WIRE_VERSION`])
//! 1       1     message kind    (see [`MsgKind`])
//! 2       8     round tag       (u64 LE — the training iteration)
//! 10      4     aux scalar      (f32 LE — e.g. the training loss of a reply)
//! 14      2     shard id        (u16 LE — which parameter shard; 0 unsharded)
//! 16      4     coord offset    (u32 LE — first coordinate of the slice)
//! 20      4     coord length    (u32 LE — slice length; 0 = unsharded/full)
//! 24      4     origin node id  (u32 LE — who put the message on the wire)
//! 28      8     sequence number (u64 LE — per-sender send counter)
//! 36      8     send timestamp  (u64 LE — µs since the Unix epoch)
//! 44      4     payload length  (u32 LE — number of f32 values, not bytes)
//! 48      4·n   payload         (f32 LE values: a flat gradient or model)
//! ```
//!
//! The three shard fields (shard id, coordinate offset, coordinate length)
//! route a payload to one contiguous parameter shard: a sharded parameter
//! server sends its model *slice* in requests and receives gradient *slices*
//! in replies, each tagged with the exact coordinate range `[coord_offset,
//! coord_offset + coord_len)` it covers. `coord_len == 0` marks an unsharded
//! (full-vector) message; a non-zero `coord_len` must equal the payload
//! length and the range must fit the u32 coordinate space — both checked
//! strictly at decode (see [`NetError::WireShard`]).
//!
//! The three trace fields (origin, sequence, send timestamp) exist for
//! wire-level causal tracing: `expfig trace` joins a receiver's
//! flight-recorder events against the sender's clock to attribute one-way
//! delay and stragglers per peer. They are *transport metadata*, not part of
//! the logical message: [`WireMessage::encode`] zeroes them and the send path
//! stamps them into the encoded buffer with [`stamp_trace`] at the moment the
//! bytes leave for the wire, so encoding stays pure and replayable.
//!
//! The payload is bit-transparent: NaNs and infinities round-trip exactly
//! (decoding never interprets the values), which matters because a Byzantine
//! node may deliberately send non-finite vectors. Decoding is strict — a
//! wrong version, an unknown kind, a truncated buffer, trailing bytes or an
//! inconsistent shard range are all errors rather than best-effort accepts.
//!
//! # Version-bump / compatibility policy
//!
//! The format is versioned by a single leading byte and is intentionally
//! **not** forward- or backward-compatible: a node speaking version `n`
//! rejects every other version at two independent layers — the TCP hello
//! (`garfield-transport` puts [`WIRE_VERSION`] in its connection preamble, so
//! mismatched peers are refused before any payload flows) and
//! [`WireMessage::peek`]/[`WireMessage::decode`], which fail with
//! [`NetError::WireVersion`] on every frame. A cluster must therefore be
//! upgraded atomically; there is no mixed-version operation. Any change to
//! the header layout (as with the v1→v2 trace-field extension and the v2→v3
//! shard-routing extension) must bump [`WIRE_VERSION`], update
//! [`WIRE_HEADER_BYTES`] and the layout table above, and keep the
//! strict-decode guarantees: `peek` validating exactly like `decode`, the
//! length cap enforced before allocation, and the proptests in
//! `tests/wire_properties.rs` passing unchanged in spirit (truncation,
//! trailing bytes, hostile lengths, bit-exact payload round-trips).

use crate::{NetError, NetResult};
use bytes::Bytes;

/// Current wire-format version byte.
///
/// Version 3 extended the v2 header with the shard-routing fields (shard id,
/// coordinate offset/length); version 2 had extended v1 with the
/// origin/sequence/timestamp trace fields. See the module docs for the
/// layout and the compatibility policy.
pub const WIRE_VERSION: u8 = 3;

/// Size of the fixed message header in bytes.
pub const WIRE_HEADER_BYTES: usize = 48;

/// Byte offset of the shard-id field within the header.
const SHARD_ID_OFFSET: usize = 14;
/// Byte offset of the shard coordinate-offset field within the header.
const COORD_OFFSET_OFFSET: usize = 16;
/// Byte offset of the shard coordinate-length field within the header.
const COORD_LEN_OFFSET: usize = 20;
/// Byte offset of the origin-node-id trace field within the header.
const TRACE_ORIGIN_OFFSET: usize = 24;
/// Byte offset of the sequence-number trace field within the header.
const TRACE_SEQ_OFFSET: usize = 28;
/// Byte offset of the send-timestamp trace field within the header.
const TRACE_SENT_OFFSET: usize = 36;
/// Byte offset of the payload-length field within the header.
const PAYLOAD_LEN_OFFSET: usize = 44;

/// Maximum number of `f32` payload values a message may declare or carry
/// (64 Mi values = 256 MiB — more than an order of magnitude above the
/// largest model in the paper's Table 1).
///
/// The cap is enforced *before* any allocation: a hostile peer controls the
/// length prefix of every frame it sends, and a header must never be able to
/// demand gigabytes of memory on the receiving side.
pub const MAX_WIRE_VALUES: usize = 64 * 1024 * 1024;

/// Declares the [`MsgKind`] enum and its byte codec from one variant list,
/// so [`MsgKind::all`] (decode fuzzing, telemetry enumeration) can never
/// silently fall out of sync with the variants: the array length, the
/// discriminants and the `from_byte` match all derive from the same list.
macro_rules! msg_kinds {
    ($( $(#[$meta:meta])* $name:ident = $byte:literal ),* $(,)?) => {
        /// The message kinds of the live training protocol.
        ///
        /// Servers pull gradients from workers and models from peer replicas
        /// — the paper's `get_gradients()` / `get_models()` RPCs (§3.2) — so
        /// each pull is a request/reply pair; `Shutdown` and `ServerDone` are
        /// control messages used to wind the actors down.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum MsgKind {
            $( $(#[$meta])* $name = $byte, )*
        }

        impl MsgKind {
            /// Number of kinds, derived from the variant list itself.
            pub const COUNT: usize = [$(MsgKind::$name),*].len();

            /// All kinds, in wire-byte order. The length derives from the
            /// variant list: adding a kind grows this array automatically.
            pub fn all() -> [MsgKind; Self::COUNT] {
                [$(MsgKind::$name),*]
            }

            /// The byte this kind encodes to.
            pub fn to_byte(self) -> u8 {
                self as u8
            }

            /// Parses a kind byte.
            pub fn from_byte(byte: u8) -> Option<MsgKind> {
                match byte {
                    $( $byte => Some(MsgKind::$name), )*
                    _ => None,
                }
            }
        }
    };
}

msg_kinds! {
    /// Server → worker: "compute a gradient at these parameters" (payload =
    /// the server's current model, or its shard slice when shard-routed).
    GradientRequest = 0,
    /// Worker → server: the gradient estimate (payload = gradient or the
    /// requested shard slice of it, aux = training loss on the worker's
    /// mini-batch).
    GradientReply = 1,
    /// Server → server: "serve me your model" (empty payload).
    ModelRequest = 2,
    /// Server → server: the served model vector (payload = model).
    ModelReply = 3,
    /// Controller → worker: stop the actor loop (empty payload).
    Shutdown = 4,
    /// Server → server: "I finished my last iteration" (empty payload);
    /// lets peers stop serving model requests without a timeout.
    ServerDone = 5,
    /// Recovering node → live peer: "send me your training state" (empty
    /// payload; the round tag names the lowest round the requester will
    /// accept). The crash-recovery catch-up path polls with this until a
    /// peer has advanced far enough.
    StateRequest = 6,
    /// Live peer → recovering node: a serialized training-state checkpoint
    /// (round, model, optimizer state), bit-cast into the `f32` payload so
    /// it flows through the same pooled zero-copy decode path as gradients.
    /// The round tag names the round the state resumes at; `aux` is the
    /// chunk index (always 0 today — state fits one frame, the field exists
    /// so multi-chunk transfer stays wire-compatible).
    StateChunk = 7,
    /// Shard server → sibling shard servers: "my speculative fast path
    /// tripped at this round" (empty payload; the header's shard id names
    /// the tripping shard). Receivers force their own speculative latch so
    /// the whole shard group falls back together — the cluster-wide sticky
    /// OR over per-shard latches.
    SpeculationTrip = 8,
}

/// The fixed header of a wire message, validated without touching the
/// payload.
///
/// [`WireMessage::peek`] performs the *full* structural validation of
/// [`WireMessage::decode`] — version, kind, length cap, shard-range
/// consistency, exact buffer size — but materialises zero `f32` values. The
/// receive loops use it to route control traffic (requests, done-markers)
/// and reject garbage without allocating, and then
/// [`WireMessage::decode_into`] fills a pooled buffer only for the payloads
/// that are actually aggregated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireHeader {
    /// What the message is (request, reply, control).
    pub kind: MsgKind,
    /// The training iteration the message belongs to.
    pub round: u64,
    /// Kind-specific scalar (gradient replies carry the training loss here).
    pub aux: f32,
    /// Shard routing: which parameter shard the payload belongs to (0 for
    /// unsharded messages).
    pub shard: u16,
    /// Shard routing: first coordinate of the slice within the full
    /// d-dimensional vector.
    pub coord_offset: u32,
    /// Shard routing: slice length in coordinates; 0 marks an unsharded
    /// (full-vector) message, non-zero must equal `payload_len`.
    pub coord_len: u32,
    /// Trace: the node id that put this message on the wire (0 when the
    /// buffer was never stamped — see [`stamp_trace`]).
    pub origin: u32,
    /// Trace: the sender's monotone send counter at stamp time.
    pub seq: u64,
    /// Trace: the sender's clock at stamp time, µs since the Unix epoch
    /// (0 when unstamped).
    pub sent_unix_us: u64,
    /// Number of `f32` payload values that follow the header.
    pub payload_len: usize,
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMessage {
    /// What this message is (request, reply, control).
    pub kind: MsgKind,
    /// The training iteration this message belongs to.
    pub round: u64,
    /// Kind-specific scalar (gradient replies carry the training loss here;
    /// other kinds leave it at 0.0).
    pub aux: f32,
    /// Shard routing: which parameter shard the payload belongs to (0 for
    /// unsharded messages).
    pub shard: u16,
    /// Shard routing: first coordinate of the slice within the full vector.
    pub coord_offset: u32,
    /// Shard routing: slice length; 0 marks an unsharded message.
    pub coord_len: u32,
    /// The flat tensor payload (a gradient or model vector; may be empty).
    pub values: Vec<f32>,
}

/// The current wall clock as µs since the Unix epoch — the timestamp domain
/// of the wire trace fields. Returns 0 if the clock sits before the epoch.
pub fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Stamps the trace fields (origin node id, sequence number, send timestamp)
/// into an already-encoded wire buffer, in place.
///
/// [`WireMessage::encode`] leaves the trace fields zeroed so that encoding
/// stays a pure function of the logical message; the send path calls this on
/// the encoded bytes immediately before handing them to the transport, which
/// is the only point where "who is sending, as which send, at what time" is
/// actually known. Stamping rewrites 20 fixed header bytes and never touches
/// the payload (or the shard fields before it), so it is free compared to
/// the encode itself.
///
/// # Panics
///
/// Panics if `buf` is shorter than a wire header or does not start with
/// [`WIRE_VERSION`] — stamping arbitrary bytes would corrupt them silently.
pub fn stamp_trace(buf: &mut [u8], origin: u32, seq: u64, sent_unix_us: u64) {
    assert!(
        buf.len() >= WIRE_HEADER_BYTES && buf[0] == WIRE_VERSION,
        "stamp_trace requires an encoded v{WIRE_VERSION} wire message"
    );
    buf[TRACE_ORIGIN_OFFSET..TRACE_SEQ_OFFSET].copy_from_slice(&origin.to_le_bytes());
    buf[TRACE_SEQ_OFFSET..TRACE_SENT_OFFSET].copy_from_slice(&seq.to_le_bytes());
    buf[TRACE_SENT_OFFSET..PAYLOAD_LEN_OFFSET].copy_from_slice(&sent_unix_us.to_le_bytes());
}

impl WireMessage {
    /// Creates an unsharded message with a tensor payload.
    pub fn new(kind: MsgKind, round: u64, aux: f32, values: Vec<f32>) -> Self {
        WireMessage {
            kind,
            round,
            aux,
            shard: 0,
            coord_offset: 0,
            coord_len: 0,
            values,
        }
    }

    /// Creates a payload-free message (requests and control messages).
    pub fn control(kind: MsgKind, round: u64) -> Self {
        WireMessage::new(kind, round, 0.0, Vec::new())
    }

    /// Tags the message with a shard id and the coordinate range its payload
    /// covers, builder style.
    ///
    /// # Panics
    ///
    /// Panics when `coord_len` disagrees with the payload length on a
    /// payload-carrying message, or when the range overflows u32 — such a
    /// message would be rejected by every correct decoder.
    pub fn with_shard(mut self, shard: u16, coord_offset: u32, coord_len: u32) -> Self {
        assert!(
            self.values.is_empty() || coord_len as usize == self.values.len(),
            "shard slice of {coord_len} coordinates disagrees with a {}-value payload",
            self.values.len()
        );
        assert!(
            coord_offset.checked_add(coord_len).is_some(),
            "shard range [{coord_offset}, {coord_offset}+{coord_len}) overflows u32"
        );
        self.shard = shard;
        self.coord_offset = coord_offset;
        self.coord_len = coord_len;
        self
    }

    /// The exact number of bytes [`WireMessage::encode`] will produce.
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES + 4 * self.values.len()
    }

    /// Encodes the message into an immutable byte buffer.
    ///
    /// The trace fields (origin, sequence, timestamp) are written as zeros;
    /// the send path stamps real values over them with [`stamp_trace`] just
    /// before the bytes hit the wire.
    ///
    /// # Panics
    ///
    /// Panics if the payload holds more than [`MAX_WIRE_VALUES`] values —
    /// such a message could never be decoded by a correct peer.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.encode_vec())
    }

    /// Encodes the message into a mutable byte vector, for send paths that
    /// [`stamp_trace`] the buffer before freezing it into [`Bytes`].
    ///
    /// # Panics
    ///
    /// Same as [`WireMessage::encode`].
    pub fn encode_vec(&self) -> Vec<u8> {
        assert!(
            self.values.len() <= MAX_WIRE_VALUES,
            "wire payload of {} values exceeds the {MAX_WIRE_VALUES}-value cap",
            self.values.len()
        );
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.push(WIRE_VERSION);
        buf.push(self.kind.to_byte());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&self.aux.to_le_bytes());
        buf.extend_from_slice(&self.shard.to_le_bytes());
        buf.extend_from_slice(&self.coord_offset.to_le_bytes());
        buf.extend_from_slice(&self.coord_len.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // origin (stamped on send)
        buf.extend_from_slice(&0u64.to_le_bytes()); // seq (stamped on send)
        buf.extend_from_slice(&0u64.to_le_bytes()); // sent_unix_us (stamped on send)
        buf.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Decodes a message, validating version, kind, shard range and exact
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WireVersion`] for an unsupported version byte,
    /// [`NetError::WireKind`] for an unknown kind byte,
    /// [`NetError::FrameTooLarge`] when the header declares more than
    /// [`MAX_WIRE_VALUES`] payload values (checked before anything is
    /// allocated), [`NetError::WireShard`] for a shard coordinate range that
    /// disagrees with the payload length or overflows, and
    /// [`NetError::WireSize`] for a buffer that is truncated or carries
    /// trailing bytes.
    pub fn decode(buf: &[u8]) -> NetResult<WireMessage> {
        let mut values = Vec::new();
        let header = WireMessage::decode_into(buf, &mut values)?;
        Ok(WireMessage {
            kind: header.kind,
            round: header.round,
            aux: header.aux,
            shard: header.shard,
            coord_offset: header.coord_offset,
            coord_len: header.coord_len,
            values,
        })
    }

    /// Validates the whole message (header *and* exact payload size) without
    /// materialising the payload.
    ///
    /// # Errors
    ///
    /// The same errors as [`WireMessage::decode`] — `peek` accepting a buffer
    /// guarantees `decode`/`decode_into` will too.
    pub fn peek(buf: &[u8]) -> NetResult<WireHeader> {
        if buf.len() < WIRE_HEADER_BYTES {
            return Err(NetError::WireSize {
                expected: WIRE_HEADER_BYTES,
                actual: buf.len(),
            });
        }
        if buf[0] != WIRE_VERSION {
            return Err(NetError::WireVersion(buf[0]));
        }
        let kind = MsgKind::from_byte(buf[1]).ok_or(NetError::WireKind(buf[1]))?;
        let round = u64::from_le_bytes(buf[2..10].try_into().expect("8 header bytes"));
        let aux = f32::from_le_bytes(buf[10..14].try_into().expect("4 header bytes"));
        let shard = u16::from_le_bytes(
            buf[SHARD_ID_OFFSET..COORD_OFFSET_OFFSET]
                .try_into()
                .expect("2 header bytes"),
        );
        let coord_offset = u32::from_le_bytes(
            buf[COORD_OFFSET_OFFSET..COORD_LEN_OFFSET]
                .try_into()
                .expect("4 header bytes"),
        );
        let coord_len = u32::from_le_bytes(
            buf[COORD_LEN_OFFSET..TRACE_ORIGIN_OFFSET]
                .try_into()
                .expect("4 header bytes"),
        );
        let origin = u32::from_le_bytes(
            buf[TRACE_ORIGIN_OFFSET..TRACE_SEQ_OFFSET]
                .try_into()
                .expect("4 header bytes"),
        );
        let seq = u64::from_le_bytes(
            buf[TRACE_SEQ_OFFSET..TRACE_SENT_OFFSET]
                .try_into()
                .expect("8 header bytes"),
        );
        let sent_unix_us = u64::from_le_bytes(
            buf[TRACE_SENT_OFFSET..PAYLOAD_LEN_OFFSET]
                .try_into()
                .expect("8 header bytes"),
        );
        let len = u32::from_le_bytes(
            buf[PAYLOAD_LEN_OFFSET..WIRE_HEADER_BYTES]
                .try_into()
                .expect("4 header bytes"),
        ) as usize;
        // A hostile length prefix is rejected before any allocation or
        // comparison against the buffer: the header alone must never be able
        // to request an unbounded amount of memory.
        if len > MAX_WIRE_VALUES {
            return Err(NetError::FrameTooLarge {
                declared: len.saturating_mul(4),
                max: MAX_WIRE_VALUES * 4,
            });
        }
        // A shard-routed payload is exactly the slice its header declares:
        // coord_len 0 marks an unsharded message, anything else must match
        // the payload length, and the range must fit the coordinate space.
        if (coord_len != 0 && coord_len as usize != len)
            || coord_offset.checked_add(coord_len).is_none()
        {
            return Err(NetError::WireShard {
                coord_offset,
                coord_len,
                payload_len: len,
            });
        }
        // Checked arithmetic: on 32-bit targets an adversarial length prefix
        // could overflow `4 * len`; a malformed size must be an error, never
        // a panic or a wrapped comparison.
        let expected = len
            .checked_mul(4)
            .and_then(|bytes| bytes.checked_add(WIRE_HEADER_BYTES));
        match expected {
            Some(expected) if buf.len() == expected => {}
            _ => {
                return Err(NetError::WireSize {
                    expected: expected.unwrap_or(usize::MAX),
                    actual: buf.len(),
                })
            }
        }
        Ok(WireHeader {
            kind,
            round,
            aux,
            shard,
            coord_offset,
            coord_len,
            origin,
            seq,
            sent_unix_us,
            payload_len: len,
        })
    }

    /// Decodes the payload into a caller-provided buffer (cleared first,
    /// capacity reused), validating exactly like [`WireMessage::decode`].
    ///
    /// This is the zero-garbage receive path: with a [`PayloadPool`] feeding
    /// `values`, a steady-state server decodes every gradient without a
    /// fresh `Vec<f32>` allocation per message.
    ///
    /// # Errors
    ///
    /// Same as [`WireMessage::decode`]; on error `values` is left cleared.
    pub fn decode_into(buf: &[u8], values: &mut Vec<f32>) -> NetResult<WireHeader> {
        values.clear();
        let header = WireMessage::peek(buf)?;
        values.reserve(header.payload_len);
        values.extend(
            buf[WIRE_HEADER_BYTES..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("exact 4-byte chunks"))),
        );
        Ok(header)
    }
}

/// A free-list of reusable `f32` payload buffers.
///
/// Every decoded gradient used to cost one fresh `Vec<f32>` allocation
/// (then dropped after aggregation). A pool checks buffers out for
/// [`WireMessage::decode_into`] and takes them back once the round's
/// aggregation is done; capacity is retained, so a steady-state training
/// loop recycles the same handful of buffers forever. Bounded (`max_idle`)
/// so a burst cannot pin unbounded memory.
#[derive(Debug)]
pub struct PayloadPool {
    free: Vec<Vec<f32>>,
    max_idle: usize,
}

impl PayloadPool {
    /// Creates a pool retaining at most `max_idle` idle buffers.
    pub fn new(max_idle: usize) -> Self {
        PayloadPool {
            free: Vec::new(),
            max_idle,
        }
    }

    /// Checks a cleared buffer out of the pool (fresh if the pool is empty).
    pub fn checkout(&mut self) -> Vec<f32> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; dropped if the pool is full.
    pub fn restore(&mut self, mut buf: Vec<f32>) {
        if self.free.len() < self.max_idle {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl Default for PayloadPool {
    fn default() -> Self {
        PayloadPool::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bytes_round_trip_and_unknowns_are_rejected() {
        for kind in MsgKind::all() {
            assert_eq!(MsgKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(MsgKind::from_byte(MsgKind::COUNT as u8), None);
        assert_eq!(MsgKind::from_byte(255), None);
    }

    #[test]
    fn all_is_dense_and_derives_its_length_from_the_variant_list() {
        // all() and the byte codec come from the same macro list, so the
        // wire bytes must be exactly 0..COUNT with no gap: decode fuzzing
        // and telemetry enumeration see every kind.
        let kinds = MsgKind::all();
        assert_eq!(kinds.len(), MsgKind::COUNT);
        for (i, kind) in kinds.into_iter().enumerate() {
            assert_eq!(kind.to_byte() as usize, i, "wire bytes must be dense");
        }
        // Exactly the first COUNT bytes parse; everything above is rejected.
        for byte in 0..=255u8 {
            assert_eq!(
                MsgKind::from_byte(byte).is_some(),
                (byte as usize) < MsgKind::COUNT,
                "byte {byte}"
            );
        }
    }

    #[test]
    fn header_layout_is_stable() {
        let msg = WireMessage::new(MsgKind::GradientReply, 0x0102_0304, 1.0, vec![2.0])
            .with_shard(5, 96, 1);
        let buf = msg.encode();
        assert_eq!(buf.len(), msg.encoded_len());
        assert_eq!(buf[0], WIRE_VERSION);
        assert_eq!(buf[1], MsgKind::GradientReply.to_byte());
        assert_eq!(&buf[2..10], &0x0102_0304u64.to_le_bytes());
        assert_eq!(&buf[10..14], &1.0f32.to_le_bytes());
        // Shard routing fields.
        assert_eq!(&buf[14..16], &5u16.to_le_bytes());
        assert_eq!(&buf[16..20], &96u32.to_le_bytes());
        assert_eq!(&buf[20..24], &1u32.to_le_bytes());
        // Trace fields are zero until the send path stamps them.
        assert_eq!(&buf[24..28], &0u32.to_le_bytes());
        assert_eq!(&buf[28..36], &0u64.to_le_bytes());
        assert_eq!(&buf[36..44], &0u64.to_le_bytes());
        assert_eq!(&buf[44..48], &1u32.to_le_bytes());
        assert_eq!(&buf[48..52], &2.0f32.to_le_bytes());
    }

    #[test]
    fn shard_fields_round_trip_and_default_to_unsharded() {
        let plain = WireMessage::new(MsgKind::GradientRequest, 2, 0.0, vec![1.0, 2.0]);
        assert_eq!(
            (plain.shard, plain.coord_offset, plain.coord_len),
            (0, 0, 0)
        );
        let back = WireMessage::decode(&plain.encode()).unwrap();
        assert_eq!(back, plain);

        let sharded = WireMessage::new(MsgKind::GradientReply, 3, 0.5, vec![7.0, 8.0, 9.0])
            .with_shard(2, 1000, 3);
        let header = WireMessage::peek(&sharded.encode()).unwrap();
        assert_eq!(header.shard, 2);
        assert_eq!(header.coord_offset, 1000);
        assert_eq!(header.coord_len, 3);
        let back = WireMessage::decode(&sharded.encode()).unwrap();
        assert_eq!(back, sharded);

        // Empty-payload control messages may carry a shard tag with a zero
        // range (SpeculationTrip names the tripping shard this way).
        let trip = WireMessage::control(MsgKind::SpeculationTrip, 4).with_shard(1, 0, 0);
        let back = WireMessage::decode(&trip.encode()).unwrap();
        assert_eq!(back.shard, 1);
        assert_eq!(back.coord_len, 0);
    }

    #[test]
    fn inconsistent_shard_ranges_are_rejected() {
        // coord_len disagreeing with the payload length must fail strictly.
        let msg = WireMessage::new(MsgKind::GradientReply, 1, 0.0, vec![1.0, 2.0, 3.0]);
        let mut buf = msg.encode().to_vec();
        buf[20..24].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(
            WireMessage::decode(&buf),
            Err(NetError::WireShard {
                coord_offset: 0,
                coord_len: 7,
                payload_len: 3,
            })
        );
        // An overflowing coordinate range is rejected even when the length
        // matches the payload.
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        buf[20..24].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            WireMessage::decode(&buf),
            Err(NetError::WireShard { .. })
        ));
        // peek agrees with decode on both.
        assert!(matches!(
            WireMessage::peek(&buf),
            Err(NetError::WireShard { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "disagrees with")]
    fn with_shard_rejects_mismatched_slice_lengths() {
        let _ =
            WireMessage::new(MsgKind::GradientReply, 1, 0.0, vec![1.0, 2.0]).with_shard(0, 0, 5);
    }

    #[test]
    fn stamp_trace_round_trips_through_peek_and_leaves_payload_intact() {
        let msg =
            WireMessage::new(MsgKind::GradientReply, 9, 0.25, vec![1.0, -2.0]).with_shard(3, 10, 2);
        let mut buf = msg.encode_vec();
        stamp_trace(&mut buf, 42, 1234, 1_700_000_000_000_000);
        let header = WireMessage::peek(&buf).unwrap();
        assert_eq!(header.origin, 42);
        assert_eq!(header.seq, 1234);
        assert_eq!(header.sent_unix_us, 1_700_000_000_000_000);
        assert_eq!(header.round, 9);
        assert_eq!(header.aux, 0.25);
        // Stamping never touches the shard fields next door.
        assert_eq!(header.shard, 3);
        assert_eq!(header.coord_offset, 10);
        assert_eq!(header.coord_len, 2);
        // The logical message is unchanged by stamping.
        let back = WireMessage::decode(&buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    #[should_panic(expected = "stamp_trace requires an encoded")]
    fn stamp_trace_rejects_non_wire_buffers() {
        let mut junk = vec![0u8; WIRE_HEADER_BYTES];
        stamp_trace(&mut junk, 1, 1, 1);
    }

    #[test]
    fn empty_payload_round_trips() {
        let msg = WireMessage::control(MsgKind::Shutdown, 7);
        let back = WireMessage::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.values.len(), 0);
        assert_eq!(msg.encoded_len(), WIRE_HEADER_BYTES);
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let msg = WireMessage::new(
            MsgKind::ModelReply,
            u64::MAX,
            f32::NAN,
            vec![1.5, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::NAN],
        );
        let back = WireMessage::decode(&msg.encode()).unwrap();
        assert_eq!(back.kind, msg.kind);
        assert_eq!(back.round, msg.round);
        assert_eq!(back.aux.to_bits(), msg.aux.to_bits());
        let bits: Vec<u32> = back.values.iter().map(|v| v.to_bits()).collect();
        let expected: Vec<u32> = msg.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn bad_version_kind_and_size_are_errors() {
        let buf = WireMessage::new(MsgKind::GradientRequest, 3, 0.0, vec![1.0, 2.0]).encode();
        let mut bad_version = buf.to_vec();
        bad_version[0] = WIRE_VERSION + 1;
        assert_eq!(
            WireMessage::decode(&bad_version),
            Err(NetError::WireVersion(WIRE_VERSION + 1))
        );
        // The previous format version is rejected like any other mismatch:
        // the policy is atomic cluster upgrades, not mixed-version decode.
        let mut old_version = buf.to_vec();
        old_version[0] = WIRE_VERSION - 1;
        assert_eq!(
            WireMessage::decode(&old_version),
            Err(NetError::WireVersion(WIRE_VERSION - 1))
        );
        let mut bad_kind = buf.to_vec();
        bad_kind[1] = MsgKind::COUNT as u8;
        assert_eq!(
            WireMessage::decode(&bad_kind),
            Err(NetError::WireKind(MsgKind::COUNT as u8))
        );
        assert!(matches!(
            WireMessage::decode(&buf[..buf.len() - 1]),
            Err(NetError::WireSize { .. })
        ));
        let mut trailing = buf.to_vec();
        trailing.push(0);
        assert!(matches!(
            WireMessage::decode(&trailing),
            Err(NetError::WireSize { .. })
        ));
        assert!(matches!(
            WireMessage::decode(&[]),
            Err(NetError::WireSize { .. })
        ));
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation() {
        // An adversarial header declaring u32::MAX payload values on a
        // header-sized buffer: must fail with FrameTooLarge, not attempt a
        // 16 GiB allocation or fall through to a size mismatch.
        let mut buf = WireMessage::control(MsgKind::GradientRequest, 1)
            .encode()
            .to_vec();
        buf[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            WireMessage::decode(&buf),
            Err(NetError::FrameTooLarge { .. })
        ));

        // One value above the cap is rejected, the cap itself would pass the
        // length check (and then fail only on the buffer-size comparison).
        buf[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 4]
            .copy_from_slice(&((MAX_WIRE_VALUES + 1) as u32).to_le_bytes());
        assert_eq!(
            WireMessage::decode(&buf),
            Err(NetError::FrameTooLarge {
                declared: (MAX_WIRE_VALUES + 1) * 4,
                max: MAX_WIRE_VALUES * 4,
            })
        );
        buf[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 4]
            .copy_from_slice(&(MAX_WIRE_VALUES as u32).to_le_bytes());
        assert!(matches!(
            WireMessage::decode(&buf),
            Err(NetError::WireSize { .. })
        ));
    }

    #[test]
    fn peek_validates_exactly_like_decode() {
        let good = WireMessage::new(MsgKind::GradientReply, 11, 0.5, vec![1.0, 2.0]).encode();
        let header = WireMessage::peek(&good).unwrap();
        assert_eq!(header.kind, MsgKind::GradientReply);
        assert_eq!(header.round, 11);
        assert_eq!(header.aux, 0.5);
        assert_eq!(header.payload_len, 2);
        assert_eq!(header.shard, 0);
        assert_eq!(header.coord_offset, 0);
        assert_eq!(header.coord_len, 0);
        assert_eq!(header.origin, 0);
        assert_eq!(header.seq, 0);
        assert_eq!(header.sent_unix_us, 0);

        // Every malformed buffer peek rejects, decode must reject too (and
        // vice versa).
        let mut cases: Vec<Vec<u8>> = vec![good.to_vec(), vec![], good[..10].to_vec()];
        let mut bad_version = good.to_vec();
        bad_version[0] = 9;
        cases.push(bad_version);
        let mut bad_kind = good.to_vec();
        bad_kind[1] = 77;
        cases.push(bad_kind);
        let mut trailing = good.to_vec();
        trailing.push(0);
        cases.push(trailing);
        let mut bad_shard = good.to_vec();
        bad_shard[COORD_LEN_OFFSET..COORD_LEN_OFFSET + 4].copy_from_slice(&9u32.to_le_bytes());
        cases.push(bad_shard);
        for case in cases {
            assert_eq!(
                WireMessage::peek(&case).is_ok(),
                WireMessage::decode(&case).is_ok()
            );
        }
    }

    #[test]
    fn decode_into_reuses_capacity_and_clears_on_error() {
        let msg = WireMessage::new(MsgKind::ModelReply, 3, 0.0, vec![5.0; 100]);
        let mut buf = Vec::new();
        let header = WireMessage::decode_into(&msg.encode(), &mut buf).unwrap();
        assert_eq!(header.payload_len, 100);
        assert_eq!(buf, vec![5.0; 100]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();

        // Second decode of an equal-size payload reuses the same storage.
        let again = WireMessage::new(MsgKind::GradientReply, 4, 1.0, vec![7.0; 100]);
        WireMessage::decode_into(&again.encode(), &mut buf).unwrap();
        assert_eq!(buf, vec![7.0; 100]);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);

        // Errors leave the buffer cleared, never with stale values.
        assert!(WireMessage::decode_into(&[1, 2, 3], &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn payload_pool_recycles_buffers_up_to_its_bound() {
        let mut pool = PayloadPool::new(2);
        let mut a = pool.checkout();
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.restore(a);
        assert_eq!(pool.idle(), 1);

        let b = pool.checkout();
        assert!(b.is_empty(), "restored buffers come back cleared");
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr);
        pool.restore(b);

        pool.restore(Vec::new());
        pool.restore(Vec::new()); // beyond max_idle: dropped
        assert_eq!(pool.idle(), 2);
    }
}
