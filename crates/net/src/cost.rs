//! The cost model translating work and bytes into simulated seconds.
//!
//! The paper's throughput results are driven by three ingredients:
//! computation time (gradient estimation on CPU vs GPU), communication time
//! (model/gradient transfers over 10 Gbps links, plus serialization overhead
//! from leaving the TensorFlow runtime), and aggregation time (the GAR).
//! [`CostModel`] provides calibrated analytic forms for the first two; the
//! third is measured for real since the GARs actually execute.

/// Where a node performs its numeric work.
///
/// The GPU constants encode the roughly one-order-of-magnitude advantage the
/// paper reports for GPU deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Device {
    /// A 2×10-core Xeon-class CPU node (the paper's CPU cluster).
    Cpu,
    /// A dual-GPU node (the paper's GPU clusters).
    Gpu,
}

impl Device {
    /// Short lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Device::Cpu => "cpu",
            Device::Gpu => "gpu",
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Device {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" => Ok(Device::Cpu),
            "gpu" => Ok(Device::Gpu),
            other => Err(format!("unknown device '{other}' (expected cpu or gpu)")),
        }
    }
}

/// Link characteristics between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkProfile {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Effective point-to-point bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Extra per-byte serialization/deserialization cost (the paper's
    /// protobuf / runtime context-switch overhead, §4.1).
    pub serialization_s_per_byte: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        // 2 × 10 Gbps Ethernet with an effective ~4 Gbit/s per flow once the
        // gRPC/protobuf serialization path of §4.1 is accounted for.
        LinkProfile {
            latency_s: 2.0e-4,
            bandwidth_bps: 5.0e8,
            serialization_s_per_byte: 1.0e-9,
        }
    }
}

impl LinkProfile {
    /// A faster intra-GPU-cluster profile (nccl / gloo collectives, §4.2).
    pub fn gpu_cluster() -> Self {
        LinkProfile {
            latency_s: 1.0e-4,
            bandwidth_bps: 1.5e9,
            serialization_s_per_byte: 2.0e-10,
        }
    }

    /// Time to move `bytes` over this link, excluding receiver contention.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s
            + bytes as f64 / self.bandwidth_bps
            + bytes as f64 * self.serialization_s_per_byte
    }
}

/// Calibrated analytic cost model for computation and communication.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Seconds per (parameter × sample) of gradient computation on a CPU.
    pub cpu_grad_s_per_param_sample: f64,
    /// Speed-up factor of a GPU over a CPU for gradient computation.
    pub gpu_speedup: f64,
    /// Seconds per (parameter × input) of robust aggregation on a CPU, used
    /// only when a caller wants a *simulated* aggregation time instead of a
    /// measured one.
    pub cpu_agg_s_per_param_input: f64,
    /// Speed-up factor of a GPU over a CPU for aggregation kernels.
    pub gpu_agg_speedup: f64,
    /// Link profile of the CPU cluster.
    pub cpu_link: LinkProfile,
    /// Link profile of the GPU cluster.
    pub gpu_link: LinkProfile,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration anchor (paper Fig. 7): ResNet-50 (23.5 M parameters),
        // batch 32, CPU gradient computation ≈ 1.6 s per iteration.
        CostModel {
            cpu_grad_s_per_param_sample: 2.1e-9,
            gpu_speedup: 15.0,
            cpu_agg_s_per_param_input: 6.0e-10,
            gpu_agg_speedup: 10.0,
            cpu_link: LinkProfile::default(),
            gpu_link: LinkProfile::gpu_cluster(),
        }
    }
}

impl CostModel {
    /// Link profile used between nodes of the given device class.
    pub fn link(&self, device: Device) -> LinkProfile {
        match device {
            Device::Cpu => self.cpu_link,
            Device::Gpu => self.gpu_link,
        }
    }

    /// Simulated time to compute one gradient estimate of dimension
    /// `parameters` over `batch_size` samples on `device`.
    pub fn gradient_time(&self, parameters: usize, batch_size: usize, device: Device) -> f64 {
        let base = self.cpu_grad_s_per_param_sample * parameters as f64 * batch_size as f64;
        match device {
            Device::Cpu => base,
            Device::Gpu => base / self.gpu_speedup,
        }
    }

    /// Simulated time to transfer one `parameters`-dimensional vector (4 bytes
    /// per value) over a single link of the `device` cluster.
    pub fn vector_transfer_time(&self, parameters: usize, device: Device) -> f64 {
        self.link(device).transfer_time(parameters * 4)
    }

    /// Simulated time for one node to *pull* `count` vectors of dimension
    /// `parameters` from distinct peers in parallel.
    ///
    /// The pulls overlap, but the receiver's ingress link is shared, so the
    /// serialization component scales with `count` while latency is paid once.
    /// This is the effect that makes communication dominate the paper's
    /// overhead breakdown (Fig. 7) and makes the decentralized topology's
    /// `O(n²)` messages per round visible (Fig. 9).
    pub fn parallel_pull_time(&self, parameters: usize, count: usize, device: Device) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let link = self.link(device);
        let bytes = parameters as f64 * 4.0;
        link.latency_s
            + count as f64 * bytes / link.bandwidth_bps
            + count as f64 * bytes * link.serialization_s_per_byte
    }

    /// Simulated time for one node to serve `count`-vector pulls to `fanout`
    /// replicas at once.
    ///
    /// The replicas pull in parallel, so the per-message latency overlaps and
    /// is paid once; the sender's shared link serializes the bandwidth and
    /// serialization components across all `count × fanout` vectors. This is
    /// what makes replicated-server deployments pay for replication in
    /// *bytes*, not in round trips.
    pub fn fanout_pull_time(
        &self,
        parameters: usize,
        count: usize,
        fanout: usize,
        device: Device,
    ) -> f64 {
        if count == 0 || fanout == 0 {
            return 0.0;
        }
        let link = self.link(device);
        let vectors = (count * fanout) as f64;
        let bytes = parameters as f64 * 4.0;
        link.latency_s
            + vectors * bytes / link.bandwidth_bps
            + vectors * bytes * link.serialization_s_per_byte
    }

    /// Simulated aggregation time for a GAR whose cost is `O(n^order · d)`.
    ///
    /// Used by throughput sweeps that want a device-scaled analytic value; the
    /// micro-benchmarks (Fig. 3) measure the real kernels instead.
    pub fn aggregation_time(
        &self,
        parameters: usize,
        inputs: usize,
        order: u32,
        device: Device,
    ) -> f64 {
        let work = (inputs as f64).powi(order as i32) * parameters as f64;
        let base = self.cpu_agg_s_per_param_input * work;
        match device {
            Device::Cpu => base,
            Device::Gpu => base / self.gpu_agg_speedup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_cpu_gradient_time_matches_the_calibration_anchor() {
        let m = CostModel::default();
        let t = m.gradient_time(23_539_850, 32, Device::Cpu);
        assert!((1.0..2.5).contains(&t), "ResNet-50 CPU gradient time {t}");
    }

    #[test]
    fn gpu_is_roughly_an_order_of_magnitude_faster() {
        let m = CostModel::default();
        let cpu = m.gradient_time(1_000_000, 32, Device::Cpu);
        let gpu = m.gradient_time(1_000_000, 32, Device::Gpu);
        assert!(cpu / gpu >= 10.0);
    }

    #[test]
    fn transfer_time_scales_linearly_with_dimension() {
        let m = CostModel::default();
        let t1 = m.vector_transfer_time(1_000_000, Device::Cpu);
        let t2 = m.vector_transfer_time(2_000_000, Device::Cpu);
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
    }

    #[test]
    fn parallel_pull_scales_with_the_number_of_peers() {
        let m = CostModel::default();
        let one = m.parallel_pull_time(1_000_000, 1, Device::Cpu);
        let five = m.parallel_pull_time(1_000_000, 5, Device::Cpu);
        assert!(five > one * 4.0 && five < one * 5.5);
        assert_eq!(m.parallel_pull_time(1_000_000, 0, Device::Cpu), 0.0);
    }

    #[test]
    fn communication_dominates_computation_for_large_models() {
        // The paper roots ≥75% of the overhead in communication for ResNet-50
        // on the CPU cluster with 18 workers; the cost model must reproduce
        // that ordering.
        let m = CostModel::default();
        let d = 23_539_850;
        let comm =
            m.parallel_pull_time(d, 18, Device::Cpu) + m.parallel_pull_time(d, 6, Device::Cpu);
        let comp = m.gradient_time(d, 32, Device::Cpu);
        assert!(comm > comp, "comm {comm} should exceed comp {comp}");
    }

    #[test]
    fn fanout_pull_overlaps_latency_but_serializes_bytes() {
        let m = CostModel::default();
        let d = 1_000_000;
        let single = m.parallel_pull_time(d, 10, Device::Cpu);
        let fanned = m.fanout_pull_time(d, 10, 3, Device::Cpu);
        // Three times the bytes, but only one latency.
        let lat = m.link(Device::Cpu).latency_s;
        assert!((fanned - (3.0 * (single - lat) + lat)).abs() < 1e-12);
        assert_eq!(m.fanout_pull_time(d, 10, 1, Device::Cpu), single);
        assert_eq!(m.fanout_pull_time(d, 0, 3, Device::Cpu), 0.0);
        assert_eq!(m.fanout_pull_time(d, 10, 0, Device::Cpu), 0.0);
    }

    #[test]
    fn aggregation_time_orders() {
        let m = CostModel::default();
        let linear = m.aggregation_time(1_000_000, 10, 1, Device::Cpu);
        let quadratic = m.aggregation_time(1_000_000, 10, 2, Device::Cpu);
        assert!(quadratic > linear * 5.0);
        assert!(m.aggregation_time(1_000_000, 10, 2, Device::Gpu) < quadratic);
    }

    #[test]
    fn device_and_link_accessors() {
        let m = CostModel::default();
        assert_eq!(Device::Cpu.as_str(), "cpu");
        assert_eq!(Device::Gpu.to_string(), "gpu");
        assert!(m.link(Device::Gpu).bandwidth_bps > m.link(Device::Cpu).bandwidth_bps);
        let lp = LinkProfile::default();
        assert!(lp.transfer_time(1_000_000) > lp.latency_s);
    }
}
