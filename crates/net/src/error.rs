//! Error types for the network fabric.

use crate::NodeId;
use std::fmt;

/// Result alias for fabric operations.
pub type NetResult<T> = Result<T, NetError>;

/// Errors produced by the simulated cluster fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A node id is not registered in the cluster.
    UnknownNode(NodeId),
    /// The destination node has crashed (or is partitioned away).
    Unreachable {
        /// Sender of the message.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// A receive timed out before any message arrived.
    Timeout,
    /// The router has been shut down.
    RouterClosed,
    /// A request asked for more replies than there are live peers.
    NotEnoughReplies {
        /// Number of replies requested.
        requested: usize,
        /// Number of peers that could possibly reply.
        available: usize,
    },
    /// A wire payload declared an unsupported format version.
    WireVersion(u8),
    /// A wire payload used an unknown message-kind byte.
    WireKind(u8),
    /// A wire payload was truncated or carried trailing bytes.
    WireSize {
        /// The byte length the header (or minimum header size) implies.
        expected: usize,
        /// The byte length actually received.
        actual: usize,
    },
    /// A node id was registered twice on the same router.
    DuplicateNode(NodeId),
    /// A frame or wire header declared a payload beyond the accepted cap.
    ///
    /// Hostile peers control the length prefix of every frame; the cap is
    /// checked *before* any allocation so a 4-byte header cannot demand
    /// gigabytes of memory.
    FrameTooLarge {
        /// The payload size the header declared, in bytes.
        declared: usize,
        /// The maximum the decoder accepts, in bytes.
        max: usize,
    },
    /// A wire header declared an inconsistent shard coordinate range.
    ///
    /// A shard-routed message's `coord_len` must equal its payload length
    /// (each payload *is* exactly the declared slice), and the range must not
    /// overflow the u32 coordinate space. `coord_len == 0` marks an
    /// unsharded message and is always accepted.
    WireShard {
        /// First coordinate of the declared slice.
        coord_offset: u32,
        /// Declared slice length in coordinates.
        coord_len: u32,
        /// Number of f32 values the payload actually carries.
        payload_len: usize,
    },
    /// A socket-level I/O failure (connect, read or write).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::Unreachable { from, to } => write!(f, "node {to} is unreachable from {from}"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::RouterClosed => write!(f, "router has been shut down"),
            NetError::NotEnoughReplies {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} replies but only {available} peers are available"
                )
            }
            NetError::WireVersion(v) => write!(f, "unsupported wire format version {v}"),
            NetError::WireKind(k) => write!(f, "unknown wire message kind {k}"),
            NetError::WireSize { expected, actual } => {
                write!(f, "wire payload of {actual} bytes, expected {expected}")
            }
            NetError::DuplicateNode(id) => {
                write!(f, "node {id} is already registered")
            }
            NetError::FrameTooLarge { declared, max } => {
                write!(
                    f,
                    "frame declares a {declared}-byte payload, above the {max}-byte cap"
                )
            }
            NetError::WireShard {
                coord_offset,
                coord_len,
                payload_len,
            } => {
                write!(
                    f,
                    "wire header declares shard slice [{coord_offset}, {coord_offset}+{coord_len}) \
                     but carries {payload_len} payload values"
                )
            }
            NetError::Io(message) => write!(f, "transport i/o error: {message}"),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::NotEnoughReplies {
            requested: 5,
            available: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(!NetError::Timeout.to_string().is_empty());
        assert!(!NetError::RouterClosed.to_string().is_empty());
        assert!(!NetError::UnknownNode(NodeId(3)).to_string().is_empty());
        let u = NetError::Unreachable {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert!(u.to_string().contains('2'));
        assert!(NetError::WireVersion(9).to_string().contains('9'));
        assert!(NetError::WireKind(7).to_string().contains('7'));
        let s = NetError::WireSize {
            expected: 18,
            actual: 4,
        };
        assert!(s.to_string().contains("18") && s.to_string().contains('4'));
        assert!(NetError::DuplicateNode(NodeId(5)).to_string().contains('5'));
        let big = NetError::FrameTooLarge {
            declared: 1024,
            max: 256,
        };
        assert!(big.to_string().contains("1024") && big.to_string().contains("256"));
        let shard = NetError::WireShard {
            coord_offset: 64,
            coord_len: 32,
            payload_len: 7,
        };
        assert!(shard.to_string().contains("64") && shard.to_string().contains('7'));
        assert!(NetError::Io("refused".into())
            .to_string()
            .contains("refused"));
    }

    #[test]
    fn io_errors_convert_with_their_message() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope");
        assert_eq!(NetError::from(io), NetError::Io("nope".to_string()));
    }
}
