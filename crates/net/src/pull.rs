//! The "fastest q of n replies" primitive behind `get_gradients()` / `get_models()`.

use crate::{NetError, NetResult, NodeId};

/// One pull round: a set of peers, each with the simulated time at which its
/// reply arrives at the requester.
///
/// The paper's communication abstractions (§3.2, *Networking*) issue parallel
/// pull RPCs and return the fastest `q` replies: `q = n` is the synchronous,
/// fault-free case; `q = n − f` is the asynchronous case that keeps the
/// protocol live despite `f` silent or slow nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct PullRound {
    replies: Vec<(NodeId, f64)>,
}

impl PullRound {
    /// Creates a round from `(peer, reply_arrival_time_seconds)` pairs.
    ///
    /// Peers that will never reply (crashed) should simply be omitted.
    pub fn new(replies: Vec<(NodeId, f64)>) -> Self {
        PullRound { replies }
    }

    /// Number of peers that will eventually reply.
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// Whether no peer will reply.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }

    /// Returns the `q` fastest repliers and the simulated time at which the
    /// `q`-th reply arrives (i.e. when the requester can proceed).
    ///
    /// `q = 0` asks for nothing and returns an empty selection at zero
    /// elapsed time. If `q` exceeds the number of available replies, all
    /// replies are returned — callers that need a hard guarantee should use
    /// [`PullRound::try_fastest`].
    pub fn fastest(&self, q: usize) -> (Vec<NodeId>, f64) {
        let mut sorted = self.replies.clone();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        sorted.truncate(q.min(sorted.len()));
        let elapsed = sorted.last().map(|&(_, t)| t).unwrap_or(0.0);
        (sorted.into_iter().map(|(id, _)| id).collect(), elapsed)
    }

    /// Like [`PullRound::fastest`], but fails when fewer than `q` peers can reply.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotEnoughReplies`] when fewer than `q` replies are
    /// available — the liveness condition the paper states as needing `q + f`
    /// deployed nodes in asynchronous settings.
    pub fn try_fastest(&self, q: usize) -> NetResult<(Vec<NodeId>, f64)> {
        if self.replies.len() < q {
            return Err(NetError::NotEnoughReplies {
                requested: q,
                available: self.replies.len(),
            });
        }
        Ok(self.fastest(q))
    }

    /// The time the slowest reply arrives (the fully synchronous wait).
    pub fn slowest_arrival(&self) -> f64 {
        self.replies.iter().map(|&(_, t)| t).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round() -> PullRound {
        PullRound::new(vec![
            (NodeId(0), 0.5),
            (NodeId(1), 0.1),
            (NodeId(2), 0.9),
            (NodeId(3), 0.3),
        ])
    }

    #[test]
    fn fastest_returns_the_q_earliest_replies() {
        let (ids, elapsed) = round().fastest(2);
        assert_eq!(ids, vec![NodeId(1), NodeId(3)]);
        assert!((elapsed - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fastest_with_q_equal_n_waits_for_the_slowest() {
        let (ids, elapsed) = round().fastest(4);
        assert_eq!(ids.len(), 4);
        assert!((elapsed - 0.9).abs() < 1e-12);
        assert!((round().slowest_arrival() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn oversized_q_is_clamped_but_try_fastest_errors() {
        let (ids, _) = round().fastest(10);
        assert_eq!(ids.len(), 4);
        assert!(matches!(
            round().try_fastest(10),
            Err(NetError::NotEnoughReplies {
                requested: 10,
                available: 4
            })
        ));
        assert!(round().try_fastest(4).is_ok());
    }

    #[test]
    fn waiting_for_fewer_replies_never_takes_longer() {
        let r = round();
        let (_, t2) = r.fastest(2);
        let (_, t3) = r.fastest(3);
        let (_, t4) = r.fastest(4);
        assert!(t2 <= t3 && t3 <= t4);
    }

    #[test]
    fn fastest_zero_returns_an_empty_selection_at_zero_time() {
        // Regression: `fastest(0)` used to clamp to 1 and silently return the
        // single fastest reply after a nonzero wait.
        let (ids, elapsed) = round().fastest(0);
        assert!(ids.is_empty());
        assert_eq!(elapsed, 0.0);
        let (ids, elapsed) = round().try_fastest(0).unwrap();
        assert!(ids.is_empty());
        assert_eq!(elapsed, 0.0);
    }

    #[test]
    fn empty_round_behaves() {
        let r = PullRound::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        let (ids, t) = r.fastest(1);
        assert!(ids.is_empty());
        assert_eq!(t, 0.0);
        assert!(r.try_fastest(1).is_err());
    }
}
