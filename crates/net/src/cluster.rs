//! Cluster topology: node identities, roles, devices and fault state.

use crate::{Device, NetError, NetResult};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The job a node performs, mirroring the paper's cluster definition files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Role {
    /// Parameter-server replica.
    Server,
    /// Gradient-computing worker.
    Worker,
}

/// Static description of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// Server or worker.
    pub role: Role,
    /// Compute device class.
    pub device: Device,
    /// Multiplier on the node's computation time (1.0 = nominal, >1 = straggler).
    pub straggler_factor: f64,
}

/// A simulated cluster: the node inventory plus dynamic fault state.
///
/// This plays the role of the paper's *Controller* cluster definition (§3.2):
/// which machines exist, which are servers and which are workers, and — for
/// experiments — which of them are currently crashed or partitioned.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    nodes: Vec<NodeInfo>,
    crashed: HashSet<NodeId>,
    partitions: HashSet<(NodeId, NodeId)>,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// All nodes, in registration order.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Ids of all server nodes.
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Server)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all worker nodes.
    pub fn workers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Worker)
            .map(|n| n.id)
            .collect()
    }

    /// Looks up a node's static description.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if the id is not registered.
    pub fn info(&self, id: NodeId) -> NetResult<NodeInfo> {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .copied()
            .ok_or(NetError::UnknownNode(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Marks a node as crashed; it no longer replies to any pull.
    pub fn crash(&mut self, id: NodeId) {
        self.crashed.insert(id);
    }

    /// Restores a crashed node.
    pub fn recover(&mut self, id: NodeId) {
        self.crashed.remove(&id);
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed.contains(&id)
    }

    /// Cuts the bidirectional link between two nodes.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(ordered(a, b));
    }

    /// Heals a previously cut link.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&ordered(a, b));
    }

    /// Whether `to` can currently answer a request from `from`.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        !self.crashed.contains(&to)
            && !self.crashed.contains(&from)
            && !self.partitions.contains(&ordered(from, to))
    }

    /// Sets a node's straggler factor (values > 1 slow it down).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if the id is not registered.
    pub fn set_straggler(&mut self, id: NodeId, factor: f64) -> NetResult<()> {
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or(NetError::UnknownNode(id))?;
        node.straggler_factor = factor.max(0.0);
        Ok(())
    }

    /// Live (non-crashed) peers of `from` among `candidates`.
    pub fn reachable_peers(&self, from: NodeId, candidates: &[NodeId]) -> Vec<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| c != from && self.reachable(from, c))
            .collect()
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Builder for [`Cluster`] topologies.
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    nodes: Vec<NodeInfo>,
    next_id: u32,
}

impl ClusterBuilder {
    /// Adds `count` server replicas running on `device`.
    pub fn servers(mut self, count: usize, device: Device) -> Self {
        for _ in 0..count {
            self.push(Role::Server, device);
        }
        self
    }

    /// Adds `count` workers running on `device`.
    pub fn workers(mut self, count: usize, device: Device) -> Self {
        for _ in 0..count {
            self.push(Role::Worker, device);
        }
        self
    }

    /// Adds a single node with an explicit role and device.
    pub fn node(mut self, role: Role, device: Device) -> Self {
        self.push(role, device);
        self
    }

    fn push(&mut self, role: Role, device: Device) {
        self.nodes.push(NodeInfo {
            id: NodeId(self.next_id),
            role,
            device,
            straggler_factor: 1.0,
        });
        self.next_id += 1;
    }

    /// Finalises the cluster.
    pub fn build(self) -> Cluster {
        Cluster {
            nodes: self.nodes,
            crashed: HashSet::new(),
            partitions: HashSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::builder()
            .servers(3, Device::Cpu)
            .workers(5, Device::Gpu)
            .build()
    }

    #[test]
    fn builder_assigns_sequential_ids_and_roles() {
        let c = cluster();
        assert_eq!(c.len(), 8);
        assert_eq!(c.servers().len(), 3);
        assert_eq!(c.workers().len(), 5);
        assert_eq!(c.nodes()[0].id, NodeId(0));
        assert_eq!(c.nodes()[7].id, NodeId(7));
        assert_eq!(c.info(NodeId(4)).unwrap().role, Role::Worker);
        assert!(c.info(NodeId(99)).is_err());
    }

    #[test]
    fn crash_and_recover_toggle_reachability() {
        let mut c = cluster();
        let w = c.workers()[0];
        let s = c.servers()[0];
        assert!(c.reachable(s, w));
        c.crash(w);
        assert!(c.is_crashed(w));
        assert!(!c.reachable(s, w));
        assert!(!c.reachable(w, s), "a crashed node cannot send either");
        c.recover(w);
        assert!(c.reachable(s, w));
    }

    #[test]
    fn partitions_are_bidirectional_and_healable() {
        let mut c = cluster();
        let a = NodeId(0);
        let b = NodeId(5);
        c.partition(a, b);
        assert!(!c.reachable(a, b));
        assert!(!c.reachable(b, a));
        assert!(c.reachable(a, NodeId(6)));
        c.heal(b, a);
        assert!(c.reachable(a, b));
    }

    #[test]
    fn straggler_factor_is_persisted_and_clamped() {
        let mut c = cluster();
        let w = c.workers()[1];
        c.set_straggler(w, 3.0).unwrap();
        assert_eq!(c.info(w).unwrap().straggler_factor, 3.0);
        c.set_straggler(w, -1.0).unwrap();
        assert_eq!(c.info(w).unwrap().straggler_factor, 0.0);
        assert!(c.set_straggler(NodeId(42), 1.0).is_err());
    }

    #[test]
    fn reachable_peers_excludes_self_and_crashed() {
        let mut c = cluster();
        let workers = c.workers();
        c.crash(workers[2]);
        let peers = c.reachable_peers(workers[0], &workers);
        assert!(!peers.contains(&workers[0]));
        assert!(!peers.contains(&workers[2]));
        assert_eq!(peers.len(), 3);
    }

    #[test]
    fn empty_cluster_is_empty() {
        let c = Cluster::builder().build();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
