//! # garfield-net
//!
//! Simulated cluster fabric for the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021).
//!
//! The paper deploys on Grid5000 over gRPC (TensorFlow) and gloo/nccl
//! collectives (PyTorch). This crate replaces that physical substrate with an
//! in-process simulation that preserves what the paper's evaluation actually
//! measures (see `DESIGN.md` §1):
//!
//! * a [`Cluster`] topology of [`NodeId`]s, each with a [`Device`] (CPU/GPU),
//!   a link profile and an optional straggler factor;
//! * a [`CostModel`] translating *bytes moved* and *work done* into simulated
//!   seconds, so message counts × sizes × link characteristics drive the
//!   throughput results exactly as they do in the paper;
//! * a [`SimClock`] accumulating simulated time per node;
//! * fault injection: crash a node, delay it, or partition links;
//! * [`PullRound`]: the "fastest `q` out of `n` replies" primitive behind the
//!   paper's `get_gradients()` / `get_models()` abstractions;
//! * a real, thread-safe [`Router`] of byte messages (pull-based
//!   request/response over channels) used by the integration tests and the
//!   quickstart example to demonstrate the communication layer end to end;
//! * the compact binary [`WireMessage`] format (version byte, round tag,
//!   length-prefixed `f32` payload) that the threaded `garfield-runtime`
//!   actors exchange over the router when training runs for real;
//! * the [`Transport`] trait abstracting the message substrate (send/recv
//!   of [`Envelope`]s, crash silence, per-peer [`PeerCounters`]) with
//!   [`RouterTransport`] as the in-process implementation — the TCP
//!   implementation lives in `garfield-transport` and lets the same actors
//!   span OS processes.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_net::{Cluster, Device, CostModel, PullRound};
//!
//! let cluster = Cluster::builder()
//!     .servers(2, Device::Cpu)
//!     .workers(4, Device::Cpu)
//!     .build();
//! assert_eq!(cluster.workers().len(), 4);
//!
//! // Fastest 3 of 4 replies with per-reply simulated latencies.
//! let round = PullRound::new(vec![(cluster.workers()[0], 0.3), (cluster.workers()[1], 0.1),
//!                                 (cluster.workers()[2], 0.2), (cluster.workers()[3], 0.9)]);
//! let (chosen, elapsed) = round.fastest(3);
//! assert_eq!(chosen.len(), 3);
//! assert!((elapsed - 0.3).abs() < 1e-9);
//! let _ = CostModel::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod cost;
mod error;
mod pull;
mod router;
mod time;
mod transport;
mod wire;

pub use cluster::{Cluster, ClusterBuilder, NodeId, NodeInfo, Role};
pub use cost::{CostModel, Device, LinkProfile};
pub use error::{NetError, NetResult};
pub use pull::PullRound;
pub use router::{Envelope, Router, RouterHandle};
pub use time::SimClock;
pub use transport::{
    record_wire_recv, record_wire_send, PeerCounterMap, PeerCounters, RouterTransport, Transport,
};
pub use wire::{
    stamp_trace, unix_micros, MsgKind, PayloadPool, WireHeader, WireMessage, MAX_WIRE_VALUES,
    WIRE_HEADER_BYTES, WIRE_VERSION,
};
