//! Property tests for the shard boundary math: a [`ShardMap`] must tile
//! `[0, d)` exactly for *any* admissible `(dimension, shards)` pair, reject
//! every degenerate geometry loudly, and a shard slice must survive the wire
//! (encode → decode with the v3 shard header) bit for bit — including NaNs,
//! infinities and denormals, which is why every comparison here is on raw
//! bit patterns, never on float equality.

use garfield_core::ShardMap;
use garfield_net::{MsgKind, WireMessage};
use garfield_tensor::GradientView;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_maps_tile_the_dimension_with_no_gap_or_overlap(
        dimension in 1usize..50_000,
        shard_sel in 1usize..64,
    ) {
        let shards = shard_sel.min(dimension);
        let map = ShardMap::new(dimension, shards).unwrap();
        prop_assert_eq!(map.dimension(), dimension);
        prop_assert_eq!(map.shard_count(), shards);
        prop_assert_eq!(map.specs().len(), shards);
        // Contiguous tiling: every shard starts exactly where the previous
        // one ended, is non-empty, and the lengths are near-even.
        let mut next = 0usize;
        for (i, spec) in map.specs().iter().enumerate() {
            prop_assert_eq!(spec.index, i);
            prop_assert_eq!(spec.offset, next);
            prop_assert!(spec.len >= 1, "shard {i} is empty");
            prop_assert!(
                spec.len == dimension / shards || spec.len == dimension / shards + 1,
                "shard {} length {} is not near-even for d={} s={}",
                i, spec.len, dimension, shards
            );
            prop_assert_eq!(spec.range(), next..next + spec.len);
            next += spec.len;
        }
        prop_assert_eq!(next, dimension, "tiling must cover [0, d) exactly");
    }

    #[test]
    fn degenerate_geometry_is_rejected_loudly(
        dimension in 0usize..256,
        shards in 0usize..512,
    ) {
        match ShardMap::new(dimension, shards) {
            Ok(map) => {
                prop_assert!(dimension >= 1 && (1..=dimension).contains(&shards));
                prop_assert_eq!(map.shard_count(), shards);
            }
            Err(err) => {
                prop_assert!(
                    dimension == 0 || shards == 0 || shards > dimension,
                    "admissible geometry d={dimension} s={shards} rejected: {err}"
                );
                // "Loudly": the error names the problem, it is not a bare code.
                let text = err.to_string();
                prop_assert!(
                    text.contains("zero-dimensional")
                        || text.contains("at least 1")
                        || text.contains("empty shards"),
                    "unhelpful rejection for d={dimension} s={shards}: {text}"
                );
            }
        }
    }

    #[test]
    fn shard_slices_round_trip_the_wire_bit_identically(
        bit_patterns in prop::collection::vec(0u32..=u32::MAX, 1..2048),
        shard_sel in 1usize..16,
        round in 0u64..=u64::MAX,
    ) {
        // Hostile payloads on purpose: arbitrary bit patterns cover NaN
        // boxes, ±inf and denormals that float comparison would mangle.
        let full: Vec<f32> = bit_patterns.iter().copied().map(f32::from_bits).collect();
        let dimension = full.len();
        let shards = shard_sel.min(dimension);
        let map = ShardMap::new(dimension, shards).unwrap();

        let mut slices: Vec<Vec<f32>> = Vec::with_capacity(shards);
        for spec in map.specs() {
            let msg = WireMessage::new(
                MsgKind::GradientReply,
                round,
                f32::from_bits(bit_patterns[spec.offset]),
                spec.slice(&full).to_vec(),
            )
            .with_shard(spec.index as u16, spec.offset as u32, spec.len as u32);
            let encoded = msg.encode();

            // The shard header survives a peek without touching the payload…
            let header = WireMessage::peek(&encoded).unwrap();
            prop_assert_eq!(header.shard as usize, spec.index);
            prop_assert_eq!(header.coord_offset as usize, spec.offset);
            prop_assert_eq!(header.coord_len as usize, spec.len);
            prop_assert_eq!(header.round, round);

            // …and the decoded slice is the original, bit for bit.
            let back = WireMessage::decode(&encoded).unwrap();
            prop_assert_eq!(back.shard as usize, spec.index);
            prop_assert_eq!(back.coord_offset as usize, spec.offset);
            prop_assert_eq!(back.coord_len as usize, spec.len);
            let sent = spec.slice(&full);
            prop_assert_eq!(back.values.len(), sent.len());
            for (got, want) in back.values.iter().zip(sent) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
            prop_assert_eq!(GradientView::from(&back.values[..]).len(), spec.len);
            slices.push(back.values);
        }

        // Stitching the decoded slices reproduces the full vector exactly.
        let stitched = map.reassemble(&slices).unwrap();
        prop_assert_eq!(stitched.len(), dimension);
        for (got, want) in stitched.iter().zip(&full) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
