//! Property tests of the crash-recovery checkpoint format.
//!
//! A checkpoint is only worth writing if loading it back reproduces the
//! training state *exactly* — including the hostile corners: NaN and ±inf
//! model coordinates (a run that diverged, or Byzantine state adopted over
//! the wire), signed zeros, subnormals, extreme RNG state words. And a file
//! that was truncated or corrupted by a dying machine must fail loudly,
//! never resume a half-read chimera.

use garfield_core::checkpoint::CHECKPOINT_FILE;
use garfield_core::Checkpoint;
use proptest::prelude::*;

/// Maps a selector to a "hostile" float: non-finite values, signed zeros and
/// subnormals alongside ordinary magnitudes.
fn special_value(selector: u8, magnitude: f32) -> f32 {
    match selector % 8 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f32::MIN_POSITIVE / 2.0, // subnormal
        6 => magnitude,
        _ => -magnitude,
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// A vector of hostile floats (selector picks the special value class).
fn floats(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((0u8..=255, -1.0e30f32..1.0e30), 0..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(sel, mag)| special_value(sel, mag))
            .collect()
    })
}

/// `Option<[u64; 4]>` RNG state words over the full word range.
fn rng_words() -> impl Strategy<Value = Option<[u64; 4]>> {
    (
        0u8..2,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
    )
        .prop_map(|(flag, a, b, c, d)| (flag == 1).then_some([a, b, c, d]))
}

fn checkpoint_strategy() -> impl Strategy<Value = Checkpoint> {
    (
        (
            1usize..13,
            0u64..=u64::MAX,
            0u64..1_000_000,
            0u64..=u64::MAX,
        ),
        floats(64),
        (0u8..2, floats(64)),
        rng_words(),
        rng_words(),
    )
        .prop_map(
            |((system_len, seed, round, opt_steps), model, (vflag, velocity), fr, ar)| {
                Checkpoint {
                    // Length 1..=12 walks every word-padding residue of the
                    // wire encoding.
                    system: "s".repeat(system_len),
                    seed,
                    round,
                    opt_steps,
                    model,
                    velocity: (vflag == 1).then_some(velocity),
                    fault_rng: fr,
                    attack_rng: ar,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn binary_round_trip_is_bit_exact(cp in checkpoint_strategy()) {
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        prop_assert_eq!(&back.system, &cp.system);
        prop_assert_eq!(back.seed, cp.seed);
        prop_assert_eq!(back.round, cp.round);
        prop_assert_eq!(back.opt_steps, cp.opt_steps);
        prop_assert_eq!(bits(&back.model), bits(&cp.model));
        prop_assert_eq!(back.velocity.is_some(), cp.velocity.is_some());
        if let (Some(b), Some(c)) = (&back.velocity, &cp.velocity) {
            prop_assert_eq!(bits(b), bits(c));
        }
        prop_assert_eq!(back.fault_rng, cp.fault_rng);
        prop_assert_eq!(back.attack_rng, cp.attack_rng);
    }

    #[test]
    fn wire_words_round_trip_is_bit_exact(cp in checkpoint_strategy()) {
        // The StateChunk transport: the record bit-cast into f32 payload
        // words (some of which alias signaling NaNs) and back.
        let back = Checkpoint::from_wire_words(&cp.to_wire_words()).unwrap();
        prop_assert_eq!(&back.system, &cp.system);
        prop_assert_eq!(bits(&back.model), bits(&cp.model));
        prop_assert_eq!(back.round, cp.round);
        prop_assert_eq!(back.fault_rng, cp.fault_rng);
    }

    #[test]
    fn save_load_round_trip_is_bit_exact(cp in checkpoint_strategy()) {
        // Unique directory per case: proptest shrinking replays cases
        // concurrently with nothing shared.
        let dir = std::env::temp_dir().join(format!(
            "garfield-ckpt-prop-{}-{}",
            std::process::id(),
            cp.seed ^ cp.round
        ));
        let _ = std::fs::remove_dir_all(&dir);
        cp.save(&dir).unwrap();
        let back = Checkpoint::load(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(bits(&back.model), bits(&cp.model));
        prop_assert_eq!(back.opt_steps, cp.opt_steps);
        prop_assert_eq!(back.velocity.map(|v| bits(&v)), cp.velocity.as_deref().map(bits));
    }

    #[test]
    fn every_truncation_is_a_decode_error(cp in checkpoint_strategy(), cut in 0usize..512) {
        // A machine can die mid-write; the atomic rename prevents a torn
        // file from ever being the *current* checkpoint, and this property
        // guarantees that even a torn file read some other way can never
        // decode into a plausible state.
        let encoded = cp.encode();
        prop_assume!(!encoded.is_empty());
        let cut = cut % encoded.len();
        prop_assert!(Checkpoint::decode(&encoded[..cut]).is_err());
    }

    #[test]
    fn trailing_garbage_is_a_decode_error(cp in checkpoint_strategy(), junk in 1usize..16) {
        let mut encoded = cp.encode();
        encoded.extend(vec![0xAAu8; junk]);
        prop_assert!(Checkpoint::decode(&encoded).is_err());
    }

    #[test]
    fn corrupt_header_bytes_never_panic(
        cp in checkpoint_strategy(),
        offset in 0usize..16,
        value in 0u8..=255,
    ) {
        // Flipping any of the first bytes (magic, version, lengths) must
        // produce a clean error or a decode that simply disagrees — never a
        // panic or an over-read.
        let mut encoded = cp.encode();
        let offset = offset % encoded.len();
        encoded[offset] = value;
        let _ = Checkpoint::decode(&encoded);
    }
}

#[test]
fn corrupt_file_on_disk_fails_loudly() {
    let dir = std::env::temp_dir().join(format!("garfield-ckpt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(CHECKPOINT_FILE), b"GFCKnot really a checkpoint").unwrap();
    assert!(Checkpoint::load(&dir).is_err());
    assert!(
        Checkpoint::load_if_present(&dir).is_err(),
        "a corrupt checkpoint must not be mistaken for a fresh start"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
