//! Property tests for telemetry JSON emission.
//!
//! The regression being pinned: `TrainingTrace::to_json` must route every
//! number through `garfield_core::json`, so a diverged run's NaN loss or an
//! infinite timing serializes as `null` (the `serde_json` convention) rather
//! than the invalid literals `NaN`/`inf` that ad-hoc `write!("{}")`
//! formatting produces. Every emitted document must therefore (a) parse as
//! well-formed JSON and (b) round-trip: finite values exactly, non-finite
//! values as NaN.

use garfield_core::json;
use garfield_core::{AccuracyPoint, IterationTiming, TrainingTrace};
use proptest::prelude::*;

/// Maps a selector to a float from the awkward corners of the f64 space:
/// non-finites, signed zeros, subnormals, extremes — or the plain finite
/// value for the common case.
fn special_f64(sel: u8, finite: f64) -> f64 {
    match sel % 10 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE / 4.0, // subnormal
        6 => f64::MAX,
        7 => f64::MIN_POSITIVE,
        _ => finite,
    }
}

fn special_f32(sel: u8, finite: f32) -> f32 {
    special_f64(sel, finite as f64) as f32
}

/// Exact equality that treats every NaN as equal (round-tripping maps all
/// non-finite inputs to NaN, by design).
fn roundtrips_f64(written: f64, read: f64) -> bool {
    if written.is_finite() {
        written.to_bits() == read.to_bits()
    } else {
        read.is_nan()
    }
}

fn roundtrips_f32(written: f32, read: f32) -> bool {
    if written.is_finite() {
        written.to_bits() == read.to_bits()
    } else {
        read.is_nan()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trace_json_round_trips_any_float_including_non_finite(
        timings in proptest::collection::vec(
            ((0u8..10, 0u8..10, 0u8..10), (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6)),
            0..6,
        ),
        points in proptest::collection::vec(
            (
                0usize..1000,
                (0u8..10, 0u8..10, 0u8..10),
                (0.0f64..1e6, 0.0f32..1.0, 0.0f32..100.0),
            ),
            0..6,
        ),
        batch in 0usize..10_000,
        system_letters in proptest::collection::vec(0u8..26, 1..8),
    ) {
        let system: String = system_letters.iter().map(|c| (b'a' + c) as char).collect();
        let mut trace = TrainingTrace::new(system.clone(), batch);
        for ((s1, s2, s3), (a, b, c)) in &timings {
            trace.iterations.push(IterationTiming {
                computation: special_f64(*s1, *a),
                communication: special_f64(*s2, *b),
                aggregation: special_f64(*s3, *c),
            });
        }
        for (iteration, (s1, s2, s3), (t, acc, loss)) in &points {
            trace.accuracy.push(AccuracyPoint {
                iteration: *iteration,
                sim_time: special_f64(*s1, *t),
                accuracy: special_f32(*s2, *acc),
                loss: special_f32(*s3, *loss),
            });
        }

        let text = trace.to_json();
        // (a) The emission is well-formed JSON no matter what floats went in.
        prop_assert!(json::parse(&text).is_ok(), "emitted invalid JSON: {text}");

        // (b) The reader accepts its own writer's output and preserves
        // every value (non-finite ↦ NaN).
        let back = TrainingTrace::from_json(&text).unwrap();
        prop_assert_eq!(&back.system, &trace.system);
        prop_assert_eq!(back.effective_batch, trace.effective_batch);
        prop_assert_eq!(back.iterations.len(), trace.iterations.len());
        prop_assert_eq!(back.accuracy.len(), trace.accuracy.len());
        for (w, r) in trace.iterations.iter().zip(back.iterations.iter()) {
            prop_assert!(roundtrips_f64(w.computation, r.computation));
            prop_assert!(roundtrips_f64(w.communication, r.communication));
            prop_assert!(roundtrips_f64(w.aggregation, r.aggregation));
        }
        for (w, r) in trace.accuracy.iter().zip(back.accuracy.iter()) {
            prop_assert_eq!(w.iteration, r.iteration);
            prop_assert!(roundtrips_f64(w.sim_time, r.sim_time));
            prop_assert!(roundtrips_f32(w.accuracy, r.accuracy));
            prop_assert!(roundtrips_f32(w.loss, r.loss));
        }
    }

    #[test]
    fn write_value_emission_always_reparses_to_the_same_value(
        numbers in proptest::collection::vec((0u8..10, -1e9f64..1e9), 0..8),
        strings in proptest::collection::vec(
            // Printable ASCII, including the quote/backslash escaping cases.
            proptest::collection::vec(32u8..127, 0..12),
            0..4,
        ),
    ) {
        use garfield_core::json::Value;
        let mut items: Vec<Value> = numbers
            .iter()
            .map(|(sel, v)| Value::Number(special_f64(*sel, *v)))
            .collect();
        items.extend(
            strings
                .iter()
                .map(|bytes| Value::String(bytes.iter().map(|&b| b as char).collect())),
        );
        let doc = Value::Array(items);

        let mut text = String::new();
        json::write_value(&mut text, &doc);
        let back = json::parse(&text).unwrap();

        match (&doc, &back) {
            (Value::Array(written), Value::Array(read)) => {
                prop_assert_eq!(written.len(), read.len());
                for (w, r) in written.iter().zip(read.iter()) {
                    match (w, r) {
                        // Non-finite numbers degrade to null by design.
                        (Value::Number(n), Value::Null) => prop_assert!(!n.is_finite()),
                        (Value::Number(w), Value::Number(r)) => {
                            prop_assert!(roundtrips_f64(*w, *r));
                        }
                        (w, r) => prop_assert_eq!(w, r),
                    }
                }
            }
            _ => prop_assert!(false, "array did not reparse as array"),
        }
    }
}
