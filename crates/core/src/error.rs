//! Error type for the Garfield core library.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced while configuring or running a Garfield deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The experiment configuration is inconsistent (e.g. `fw >= nw`).
    InvalidConfig(String),
    /// A lower layer (tensor / ml) rejected an operation.
    Ml(String),
    /// The aggregation layer rejected an operation.
    Aggregation(String),
    /// The network fabric rejected an operation.
    Net(String),
    /// A trace or report could not be serialized / deserialized.
    Serialization(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Ml(msg) => write!(f, "ml error: {msg}"),
            CoreError::Aggregation(msg) => write!(f, "aggregation error: {msg}"),
            CoreError::Net(msg) => write!(f, "network error: {msg}"),
            CoreError::Serialization(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<garfield_ml::MlError> for CoreError {
    fn from(e: garfield_ml::MlError) -> Self {
        CoreError::Ml(e.to_string())
    }
}

impl From<garfield_aggregation::AggregationError> for CoreError {
    fn from(e: garfield_aggregation::AggregationError) -> Self {
        CoreError::Aggregation(e.to_string())
    }
}

impl From<garfield_net::NetError> for CoreError {
    fn from(e: garfield_net::NetError) -> Self {
        CoreError::Net(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        let ml: CoreError = garfield_ml::MlError::UnknownModel("m".into()).into();
        assert!(matches!(ml, CoreError::Ml(_)));
        let agg: CoreError = garfield_aggregation::AggregationError::EmptyInput.into();
        assert!(matches!(agg, CoreError::Aggregation(_)));
        let net: CoreError = garfield_net::NetError::Timeout.into();
        assert!(matches!(net, CoreError::Net(_)));
    }
}
