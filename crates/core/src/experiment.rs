//! Experiment configuration: the knobs of a Garfield deployment.

use crate::{json, CoreError, CoreResult};
use garfield_aggregation::GarKind;
use garfield_attacks::AttackKind;
use garfield_ml::ShardStrategy;
use garfield_net::Device;
use std::fmt::Write as _;

/// The deployments evaluated in the paper (§5 and §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SystemKind {
    /// Vanilla parameter server with plain averaging (TensorFlow / PyTorch baseline).
    Vanilla,
    /// AggregaThor-style baseline: single trusted server, Multi-Krum, older runtime.
    AggregaThor,
    /// Crash-tolerant primary/backup replication of the server (strawman of §6.2).
    CrashTolerant,
    /// Single Server, Multiple Workers — Byzantine workers only (§5.1).
    Ssmw,
    /// Multiple Servers, Multiple Workers — Byzantine servers and workers (§5.2).
    Msmw,
    /// Decentralized (peer-to-peer) learning (§5.3).
    Decentralized,
    /// Speculative fast-path aggregation (arXiv:1911.07537): SSMW topology,
    /// but each round takes the cheap average path plus a consistency check
    /// and permanently falls back to the configured robust `gradient_gar` on
    /// suspicion. Written `speculative` or `speculative(<gar>)` on the CLI.
    Speculative,
}

impl SystemKind {
    /// All systems, in the order the paper's figures list them (the
    /// speculative extension last).
    pub fn all() -> [SystemKind; 7] {
        [
            SystemKind::Vanilla,
            SystemKind::CrashTolerant,
            SystemKind::Ssmw,
            SystemKind::Msmw,
            SystemKind::Decentralized,
            SystemKind::AggregaThor,
            SystemKind::Speculative,
        ]
    }

    /// Canonical lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SystemKind::Vanilla => "vanilla",
            SystemKind::AggregaThor => "aggregathor",
            SystemKind::CrashTolerant => "crash-tolerant",
            SystemKind::Ssmw => "ssmw",
            SystemKind::Msmw => "msmw",
            SystemKind::Decentralized => "decentralized",
            SystemKind::Speculative => "speculative",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SystemKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SystemKind::all()
            .into_iter()
            .find(|k| k.as_str() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown system '{s}' (expected one of vanilla, crash-tolerant, ssmw, msmw, decentralized, aggregathor, speculative)"))
    }
}

/// Full description of one training experiment.
///
/// Defaults follow the paper's PyTorch setup (§6.1): 10 workers of which 3 may
/// be Byzantine, 3 servers of which 1 may be Byzantine, batch size 100.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentConfig {
    /// Trainable model name (see `garfield_ml::zoo::trainable_model`).
    pub model: String,
    /// Number of synthetic samples to generate for the training set.
    pub dataset_samples: usize,
    /// Number of synthetic samples in the held-out test set.
    pub test_samples: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Total number of workers (`n_w`).
    pub nw: usize,
    /// Declared maximum number of Byzantine workers (`f_w`).
    pub fw: usize,
    /// Total number of parameter-server replicas (`n_ps`).
    pub nps: usize,
    /// Declared maximum number of Byzantine servers (`f_ps`).
    pub fps: usize,
    /// Number of workers that actually behave Byzantine this run.
    pub actual_byzantine_workers: usize,
    /// Number of servers that actually behave Byzantine this run.
    pub actual_byzantine_servers: usize,
    /// Attack installed on Byzantine workers.
    pub worker_attack: Option<AttackKind>,
    /// Attack installed on Byzantine servers.
    pub server_attack: Option<AttackKind>,
    /// GAR used to aggregate gradients.
    pub gradient_gar: GarKind,
    /// GAR used to aggregate models between server replicas.
    pub model_gar: GarKind,
    /// Device class of every node.
    pub device: Device,
    /// How the dataset is partitioned across workers.
    pub shard_strategy: ShardStrategy,
    /// Number of contiguous *parameter* shards the model is split across on
    /// the live substrate (1 = classic unsharded parameter server). Each
    /// shard gets its own server process owning one slice of the flat
    /// parameter vector; `shards > 1` requires a coordinate-decomposable
    /// gradient GAR and a single-replica system (not MSMW). Distinct from
    /// [`ExperimentConfig::shard_strategy`], which shards the *dataset*
    /// across workers.
    pub shards: usize,
    /// Number of training iterations.
    pub iterations: usize,
    /// Evaluate accuracy every this many iterations (0 disables evaluation).
    pub eval_every: usize,
    /// Extra peer-to-peer contraction rounds per iteration (decentralized, non-IID).
    pub contraction_steps: usize,
    /// Whether the network is assumed synchronous. Synchronous deployments
    /// wait for all `nw` gradients (paper's PyTorch Multi-Krum variant);
    /// asynchronous ones proceed after `nw − fw` (paper's TensorFlow Bulyan
    /// variant).
    pub synchronous: bool,
    /// RNG seed controlling data synthesis, initialisation, attacks and jitter.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            model: "tiny".into(),
            dataset_samples: 512,
            test_samples: 256,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.0,
            nw: 10,
            fw: 3,
            nps: 3,
            fps: 1,
            actual_byzantine_workers: 0,
            actual_byzantine_servers: 0,
            worker_attack: None,
            server_attack: None,
            gradient_gar: GarKind::MultiKrum,
            model_gar: GarKind::Median,
            device: Device::Cpu,
            shard_strategy: ShardStrategy::Iid,
            shards: 1,
            iterations: 30,
            eval_every: 10,
            contraction_steps: 0,
            synchronous: true,
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// A small, fast configuration used by tests and the quickstart example.
    pub fn small() -> Self {
        ExperimentConfig {
            model: "tiny".into(),
            dataset_samples: 256,
            test_samples: 128,
            batch_size: 8,
            nw: 7,
            fw: 1,
            nps: 3,
            fps: 1,
            iterations: 20,
            eval_every: 5,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's TensorFlow/CPU setup: 18 workers (3 Byzantine), 6 servers (1 Byzantine).
    pub fn paper_cpu() -> Self {
        ExperimentConfig {
            nw: 18,
            fw: 3,
            nps: 6,
            fps: 1,
            batch_size: 32,
            gradient_gar: GarKind::Bulyan,
            model_gar: GarKind::Median,
            device: Device::Cpu,
            synchronous: false,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's PyTorch/GPU setup: 10 workers (3 Byzantine), 3 servers (1 Byzantine).
    pub fn paper_gpu() -> Self {
        ExperimentConfig {
            nw: 10,
            fw: 3,
            nps: 3,
            fps: 1,
            batch_size: 100,
            gradient_gar: GarKind::MultiKrum,
            model_gar: GarKind::Median,
            device: Device::Gpu,
            ..ExperimentConfig::default()
        }
    }

    /// Effective batch size per model update (`nw × batch_size`).
    pub fn effective_batch(&self) -> usize {
        self.nw * self.batch_size
    }

    /// Number of gradient replies a server waits for: all of them in the
    /// synchronous case, `nw − fw` when tolerating Byzantine workers.
    pub fn gradient_quorum(&self, system: SystemKind) -> usize {
        match system {
            SystemKind::Vanilla | SystemKind::CrashTolerant | SystemKind::AggregaThor => self.nw,
            SystemKind::Ssmw | SystemKind::Speculative => self.nw,
            SystemKind::Msmw | SystemKind::Decentralized => {
                if self.synchronous {
                    self.nw
                } else {
                    self.nw - self.fw
                }
            }
        }
    }

    /// Number of model replies a server waits for from its peers.
    pub fn model_quorum(&self) -> usize {
        self.nps.saturating_sub(self.fps).max(1)
    }

    /// Serializes the configuration to JSON.
    ///
    /// This is how `garfield-node` processes receive their experiment: the
    /// launcher writes the config once, every process parses the same bytes,
    /// and [`Deployment::new`](crate::Deployment::new) then derives
    /// bit-identical initial state in each of them. The `seed` is written as
    /// a decimal *string* so the full `u64` range survives the `f64`-backed
    /// JSON number representation.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"model\":");
        json::write_string(&mut out, &self.model);
        let _ = write!(
            out,
            ",\"dataset_samples\":{},\"test_samples\":{},\"batch_size\":{}",
            self.dataset_samples, self.test_samples, self.batch_size
        );
        out.push_str(",\"learning_rate\":");
        json::write_f32(&mut out, self.learning_rate);
        out.push_str(",\"momentum\":");
        json::write_f32(&mut out, self.momentum);
        let _ = write!(
            out,
            ",\"nw\":{},\"fw\":{},\"nps\":{},\"fps\":{},\"actual_byzantine_workers\":{},\"actual_byzantine_servers\":{}",
            self.nw, self.fw, self.nps, self.fps,
            self.actual_byzantine_workers, self.actual_byzantine_servers
        );
        for (key, attack) in [
            ("worker_attack", self.worker_attack),
            ("server_attack", self.server_attack),
        ] {
            let _ = write!(out, ",\"{key}\":");
            match attack {
                Some(kind) => json::write_string(&mut out, kind.as_str()),
                None => out.push_str("null"),
            }
        }
        out.push_str(",\"gradient_gar\":");
        json::write_string(&mut out, self.gradient_gar.as_str());
        out.push_str(",\"model_gar\":");
        json::write_string(&mut out, self.model_gar.as_str());
        out.push_str(",\"device\":");
        json::write_string(&mut out, self.device.as_str());
        out.push_str(",\"shard_strategy\":");
        json::write_string(&mut out, self.shard_strategy.as_str());
        let _ = write!(
            out,
            ",\"shards\":{},\"iterations\":{},\"eval_every\":{},\"contraction_steps\":{},\"synchronous\":{},\"seed\":\"{}\"}}",
            self.shards, self.iterations, self.eval_every, self.contraction_steps, self.synchronous, self.seed
        );
        out
    }

    /// Parses a configuration previously produced by
    /// [`ExperimentConfig::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] on malformed JSON, missing
    /// fields, or enum names no variant answers to.
    pub fn from_json(input: &str) -> CoreResult<Self> {
        let bad = |what: String| CoreError::Serialization(format!("config JSON: {what}"));
        let doc = json::parse(input).map_err(CoreError::Serialization)?;
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(json::Value::as_str)
                .ok_or_else(|| bad(format!("missing string field '{key}'")))
        };
        let usize_field = |key: &str| {
            doc.get(key)
                .and_then(json::Value::as_usize)
                .ok_or_else(|| bad(format!("missing integer field '{key}'")))
        };
        // `to_json` writes non-finite floats as `null` (like serde_json),
        // so the reader maps `null` back to NaN rather than rejecting a
        // document the writer itself produced.
        let f32_field = |key: &str| match doc.get(key) {
            Some(json::Value::Null) => Ok(f32::NAN),
            Some(field) => field
                .as_f64()
                .map(|v| v as f32)
                .ok_or_else(|| bad(format!("missing number field '{key}'"))),
            None => Err(bad(format!("missing number field '{key}'"))),
        };
        let attack_field = |key: &str| -> CoreResult<Option<AttackKind>> {
            match doc.get(key) {
                None | Some(json::Value::Null) => Ok(None),
                Some(value) => value
                    .as_str()
                    .ok_or_else(|| bad(format!("field '{key}' must be a string or null")))?
                    .parse::<AttackKind>()
                    .map(Some)
                    .map_err(bad),
            }
        };
        // The seed is written as a string (u64 > 2^53 would lose precision
        // as an f64-backed number) but a plain integral number is accepted
        // too, for hand-written configs.
        let seed = match doc.get("seed") {
            Some(json::Value::String(s)) => s
                .parse::<u64>()
                .map_err(|e| bad(format!("seed '{s}': {e}")))?,
            Some(json::Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            _ => return Err(bad("missing field 'seed' (string or integer)".into())),
        };
        Ok(ExperimentConfig {
            model: str_field("model")?.to_string(),
            dataset_samples: usize_field("dataset_samples")?,
            test_samples: usize_field("test_samples")?,
            batch_size: usize_field("batch_size")?,
            learning_rate: f32_field("learning_rate")?,
            momentum: f32_field("momentum")?,
            nw: usize_field("nw")?,
            fw: usize_field("fw")?,
            nps: usize_field("nps")?,
            fps: usize_field("fps")?,
            actual_byzantine_workers: usize_field("actual_byzantine_workers")?,
            actual_byzantine_servers: usize_field("actual_byzantine_servers")?,
            worker_attack: attack_field("worker_attack")?,
            server_attack: attack_field("server_attack")?,
            gradient_gar: str_field("gradient_gar")?
                .parse::<GarKind>()
                .map_err(|e| bad(e.to_string()))?,
            model_gar: str_field("model_gar")?
                .parse::<GarKind>()
                .map_err(|e| bad(e.to_string()))?,
            device: str_field("device")?.parse::<Device>().map_err(bad)?,
            shard_strategy: str_field("shard_strategy")?
                .parse::<ShardStrategy>()
                .map_err(bad)?,
            // Absent in configs written before parameter sharding existed:
            // default to the classic unsharded server.
            shards: match doc.get("shards") {
                None => 1,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| bad("field 'shards' must be an integer".into()))?,
            },
            iterations: usize_field("iterations")?,
            eval_every: usize_field("eval_every")?,
            contraction_steps: usize_field("contraction_steps")?,
            synchronous: doc
                .get("synchronous")
                .and_then(json::Value::as_bool)
                .ok_or_else(|| bad("missing boolean field 'synchronous'".into()))?,
            seed,
        })
    }

    /// Checks the configuration for internal consistency and for the
    /// Byzantine-resilience requirements of the chosen GARs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self, system: SystemKind) -> CoreResult<()> {
        if self.nw == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one worker is required".into(),
            ));
        }
        if self.batch_size == 0 || self.iterations == 0 {
            return Err(CoreError::InvalidConfig(
                "batch size and iteration count must be positive".into(),
            ));
        }
        if self.dataset_samples < self.nw {
            return Err(CoreError::InvalidConfig(format!(
                "{} samples cannot be sharded over {} workers",
                self.dataset_samples, self.nw
            )));
        }
        if self.actual_byzantine_workers > self.nw {
            return Err(CoreError::InvalidConfig(
                "more actual Byzantine workers than workers".into(),
            ));
        }
        if self.actual_byzantine_servers > self.nps {
            return Err(CoreError::InvalidConfig(
                "more actual Byzantine servers than servers".into(),
            ));
        }
        let needs_servers = matches!(system, SystemKind::CrashTolerant | SystemKind::Msmw);
        if needs_servers && self.nps == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "{system} requires at least one server"
            )));
        }
        // The speculative system wraps `gradient_gar` as its fallback; the
        // wrap demands a primitive Byzantine-resilient rule to fall back to.
        if system == SystemKind::Speculative
            && matches!(
                self.gradient_gar,
                GarKind::Average | GarKind::Speculative { .. }
            )
        {
            return Err(CoreError::InvalidConfig(format!(
                "speculative needs a primitive Byzantine-resilient gradient_gar \
                 to fall back to, not '{}'",
                self.gradient_gar
            )));
        }
        // Parameter sharding: only sound when applying the gradient GAR to
        // each slice independently equals slicing it applied to the full
        // vectors, and only wired for the single-replica live topologies
        // (each shard *is* a server; replicating shards is the MSMW
        // open item, not this one).
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig("shards must be at least 1".into()));
        }
        if self.shards > 1 {
            if !matches!(
                system,
                SystemKind::Vanilla | SystemKind::Ssmw | SystemKind::Speculative
            ) {
                return Err(CoreError::InvalidConfig(format!(
                    "parameter sharding requires a single-replica live system \
                     (vanilla, ssmw or speculative), not {system}"
                )));
            }
            let (effective_gar, _) = crate::system::gradient_gar(system, self);
            if !effective_gar.is_coordinate_decomposable() {
                return Err(CoreError::InvalidConfig(format!(
                    "gradient GAR '{effective_gar}' is not coordinate-decomposable: \
                     per-shard selection would diverge from full-vector selection; \
                     use average or median (or their speculative forms) with shards > 1"
                )));
            }
        }
        // GAR requirements on the gradient path.
        let gradient_inputs = self.gradient_quorum(system);
        if matches!(
            system,
            SystemKind::Ssmw
                | SystemKind::Msmw
                | SystemKind::Decentralized
                | SystemKind::Speculative
        ) && gradient_inputs < self.gradient_gar.minimum_inputs(self.fw)
        {
            return Err(CoreError::InvalidConfig(format!(
                "{} needs at least {} gradient inputs to tolerate f_w = {}, but only {} are collected",
                self.gradient_gar,
                self.gradient_gar.minimum_inputs(self.fw),
                self.fw,
                gradient_inputs
            )));
        }
        // GAR requirements on the model path: a replica aggregates the models it
        // pulled from `model_quorum()` peers *plus its own*, hence the `+ 1`.
        if matches!(system, SystemKind::Msmw)
            && self.model_quorum() + 1 < self.model_gar.minimum_inputs(self.fps)
        {
            return Err(CoreError::InvalidConfig(format!(
                "{} needs at least {} model inputs to tolerate f_ps = {}, but only {} are collected",
                self.model_gar,
                self.model_gar.minimum_inputs(self.fps),
                self.fps,
                self.model_quorum() + 1
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_presets_are_valid() {
        for cfg in [
            ExperimentConfig::default(),
            ExperimentConfig::small(),
            ExperimentConfig::paper_gpu(),
        ] {
            for system in [
                SystemKind::Vanilla,
                SystemKind::Ssmw,
                SystemKind::CrashTolerant,
            ] {
                cfg.validate(system).unwrap();
            }
        }
        // The CPU preset uses Bulyan with n_w - f_w = 15 >= 4*3+3 = 15.
        ExperimentConfig::paper_cpu()
            .validate(SystemKind::Msmw)
            .unwrap();
    }

    #[test]
    fn quorums_follow_the_paper_listings() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.gradient_quorum(SystemKind::Ssmw), cfg.nw);
        // Synchronous deployments wait for everyone; asynchronous ones for nw - fw.
        assert_eq!(cfg.gradient_quorum(SystemKind::Msmw), cfg.nw);
        let async_cfg = ExperimentConfig {
            synchronous: false,
            ..cfg.clone()
        };
        assert_eq!(async_cfg.gradient_quorum(SystemKind::Msmw), cfg.nw - cfg.fw);
        assert_eq!(cfg.model_quorum(), cfg.nps - cfg.fps);
        assert_eq!(cfg.effective_batch(), cfg.nw * cfg.batch_size);
    }

    #[test]
    fn validation_rejects_inconsistent_setups() {
        let mut cfg = ExperimentConfig::small();
        cfg.nw = 0;
        assert!(cfg.validate(SystemKind::Vanilla).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.actual_byzantine_workers = cfg.nw + 1;
        assert!(cfg.validate(SystemKind::Vanilla).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.fw = 3; // Multi-Krum needs 2f+3 = 9 inputs, only nw - fw = 4 collected
        assert!(cfg.validate(SystemKind::Msmw).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.dataset_samples = 3;
        assert!(cfg.validate(SystemKind::Ssmw).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.nps = 0;
        assert!(cfg.validate(SystemKind::Msmw).is_err());
        assert!(cfg.validate(SystemKind::Ssmw).is_ok());
    }

    #[test]
    fn system_kind_names_are_stable() {
        assert_eq!(SystemKind::Msmw.to_string(), "msmw");
        assert_eq!(SystemKind::all().len(), 7);
        for kind in SystemKind::all() {
            assert_eq!(kind.as_str().parse::<SystemKind>().unwrap(), kind);
        }
        assert!("warp-drive".parse::<SystemKind>().is_err());
    }

    #[test]
    fn speculative_validation_demands_a_robust_fallback() {
        // The default small() config falls back to Multi-Krum: fine.
        ExperimentConfig::small()
            .validate(SystemKind::Speculative)
            .unwrap();
        // Averaging (or nesting) is nothing to fall back to.
        let mut cfg = ExperimentConfig::small();
        cfg.gradient_gar = GarKind::Average;
        assert!(cfg.validate(SystemKind::Speculative).is_err());
        let mut cfg = ExperimentConfig::small();
        cfg.gradient_gar = GarKind::Speculative {
            fallback: Box::new(GarKind::Median),
        };
        assert!(cfg.validate(SystemKind::Speculative).is_err());
        // The fallback's (n, f) requirement applies to the speculative system.
        let mut cfg = ExperimentConfig::small();
        cfg.fw = 3; // Multi-Krum needs 2f+3 = 9 inputs, nw is 7
        assert!(cfg.validate(SystemKind::Speculative).is_err());
    }

    #[test]
    fn sharded_configs_demand_decomposable_gars_and_simple_topologies() {
        // Median decomposes per-coordinate: fine on every sharded system.
        let mut cfg = ExperimentConfig::small();
        cfg.shards = 4;
        cfg.gradient_gar = GarKind::Median;
        cfg.validate(SystemKind::Ssmw).unwrap();
        cfg.validate(SystemKind::Vanilla).unwrap();
        cfg.validate(SystemKind::Speculative).unwrap();

        // Distance-based selection does not decompose.
        let mut cfg = ExperimentConfig::small();
        cfg.shards = 2;
        cfg.gradient_gar = GarKind::MultiKrum;
        let err = cfg.validate(SystemKind::Ssmw).unwrap_err();
        assert!(err.to_string().contains("coordinate-decomposable"), "{err}");
        // ... including as a speculative fallback (the replay path must
        // decompose too).
        assert!(cfg.validate(SystemKind::Speculative).is_err());
        // But vanilla ignores gradient_gar entirely (it always averages),
        // so sharding it is sound regardless.
        cfg.validate(SystemKind::Vanilla).unwrap();

        // Replicated-server topologies are not shard-wired.
        let mut cfg = ExperimentConfig::small();
        cfg.shards = 2;
        cfg.gradient_gar = GarKind::Median;
        assert!(cfg.validate(SystemKind::Msmw).is_err());

        // Zero shards is always nonsense.
        let mut cfg = ExperimentConfig::small();
        cfg.shards = 0;
        assert!(cfg.validate(SystemKind::Ssmw).is_err());
    }

    #[test]
    fn shards_default_to_one_in_older_configs() {
        let json = ExperimentConfig::small().to_json();
        assert!(json.contains("\"shards\":1"));
        // A config written before the field existed parses as unsharded.
        let legacy = json.replace("\"shards\":1,", "");
        assert_eq!(ExperimentConfig::from_json(&legacy).unwrap().shards, 1);
        // And the field round-trips when present.
        let sharded = json.replace("\"shards\":1", "\"shards\":5");
        assert_eq!(ExperimentConfig::from_json(&sharded).unwrap().shards, 5);
    }

    #[test]
    fn config_json_round_trips_every_field() {
        let mut cfg = ExperimentConfig::paper_cpu();
        cfg.worker_attack = Some(garfield_attacks::AttackKind::LittleIsEnough);
        cfg.server_attack = None;
        cfg.shard_strategy = ShardStrategy::ByLabel;
        cfg.seed = u64::MAX - 3; // beyond f64's 2^53 integer range
        let back = ExperimentConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_json_accepts_numeric_seeds_and_rejects_garbage() {
        let json = ExperimentConfig::small()
            .to_json()
            .replace("\"seed\":\"42\"", "\"seed\":42");
        assert_eq!(ExperimentConfig::from_json(&json).unwrap().seed, 42);

        assert!(ExperimentConfig::from_json("{").is_err());
        assert!(ExperimentConfig::from_json("{}").is_err());
        let bad_gar = ExperimentConfig::small()
            .to_json()
            .replace("multi-krum", "mega-krum");
        assert!(ExperimentConfig::from_json(&bad_gar).is_err());
        let bad_attack = {
            let mut cfg = ExperimentConfig::small();
            cfg.worker_attack = Some(garfield_attacks::AttackKind::Drop);
            cfg.to_json().replace("\"drop\"", "\"smash\"")
        };
        assert!(ExperimentConfig::from_json(&bad_attack).is_err());

        // Non-finite floats serialize as `null` (like serde_json); the
        // reader must accept the writer's own output and map them to NaN.
        let mut nan_cfg = ExperimentConfig::small();
        nan_cfg.momentum = f32::NAN;
        let json = nan_cfg.to_json();
        assert!(json.contains("\"momentum\":null"));
        assert!(ExperimentConfig::from_json(&json)
            .unwrap()
            .momentum
            .is_nan());
    }
}
