//! Experiment configuration: the knobs of a Garfield deployment.

use crate::{CoreError, CoreResult};
use garfield_aggregation::GarKind;
use garfield_attacks::AttackKind;
use garfield_ml::ShardStrategy;
use garfield_net::Device;

/// The deployments evaluated in the paper (§5 and §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SystemKind {
    /// Vanilla parameter server with plain averaging (TensorFlow / PyTorch baseline).
    Vanilla,
    /// AggregaThor-style baseline: single trusted server, Multi-Krum, older runtime.
    AggregaThor,
    /// Crash-tolerant primary/backup replication of the server (strawman of §6.2).
    CrashTolerant,
    /// Single Server, Multiple Workers — Byzantine workers only (§5.1).
    Ssmw,
    /// Multiple Servers, Multiple Workers — Byzantine servers and workers (§5.2).
    Msmw,
    /// Decentralized (peer-to-peer) learning (§5.3).
    Decentralized,
}

impl SystemKind {
    /// All systems, in the order the paper's figures list them.
    pub fn all() -> [SystemKind; 6] {
        [
            SystemKind::Vanilla,
            SystemKind::CrashTolerant,
            SystemKind::Ssmw,
            SystemKind::Msmw,
            SystemKind::Decentralized,
            SystemKind::AggregaThor,
        ]
    }

    /// Canonical lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SystemKind::Vanilla => "vanilla",
            SystemKind::AggregaThor => "aggregathor",
            SystemKind::CrashTolerant => "crash-tolerant",
            SystemKind::Ssmw => "ssmw",
            SystemKind::Msmw => "msmw",
            SystemKind::Decentralized => "decentralized",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Full description of one training experiment.
///
/// Defaults follow the paper's PyTorch setup (§6.1): 10 workers of which 3 may
/// be Byzantine, 3 servers of which 1 may be Byzantine, batch size 100.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentConfig {
    /// Trainable model name (see `garfield_ml::zoo::trainable_model`).
    pub model: String,
    /// Number of synthetic samples to generate for the training set.
    pub dataset_samples: usize,
    /// Number of synthetic samples in the held-out test set.
    pub test_samples: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Total number of workers (`n_w`).
    pub nw: usize,
    /// Declared maximum number of Byzantine workers (`f_w`).
    pub fw: usize,
    /// Total number of parameter-server replicas (`n_ps`).
    pub nps: usize,
    /// Declared maximum number of Byzantine servers (`f_ps`).
    pub fps: usize,
    /// Number of workers that actually behave Byzantine this run.
    pub actual_byzantine_workers: usize,
    /// Number of servers that actually behave Byzantine this run.
    pub actual_byzantine_servers: usize,
    /// Attack installed on Byzantine workers.
    pub worker_attack: Option<AttackKind>,
    /// Attack installed on Byzantine servers.
    pub server_attack: Option<AttackKind>,
    /// GAR used to aggregate gradients.
    pub gradient_gar: GarKind,
    /// GAR used to aggregate models between server replicas.
    pub model_gar: GarKind,
    /// Device class of every node.
    pub device: Device,
    /// How the dataset is partitioned across workers.
    pub shard_strategy: ShardStrategy,
    /// Number of training iterations.
    pub iterations: usize,
    /// Evaluate accuracy every this many iterations (0 disables evaluation).
    pub eval_every: usize,
    /// Extra peer-to-peer contraction rounds per iteration (decentralized, non-IID).
    pub contraction_steps: usize,
    /// Whether the network is assumed synchronous. Synchronous deployments
    /// wait for all `nw` gradients (paper's PyTorch Multi-Krum variant);
    /// asynchronous ones proceed after `nw − fw` (paper's TensorFlow Bulyan
    /// variant).
    pub synchronous: bool,
    /// RNG seed controlling data synthesis, initialisation, attacks and jitter.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            model: "tiny".into(),
            dataset_samples: 512,
            test_samples: 256,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.0,
            nw: 10,
            fw: 3,
            nps: 3,
            fps: 1,
            actual_byzantine_workers: 0,
            actual_byzantine_servers: 0,
            worker_attack: None,
            server_attack: None,
            gradient_gar: GarKind::MultiKrum,
            model_gar: GarKind::Median,
            device: Device::Cpu,
            shard_strategy: ShardStrategy::Iid,
            iterations: 30,
            eval_every: 10,
            contraction_steps: 0,
            synchronous: true,
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// A small, fast configuration used by tests and the quickstart example.
    pub fn small() -> Self {
        ExperimentConfig {
            model: "tiny".into(),
            dataset_samples: 256,
            test_samples: 128,
            batch_size: 8,
            nw: 7,
            fw: 1,
            nps: 3,
            fps: 1,
            iterations: 20,
            eval_every: 5,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's TensorFlow/CPU setup: 18 workers (3 Byzantine), 6 servers (1 Byzantine).
    pub fn paper_cpu() -> Self {
        ExperimentConfig {
            nw: 18,
            fw: 3,
            nps: 6,
            fps: 1,
            batch_size: 32,
            gradient_gar: GarKind::Bulyan,
            model_gar: GarKind::Median,
            device: Device::Cpu,
            synchronous: false,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's PyTorch/GPU setup: 10 workers (3 Byzantine), 3 servers (1 Byzantine).
    pub fn paper_gpu() -> Self {
        ExperimentConfig {
            nw: 10,
            fw: 3,
            nps: 3,
            fps: 1,
            batch_size: 100,
            gradient_gar: GarKind::MultiKrum,
            model_gar: GarKind::Median,
            device: Device::Gpu,
            ..ExperimentConfig::default()
        }
    }

    /// Effective batch size per model update (`nw × batch_size`).
    pub fn effective_batch(&self) -> usize {
        self.nw * self.batch_size
    }

    /// Number of gradient replies a server waits for: all of them in the
    /// synchronous case, `nw − fw` when tolerating Byzantine workers.
    pub fn gradient_quorum(&self, system: SystemKind) -> usize {
        match system {
            SystemKind::Vanilla | SystemKind::CrashTolerant | SystemKind::AggregaThor => self.nw,
            SystemKind::Ssmw => self.nw,
            SystemKind::Msmw | SystemKind::Decentralized => {
                if self.synchronous {
                    self.nw
                } else {
                    self.nw - self.fw
                }
            }
        }
    }

    /// Number of model replies a server waits for from its peers.
    pub fn model_quorum(&self) -> usize {
        self.nps.saturating_sub(self.fps).max(1)
    }

    /// Checks the configuration for internal consistency and for the
    /// Byzantine-resilience requirements of the chosen GARs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self, system: SystemKind) -> CoreResult<()> {
        if self.nw == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one worker is required".into(),
            ));
        }
        if self.batch_size == 0 || self.iterations == 0 {
            return Err(CoreError::InvalidConfig(
                "batch size and iteration count must be positive".into(),
            ));
        }
        if self.dataset_samples < self.nw {
            return Err(CoreError::InvalidConfig(format!(
                "{} samples cannot be sharded over {} workers",
                self.dataset_samples, self.nw
            )));
        }
        if self.actual_byzantine_workers > self.nw {
            return Err(CoreError::InvalidConfig(
                "more actual Byzantine workers than workers".into(),
            ));
        }
        if self.actual_byzantine_servers > self.nps {
            return Err(CoreError::InvalidConfig(
                "more actual Byzantine servers than servers".into(),
            ));
        }
        let needs_servers = matches!(system, SystemKind::CrashTolerant | SystemKind::Msmw);
        if needs_servers && self.nps == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "{system} requires at least one server"
            )));
        }
        // GAR requirements on the gradient path.
        let gradient_inputs = self.gradient_quorum(system);
        if matches!(
            system,
            SystemKind::Ssmw | SystemKind::Msmw | SystemKind::Decentralized
        ) && gradient_inputs < self.gradient_gar.minimum_inputs(self.fw)
        {
            return Err(CoreError::InvalidConfig(format!(
                "{} needs at least {} gradient inputs to tolerate f_w = {}, but only {} are collected",
                self.gradient_gar,
                self.gradient_gar.minimum_inputs(self.fw),
                self.fw,
                gradient_inputs
            )));
        }
        // GAR requirements on the model path: a replica aggregates the models it
        // pulled from `model_quorum()` peers *plus its own*, hence the `+ 1`.
        if matches!(system, SystemKind::Msmw)
            && self.model_quorum() + 1 < self.model_gar.minimum_inputs(self.fps)
        {
            return Err(CoreError::InvalidConfig(format!(
                "{} needs at least {} model inputs to tolerate f_ps = {}, but only {} are collected",
                self.model_gar,
                self.model_gar.minimum_inputs(self.fps),
                self.fps,
                self.model_quorum() + 1
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_presets_are_valid() {
        for cfg in [
            ExperimentConfig::default(),
            ExperimentConfig::small(),
            ExperimentConfig::paper_gpu(),
        ] {
            for system in [
                SystemKind::Vanilla,
                SystemKind::Ssmw,
                SystemKind::CrashTolerant,
            ] {
                cfg.validate(system).unwrap();
            }
        }
        // The CPU preset uses Bulyan with n_w - f_w = 15 >= 4*3+3 = 15.
        ExperimentConfig::paper_cpu()
            .validate(SystemKind::Msmw)
            .unwrap();
    }

    #[test]
    fn quorums_follow_the_paper_listings() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.gradient_quorum(SystemKind::Ssmw), cfg.nw);
        // Synchronous deployments wait for everyone; asynchronous ones for nw - fw.
        assert_eq!(cfg.gradient_quorum(SystemKind::Msmw), cfg.nw);
        let async_cfg = ExperimentConfig {
            synchronous: false,
            ..cfg.clone()
        };
        assert_eq!(async_cfg.gradient_quorum(SystemKind::Msmw), cfg.nw - cfg.fw);
        assert_eq!(cfg.model_quorum(), cfg.nps - cfg.fps);
        assert_eq!(cfg.effective_batch(), cfg.nw * cfg.batch_size);
    }

    #[test]
    fn validation_rejects_inconsistent_setups() {
        let mut cfg = ExperimentConfig::small();
        cfg.nw = 0;
        assert!(cfg.validate(SystemKind::Vanilla).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.actual_byzantine_workers = cfg.nw + 1;
        assert!(cfg.validate(SystemKind::Vanilla).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.fw = 3; // Multi-Krum needs 2f+3 = 9 inputs, only nw - fw = 4 collected
        assert!(cfg.validate(SystemKind::Msmw).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.dataset_samples = 3;
        assert!(cfg.validate(SystemKind::Ssmw).is_err());

        let mut cfg = ExperimentConfig::small();
        cfg.nps = 0;
        assert!(cfg.validate(SystemKind::Msmw).is_err());
        assert!(cfg.validate(SystemKind::Ssmw).is_ok());
    }

    #[test]
    fn system_kind_names_are_stable() {
        assert_eq!(SystemKind::Msmw.to_string(), "msmw");
        assert_eq!(SystemKind::all().len(), 6);
    }
}
