//! Dependency-free JSON encoding for experiment artifacts.
//!
//! The build environment has no crates.io access, so traces are serialized
//! with this minimal writer/parser instead of `serde_json`. The output shape
//! matches what `#[derive(serde::Serialize)]` would produce for the same
//! structs, so reports stay compatible if the gated `serde` feature is ever
//! built with the real crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted for deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as usize)
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A field of the value, if it is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` (shortest round-trip representation;
/// non-finite values become `null`, as `serde_json` does).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends an `f32` as a JSON number, preserving exact round-tripping.
pub fn write_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends any [`Value`] as JSON: the write-side complement of [`parse`].
/// Objects print keys in sorted order (they are stored sorted); non-finite
/// numbers become `null`, as `serde_json` emits them.
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_f64(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error, with its byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: must be followed by an
                                // escaped low surrogate (RFC 8259 §7).
                                if !self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    return Err("unpaired surrogate in \\u escape".to_string());
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".to_string());
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. Entered with `pos` on the
    /// `u`; leaves `pos` on the last hex digit (the caller's shared advance
    /// steps past it).
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Value::Number(-2500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        write_string(&mut out, "quote\" slash\\ tab\t ctrl\u{1} unicode é");
        let back = parse(&out).unwrap();
        assert_eq!(
            back.as_str(),
            Some("quote\" slash\\ tab\t ctrl\u{1} unicode é")
        );
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_one_character() {
        // The standard JSON escaping of U+1F600 (as python's json.dumps emits).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(
            parse(r#""😀""#).unwrap().as_str(),
            Some("😀"),
            "raw UTF-8 also works"
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "high surrogate without low");
        assert!(
            parse(r#""\ude00""#).is_err(),
            "lone low surrogate is not a scalar"
        );
    }

    #[test]
    fn write_value_round_trips_nested_documents() {
        let doc = parse(r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"},"d":[]}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &doc);
        assert_eq!(parse(&out).unwrap(), doc);
        // Non-finite numbers degrade to null on the way out.
        let mut out = String::new();
        write_value(&mut out, &Value::Array(vec![Value::Number(f64::NAN)]));
        assert_eq!(out, "[null]");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 12345.678] {
            let mut out = String::new();
            write_f32(&mut out, v);
            let back = parse(&out).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back, v);
        }
    }
}
