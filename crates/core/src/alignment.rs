//! Parameter-vector alignment study (paper appendix, Table 2).
//!
//! The MSMW correctness argument relies on the difference vectors between
//! correct replicas' models being *aligned* (angle close to 0°) once training
//! has progressed. The paper measures this by taking, every 20 steps, the two
//! largest-norm difference vectors among correct replicas and reporting
//! `cos(φ)` between them together with their norms.

use garfield_tensor::{cosine_similarity, Tensor};

/// One row of the Table 2 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AlignmentSample {
    /// Training step at which the sample was taken.
    pub step: usize,
    /// `cos(φ)` between the two largest-norm difference vectors.
    pub cosine: f32,
    /// Largest difference-vector norm.
    pub max_diff1: f32,
    /// Second-largest difference-vector norm.
    pub max_diff2: f32,
}

/// Computes one alignment sample from the correct replicas' parameter vectors.
///
/// Returns `None` when fewer than three replicas are available (fewer than two
/// distinct difference vectors exist) or when a difference vector has zero norm.
pub fn alignment_sample(step: usize, replica_params: &[Tensor]) -> Option<AlignmentSample> {
    if replica_params.len() < 3 {
        return None;
    }
    // All pairwise difference vectors with their norms.
    let mut diffs: Vec<(f32, Tensor)> = Vec::new();
    for i in 0..replica_params.len() {
        for j in (i + 1)..replica_params.len() {
            let d = replica_params[i].try_sub(&replica_params[j]).ok()?;
            diffs.push((d.norm(), d));
        }
    }
    diffs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let (n1, d1) = &diffs[0];
    let (n2, d2) = &diffs[1];
    if *n1 == 0.0 || *n2 == 0.0 {
        return None;
    }
    Some(AlignmentSample {
        step,
        cosine: cosine_similarity(d1, d2),
        max_diff1: *n1,
        max_diff2: *n2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_at_least_three_replicas_and_nonzero_differences() {
        let a = Tensor::from_slice(&[1.0, 0.0]);
        let b = Tensor::from_slice(&[2.0, 0.0]);
        assert!(alignment_sample(0, &[a.clone(), b.clone()]).is_none());
        assert!(alignment_sample(0, &[a.clone(), a.clone(), a.clone()]).is_none());
    }

    #[test]
    fn aligned_replicas_give_cosine_near_one() {
        // Three replicas spread along one direction: all difference vectors are parallel.
        let base = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let r1 = base.clone();
        let r2 = base.try_add(&Tensor::from_slice(&[0.1, 0.2, 0.3])).unwrap();
        let r3 = base.try_add(&Tensor::from_slice(&[0.2, 0.4, 0.6])).unwrap();
        let s = alignment_sample(40, &[r1, r2, r3]).unwrap();
        assert!(s.cosine > 0.999, "cos {}", s.cosine);
        assert!(s.max_diff1 >= s.max_diff2);
        assert_eq!(s.step, 40);
    }

    #[test]
    fn orthogonal_spreads_give_small_cosine() {
        let r1 = Tensor::from_slice(&[0.0, 0.0]);
        let r2 = Tensor::from_slice(&[1.0, 0.0]);
        let r3 = Tensor::from_slice(&[0.0, 1.0]);
        let s = alignment_sample(0, &[r1, r2, r3]).unwrap();
        assert!(s.cosine.abs() < 0.9);
    }
}
