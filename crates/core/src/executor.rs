//! The executor abstraction: one training API, two execution substrates.
//!
//! A Garfield experiment can run on two substrates that share every node
//! object (workers, servers, attacks, GARs) but differ in *how iterations
//! execute*:
//!
//! * the **sim** executor ([`SimExecutor`]) drives every node sequentially
//!   from one thread and charges an analytic
//!   [`CostModel`](garfield_net::CostModel) for data movement — this is the
//!   substrate behind the paper's throughput sweeps, where per-iteration
//!   time is a deterministic function of model size and cluster shape;
//! * the **live** executor (`garfield_runtime::LiveExecutor`) runs each node
//!   as its own OS thread exchanging real byte messages over the
//!   [`Router`](garfield_net::Router), with wall-clock deadlines standing in
//!   for the paper's RPC timeouts — this is the substrate that demonstrates
//!   the *system* claims: pull-based `get_gradients()` / `get_models()` that
//!   stay live despite crashed, delayed or Byzantine nodes.
//!
//! Examples and tests pick a substrate through the shared [`Executor`] trait
//! (often via an [`ExecMode`] parsed from the command line), so the same
//! experiment can be validated analytically and executed for real.

use crate::{Controller, CoreError, CoreResult, ExperimentConfig, SystemKind, TrainingTrace};
use std::str::FromStr;

/// A substrate that can run a configured Garfield system to completion.
pub trait Executor {
    /// Short name of the substrate (`"sim"` or `"live"`).
    fn name(&self) -> &'static str;

    /// Runs the named system and returns its training trace.
    ///
    /// # Errors
    ///
    /// Returns configuration or runtime errors from the underlying substrate.
    fn run(&mut self, system: SystemKind) -> CoreResult<TrainingTrace>;
}

/// The analytic, single-threaded executor (a thin wrapper over
/// [`Controller`]): real math, simulated time.
#[derive(Debug, Clone)]
pub struct SimExecutor {
    controller: Controller,
}

impl SimExecutor {
    /// Creates a sim executor for the given configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        SimExecutor {
            controller: Controller::new(config),
        }
    }

    /// The configuration this executor runs.
    pub fn config(&self) -> &ExperimentConfig {
        self.controller.config()
    }
}

impl Executor for SimExecutor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&mut self, system: SystemKind) -> CoreResult<TrainingTrace> {
        self.controller.run(system)
    }
}

/// Which execution substrate to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Sequential, cost-modelled execution ([`SimExecutor`]).
    Sim,
    /// Threaded execution over real messages (`garfield_runtime::LiveExecutor`).
    Live,
}

impl ExecMode {
    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Sim => "sim",
            ExecMode::Live => "live",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExecMode {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(ExecMode::Sim),
            "live" => Ok(ExecMode::Live),
            other => Err(CoreError::InvalidConfig(format!(
                "unknown execution mode '{other}' (expected 'sim' or 'live')"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_executor_matches_the_controller() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 4;
        cfg.eval_every = 2;
        let mut executor = SimExecutor::new(cfg.clone());
        assert_eq!(executor.name(), "sim");
        assert_eq!(executor.config().iterations, 4);
        let trace = executor.run(SystemKind::Vanilla).unwrap();
        let reference = Controller::new(cfg).run(SystemKind::Vanilla).unwrap();
        assert_eq!(trace.iterations, reference.iterations);
        assert_eq!(trace.accuracy, reference.accuracy);
    }

    #[test]
    fn exec_mode_parses_and_prints() {
        assert_eq!("sim".parse::<ExecMode>().unwrap(), ExecMode::Sim);
        assert_eq!("live".parse::<ExecMode>().unwrap(), ExecMode::Live);
        assert!("grpc".parse::<ExecMode>().is_err());
        assert_eq!(ExecMode::Live.to_string(), "live");
    }
}
