//! Durable training state: the crash-recovery checkpoint.
//!
//! A live server replica owns the only state that matters across a crash —
//! the model vector, the optimizer's step count and momentum velocity, the
//! fault-injection RNG streams, and the round number. A [`Checkpoint`]
//! captures all of it in one compact, length-prefixed binary record:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GFCK"
//! 4       1     format version (= [`CHECKPOINT_VERSION`])
//! 5       1     system-name length s
//! 6       s     system name (UTF-8, e.g. "ssmw")
//! ..      8     experiment seed   (u64 LE)
//! ..      8     round             (u64 LE — next iteration to run)
//! ..      8     optimizer steps   (u64 LE)
//! ..      4+4d  model             (u32 LE length + f32 LE values)
//! ..      1     velocity flag     (+ 4+4d values when 1)
//! ..      1     fault-RNG flag    (+ 32 bytes: 4 u64 LE state words when 1)
//! ..      1     attack-RNG flag   (+ 32 bytes when 1)
//! ```
//!
//! Every float travels as its exact bit pattern (NaNs and infinities
//! included), so a resumed run continues **bit-identically** — the property
//! the kill-and-resume integration tests pin. Decoding is strict: wrong
//! magic, wrong version, truncation and trailing bytes are all errors.
//!
//! The same record has two transports:
//!
//! * **disk** — [`Checkpoint::save`] writes atomically (temp file + rename)
//!   so a crash mid-write can never corrupt the previous checkpoint, and
//!   `garfield-node --resume <dir>` picks the record back up;
//! * **wire** — [`Checkpoint::to_wire_words`] bit-casts the record into the
//!   `f32` payload of a `StateChunk` message, so a rejoining replica can
//!   catch up from the fastest live peer through the same pooled zero-copy
//!   decode path every gradient uses.

use crate::{CoreError, CoreResult};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint record ("GFCK").
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GFCK";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// File name of the (single, latest) checkpoint inside a checkpoint
/// directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// When and where a live node persists its training state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory the checkpoint file lives in (created on first save).
    pub dir: PathBuf,
    /// Persist after every `every`-th completed iteration (at least 1).
    pub every: usize,
}

impl CheckpointPolicy {
    /// Creates a policy writing to `dir` every `every` iterations
    /// (`every` is clamped to at least 1).
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every: every.max(1),
        }
    }

    /// Whether the completed iteration `iteration` (0-based) is a cadence
    /// point.
    pub fn due(&self, iteration: usize) -> bool {
        (iteration + 1).is_multiple_of(self.every)
    }
}

/// One node's resumable training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Name of the Garfield system that produced the state (e.g. `"ssmw"`);
    /// resuming under a different system is refused.
    pub system: String,
    /// Seed of the experiment configuration; resuming a different experiment
    /// is refused.
    pub seed: u64,
    /// The next iteration to run (every iteration below this completed).
    pub round: u64,
    /// Optimizer step count at the checkpoint.
    pub opt_steps: u64,
    /// Flat model parameters, exact bit patterns.
    pub model: Vec<f32>,
    /// Momentum velocity, if the optimizer has built one.
    pub velocity: Option<Vec<f32>>,
    /// State words of the node's fault-injection RNG stream.
    pub fault_rng: Option<[u64; 4]>,
    /// State words of the node's Byzantine-attack RNG stream.
    pub attack_rng: Option<[u64; 4]>,
}

fn bad(what: impl std::fmt::Display) -> CoreError {
    CoreError::Serialization(format!("checkpoint: {what}"))
}

/// A strict little-endian reader over the record.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| bad("truncated record"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> CoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> CoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32s(&mut self) -> CoreResult<Vec<f32>> {
        let len = self.u32()? as usize;
        let bytes = len
            .checked_mul(4)
            .ok_or_else(|| bad("vector length overflows"))?;
        Ok(self
            .take(bytes)?
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn rng_words(&mut self) -> CoreResult<Option<[u64; 4]>> {
        if self.u8()? == 0 {
            return Ok(None);
        }
        Ok(Some([self.u64()?, self.u64()?, self.u64()?, self.u64()?]))
    }
}

impl Checkpoint {
    /// Encodes the checkpoint into its binary record.
    pub fn encode(&self) -> Vec<u8> {
        let d = self.model.len() + self.velocity.as_ref().map_or(0, Vec::len);
        let mut out = Vec::with_capacity(128 + 4 * d);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(CHECKPOINT_VERSION);
        let system = self.system.as_bytes();
        debug_assert!(system.len() <= u8::MAX as usize, "system name too long");
        out.push(system.len().min(u8::MAX as usize) as u8);
        out.extend_from_slice(&system[..system.len().min(u8::MAX as usize)]);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.opt_steps.to_le_bytes());
        let write_f32s = |out: &mut Vec<u8>, values: &[f32]| {
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        write_f32s(&mut out, &self.model);
        match &self.velocity {
            Some(v) => {
                out.push(1);
                write_f32s(&mut out, v);
            }
            None => out.push(0),
        }
        for rng in [&self.fault_rng, &self.attack_rng] {
            match rng {
                Some(words) => {
                    out.push(1);
                    for w in words {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Decodes a binary record, validating magic, version and exact length.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] on wrong magic/version, a
    /// truncated record or trailing bytes.
    pub fn decode(buf: &[u8]) -> CoreResult<Checkpoint> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != CHECKPOINT_MAGIC {
            return Err(bad("wrong magic (not a Garfield checkpoint)"));
        }
        let version = r.u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!("unsupported format version {version}")));
        }
        let system_len = r.u8()? as usize;
        let system = std::str::from_utf8(r.take(system_len)?)
            .map_err(|_| bad("system name is not UTF-8"))?
            .to_string();
        let seed = r.u64()?;
        let round = r.u64()?;
        let opt_steps = r.u64()?;
        let model = r.f32s()?;
        let velocity = if r.u8()? == 1 { Some(r.f32s()?) } else { None };
        let fault_rng = r.rng_words()?;
        let attack_rng = r.rng_words()?;
        if r.pos != buf.len() {
            return Err(bad(format!(
                "{} trailing bytes after a well-formed record",
                buf.len() - r.pos
            )));
        }
        Ok(Checkpoint {
            system,
            seed,
            round,
            opt_steps,
            model,
            velocity,
            fault_rng,
            attack_rng,
        })
    }

    /// Bit-casts the record into `f32` payload words for a `StateChunk`
    /// wire message: word 0 is the byte length, the rest is the record
    /// zero-padded to a word boundary. The wire payload is bit-transparent,
    /// so arbitrary byte patterns (including ones that alias signaling
    /// NaNs) survive the trip exactly.
    pub fn to_wire_words(&self) -> Vec<f32> {
        let bytes = self.encode();
        let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(4));
        words.push(f32::from_bits(bytes.len() as u32));
        for chunk in bytes.chunks(4) {
            let mut w = [0u8; 4];
            w[..chunk.len()].copy_from_slice(chunk);
            words.push(f32::from_bits(u32::from_le_bytes(w)));
        }
        words
    }

    /// Decodes a record previously produced by
    /// [`Checkpoint::to_wire_words`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] when the declared byte length
    /// does not fit the words, or the record itself is malformed.
    pub fn from_wire_words(words: &[f32]) -> CoreResult<Checkpoint> {
        let Some((len_word, body)) = words.split_first() else {
            return Err(bad("empty state payload"));
        };
        let len = len_word.to_bits() as usize;
        if len > body.len() * 4 || body.len() * 4 >= len + 4 {
            return Err(bad(format!(
                "state payload declares {len} bytes but carries {} words",
                body.len()
            )));
        }
        let mut bytes = Vec::with_capacity(body.len() * 4);
        for w in body {
            bytes.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        bytes.truncate(len);
        Checkpoint::decode(&bytes)
    }

    /// The path the checkpoint file occupies inside `dir`.
    pub fn path_in(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(CHECKPOINT_FILE)
    }

    /// Persists the checkpoint atomically: the record is written to a
    /// temporary file in `dir`, fsynced, and renamed over
    /// [`CHECKPOINT_FILE`] — a crash at any point leaves either the old or
    /// the new checkpoint intact, never a torn one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] wrapping any I/O failure.
    pub fn save(&self, dir: impl AsRef<Path>) -> CoreResult<PathBuf> {
        use std::io::Write as _;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| bad(format!("{}: {e}", dir.display())))?;
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let target = Checkpoint::path_in(dir);
        let io = |e: std::io::Error| bad(format!("{}: {e}", tmp.display()));
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(&self.encode()).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        std::fs::rename(&tmp, &target)
            .map_err(|e| bad(format!("{} -> {}: {e}", tmp.display(), target.display())))?;
        // The rename itself lives in the directory: without syncing it, a
        // power failure can forget the rename (or, on first save, the file's
        // very existence) even though this call returned Ok — and --resume
        // would then silently start from scratch. Best-effort, since not
        // every platform allows opening a directory for fsync.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(target)
    }

    /// Loads the checkpoint from `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] when the file is missing,
    /// unreadable or malformed. Use [`Checkpoint::load_if_present`] when a
    /// missing file means "fresh start".
    pub fn load(dir: impl AsRef<Path>) -> CoreResult<Checkpoint> {
        let path = Checkpoint::path_in(dir);
        let bytes = std::fs::read(&path).map_err(|e| bad(format!("{}: {e}", path.display())))?;
        Checkpoint::decode(&bytes)
    }

    /// Loads the checkpoint from `dir`, mapping "no checkpoint file yet" to
    /// `None` — this is what lets one `garfield-node --resume <dir>` command
    /// line serve both the first launch and every respawn after a kill.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] for a file that exists but
    /// cannot be read or decoded (a corrupt checkpoint must fail loudly,
    /// not silently restart training from scratch).
    pub fn load_if_present(dir: impl AsRef<Path>) -> CoreResult<Option<Checkpoint>> {
        let path = Checkpoint::path_in(dir);
        match std::fs::read(&path) {
            Ok(bytes) => Checkpoint::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(bad(format!("{}: {e}", path.display()))),
        }
    }

    /// Validates that this checkpoint belongs to the given experiment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a system or seed mismatch —
    /// resuming someone else's state would silently train a chimera.
    pub fn validate_for(&self, system: &str, seed: u64) -> CoreResult<()> {
        if self.system != system {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint was taken under system '{}', refusing to resume '{system}'",
                self.system
            )));
        }
        if self.seed != seed {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint seed {} does not match the experiment seed {seed}",
                self.seed
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            system: "ssmw".into(),
            seed: 42,
            round: 7,
            opt_steps: 7,
            model: vec![1.5, -0.0, f32::NAN, f32::INFINITY, 2.0e-38],
            velocity: Some(vec![0.25, f32::NEG_INFINITY]),
            fault_rng: Some([1, 2, 3, u64::MAX]),
            attack_rng: None,
        }
    }

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let cp = sample();
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back.system, cp.system);
        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.round, cp.round);
        assert_eq!(back.opt_steps, cp.opt_steps);
        assert_eq!(bits(&back.model), bits(&cp.model));
        assert_eq!(
            bits(back.velocity.as_ref().unwrap()),
            bits(cp.velocity.as_ref().unwrap())
        );
        assert_eq!(back.fault_rng, cp.fault_rng);
        assert_eq!(back.attack_rng, None);
    }

    #[test]
    fn wire_words_round_trip_any_record_length() {
        // The record length is rarely a multiple of 4: all four pad residues
        // must survive the bit-cast into f32 words.
        for extra in 0..4usize {
            let mut cp = sample();
            cp.system = "s".repeat(1 + extra);
            let words = cp.to_wire_words();
            let back = Checkpoint::from_wire_words(&words).unwrap();
            assert_eq!(back.system, cp.system);
            assert_eq!(bits(&back.model), bits(&cp.model));
        }
    }

    #[test]
    fn malformed_records_are_rejected() {
        let good = sample().encode();
        assert!(Checkpoint::decode(&[]).is_err());
        assert!(
            Checkpoint::decode(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Checkpoint::decode(&trailing).is_err(), "trailing bytes");
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(Checkpoint::decode(&magic).is_err(), "magic");
        let mut version = good.clone();
        version[4] = CHECKPOINT_VERSION + 1;
        assert!(Checkpoint::decode(&version).is_err(), "version");
        // A hostile vector length must not panic or over-read.
        let mut hostile = good;
        let model_len_at = 4 + 1 + 1 + 4 + 8 + 8 + 8;
        hostile[model_len_at..model_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Checkpoint::decode(&hostile).is_err(), "hostile length");
        // Wire payloads whose declared length disagrees with the word count.
        assert!(Checkpoint::from_wire_words(&[]).is_err());
        assert!(Checkpoint::from_wire_words(&[f32::from_bits(100), 0.0]).is_err());
    }

    #[test]
    fn save_is_atomic_and_load_matches() {
        let dir = std::env::temp_dir().join(format!("garfield-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cp = sample();
        let path = cp.save(&dir).unwrap();
        assert_eq!(path, Checkpoint::path_in(&dir));
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        let back = Checkpoint::load(&dir).unwrap();
        assert_eq!(bits(&back.model), bits(&cp.model));

        // Overwriting keeps the single-latest-file invariant.
        let mut newer = sample();
        newer.round = 9;
        newer.save(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir).unwrap().round, 9);

        // load_if_present: present -> Some, absent -> None, corrupt -> error.
        assert!(Checkpoint::load_if_present(&dir).unwrap().is_some());
        let empty = dir.join("fresh");
        assert!(Checkpoint::load_if_present(&empty).unwrap().is_none());
        std::fs::write(Checkpoint::path_in(&dir), b"garbage").unwrap();
        assert!(Checkpoint::load_if_present(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_for_rejects_foreign_experiments() {
        let cp = sample();
        assert!(cp.validate_for("ssmw", 42).is_ok());
        assert!(cp.validate_for("msmw", 42).is_err());
        assert!(cp.validate_for("ssmw", 43).is_err());
    }

    #[test]
    fn policy_cadence() {
        let p = CheckpointPolicy::new("/tmp/x", 0);
        assert_eq!(p.every, 1, "cadence clamps to 1");
        assert!(p.due(0) && p.due(5));
        let p3 = CheckpointPolicy::new("/tmp/x", 3);
        assert!(!p3.due(0) && !p3.due(1) && p3.due(2) && p3.due(5));
    }
}
