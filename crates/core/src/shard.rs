//! Contiguous parameter-shard geometry for the sharded parameter server.
//!
//! A [`ShardMap`] partitions the flat d-dimensional parameter vector into
//! `s` contiguous slices, one per shard server. The tiling is validated at
//! construction to cover `[0, d)` exactly — every coordinate belongs to
//! precisely one shard, with no gap and no overlap — so every later layer
//! (wire routing, per-shard GAR selection, final-model reassembly) can treat
//! shard geometry as trusted.
//!
//! Sharding is only sound for *coordinate-decomposable* GARs (see
//! [`GarKind::is_coordinate_decomposable`](garfield_aggregation::GarKind::is_coordinate_decomposable)):
//! applying the rule to each slice independently must equal slicing the rule
//! applied to the full vectors, given identical input membership. Average
//! and the coordinate-wise median have this property; distance-based rules
//! (Krum, MDA, Bulyan) do not, and configurations combining them with
//! `shards > 1` are rejected at validation time.

use crate::{CoreError, CoreResult};
use garfield_ml::{MlError, MlResult, Model};
use garfield_tensor::Tensor;
use std::ops::Range;

/// One contiguous parameter shard: which slice of the flat vector a shard
/// server owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// The shard's index within its [`ShardMap`] (0-based, dense).
    pub index: usize,
    /// First coordinate of the slice.
    pub offset: usize,
    /// Number of coordinates in the slice (always ≥ 1).
    pub len: usize,
}

impl ShardSpec {
    /// The half-open coordinate range `[offset, offset + len)` this shard
    /// owns.
    pub fn range(&self) -> Range<usize> {
        self.offset..self.offset + self.len
    }

    /// Slices this shard's coordinates out of a full-dimension vector.
    ///
    /// # Panics
    ///
    /// Panics if `full` is shorter than the shard's range — shard specs only
    /// make sense against the dimension their map was built for.
    pub fn slice<'a>(&self, full: &'a [f32]) -> &'a [f32] {
        &full[self.range()]
    }
}

/// A validated partition of `[0, d)` into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    dimension: usize,
    specs: Vec<ShardSpec>,
}

impl ShardMap {
    /// Partitions a `dimension`-coordinate vector into `shards` contiguous
    /// near-even slices (the first `dimension % shards` shards take one
    /// extra coordinate).
    ///
    /// # Errors
    ///
    /// Degenerate geometry is rejected loudly rather than producing empty
    /// shards: `dimension == 0`, `shards == 0`, or more shards than
    /// coordinates (`shards > dimension`) are all
    /// [`CoreError::InvalidConfig`].
    pub fn new(dimension: usize, shards: usize) -> CoreResult<ShardMap> {
        if dimension == 0 {
            return Err(CoreError::InvalidConfig(
                "cannot shard a zero-dimensional parameter vector".to_string(),
            ));
        }
        if shards == 0 {
            return Err(CoreError::InvalidConfig(
                "shard count must be at least 1".to_string(),
            ));
        }
        if shards > dimension {
            return Err(CoreError::InvalidConfig(format!(
                "{shards} shards over a {dimension}-parameter model would leave \
                 empty shards; use at most {dimension}"
            )));
        }
        let base = dimension / shards;
        let extra = dimension % shards;
        let mut specs = Vec::with_capacity(shards);
        let mut offset = 0;
        for index in 0..shards {
            let len = base + usize::from(index < extra);
            specs.push(ShardSpec { index, offset, len });
            offset += len;
        }
        debug_assert_eq!(offset, dimension, "shard tiling must cover [0, d) exactly");
        Ok(ShardMap { dimension, specs })
    }

    /// The dimension `d` the map partitions.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.specs.len()
    }

    /// The spec of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn spec(&self, index: usize) -> ShardSpec {
        self.specs[index]
    }

    /// All shard specs, in coordinate order.
    pub fn specs(&self) -> &[ShardSpec] {
        &self.specs
    }

    /// Reassembles a full-dimension vector from per-shard slices, in shard
    /// order.
    ///
    /// # Errors
    ///
    /// Each slice must have exactly its shard's length and there must be one
    /// slice per shard; anything else is [`CoreError::InvalidConfig`].
    pub fn reassemble(&self, slices: &[Vec<f32>]) -> CoreResult<Vec<f32>> {
        if slices.len() != self.specs.len() {
            return Err(CoreError::InvalidConfig(format!(
                "reassembly needs {} shard slices, got {}",
                self.specs.len(),
                slices.len()
            )));
        }
        let mut full = Vec::with_capacity(self.dimension);
        for (spec, slice) in self.specs.iter().zip(slices) {
            if slice.len() != spec.len {
                return Err(CoreError::InvalidConfig(format!(
                    "shard {} slice has {} values, expected {}",
                    spec.index,
                    slice.len(),
                    spec.len
                )));
            }
            full.extend_from_slice(slice);
        }
        Ok(full)
    }
}

/// A model that *is* one flat parameter slice: the model a sharded
/// [`ParameterServer`](crate::ParameterServer) owns.
///
/// A shard server never runs a forward or backward pass — workers compute
/// gradients against the reassembled full model — so this model only
/// implements the parameter-vector surface ([`Model::parameters`] /
/// [`Model::set_parameters`]); the compute entry points return inert values
/// and accuracy evaluation is skipped for shard servers.
#[derive(Debug, Clone)]
pub struct ShardSliceModel {
    params: Tensor,
    name: String,
}

impl ShardSliceModel {
    /// Wraps shard `spec`'s slice of the full initial parameter vector.
    pub fn new(spec: ShardSpec, full: &[f32]) -> Self {
        ShardSliceModel {
            params: Tensor::from(spec.slice(full).to_vec()),
            name: format!(
                "shard-{}[{}..{})",
                spec.index,
                spec.offset,
                spec.offset + spec.len
            ),
        }
    }
}

impl Model for ShardSliceModel {
    fn num_parameters(&self) -> usize {
        self.params.len()
    }

    fn parameters(&self) -> Tensor {
        self.params.clone()
    }

    fn set_parameters(&mut self, params: &Tensor) -> MlResult<()> {
        if params.len() != self.params.len() {
            return Err(MlError::ParameterMismatch {
                expected: self.params.len(),
                got: params.len(),
            });
        }
        self.params = params.clone();
        Ok(())
    }

    fn gradient(&self, _batch: &garfield_ml::Batch) -> (f32, Tensor) {
        (0.0, Tensor::zeros(self.params.len()))
    }

    fn predict(&self, inputs: &Tensor) -> Tensor {
        let rows = inputs.matrix_dims().map(|(r, _)| r).unwrap_or(1);
        Tensor::zeros(garfield_tensor::Shape::matrix(rows, 1))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// Builds the server that owns shard `spec` of a sharded deployment: an
/// honest [`ParameterServer`](crate::ParameterServer) whose model is the
/// matching slice of `full` (the template server's initial parameters) with
/// a fresh optimizer built from the config's hyperparameters.
///
/// Every substrate (in-process executor, `garfield-node`) must build shard
/// servers through this function: optimizer state starts identical across
/// shards and substrates, which the bit-identity contract between sharded
/// and unsharded runs relies on. The server side of a sharded deployment is
/// trusted (sharding is only valid under single-replica systems), so the
/// returned server is always honest.
pub fn shard_server(
    spec: ShardSpec,
    full: &[f32],
    config: &crate::ExperimentConfig,
) -> crate::ByzantineServer {
    let optimizer = garfield_ml::Sgd::new(config.learning_rate).with_momentum(config.momentum);
    let inner = crate::ParameterServer::new(
        spec.index,
        Box::new(ShardSliceModel::new(spec, full)),
        optimizer,
    );
    // The attack RNG stream is unused on an honest server but must still be
    // deterministic per shard so construction stays substrate-independent.
    let rng = garfield_tensor::TensorRng::seed_from(config.seed ^ 0x5348_4400 ^ spec.index as u64);
    crate::ByzantineServer::new(inner, None, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_tile_the_dimension_exactly() {
        for (d, s) in [(10, 1), (10, 2), (10, 3), (10, 10), (7, 4), (1000, 7)] {
            let map = ShardMap::new(d, s).unwrap();
            assert_eq!(map.dimension(), d);
            assert_eq!(map.shard_count(), s);
            let mut next = 0;
            for (i, spec) in map.specs().iter().enumerate() {
                assert_eq!(spec.index, i);
                assert_eq!(
                    spec.offset,
                    next,
                    "shard {i} must start where {} ended",
                    i.max(1) - 1
                );
                assert!(spec.len >= 1, "no empty shards");
                next += spec.len;
            }
            assert_eq!(next, d, "tiling must end exactly at d");
        }
    }

    #[test]
    fn near_even_split_gives_early_shards_the_remainder() {
        let map = ShardMap::new(10, 3).unwrap();
        let lens: Vec<usize> = map.specs().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn degenerate_geometry_is_rejected_loudly() {
        assert!(ShardMap::new(0, 1).is_err());
        assert!(ShardMap::new(10, 0).is_err());
        let err = ShardMap::new(3, 5).unwrap_err();
        assert!(err.to_string().contains("empty shards"), "{err}");
    }

    #[test]
    fn slice_and_reassemble_are_inverse() {
        let full: Vec<f32> = (0..23).map(|i| i as f32 * 1.5).collect();
        let map = ShardMap::new(full.len(), 4).unwrap();
        let slices: Vec<Vec<f32>> = map
            .specs()
            .iter()
            .map(|spec| spec.slice(&full).to_vec())
            .collect();
        assert_eq!(map.reassemble(&slices).unwrap(), full);

        // Wrong slice count and wrong slice length are both rejected.
        assert!(map.reassemble(&slices[..3]).is_err());
        let mut bad = slices.clone();
        bad[1].push(0.0);
        assert!(map.reassemble(&bad).is_err());
    }

    #[test]
    fn shard_slice_model_round_trips_parameters() {
        let full: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let map = ShardMap::new(9, 3).unwrap();
        let mut model = ShardSliceModel::new(map.spec(1), &full);
        assert_eq!(model.num_parameters(), 3);
        assert_eq!(model.parameters().data(), &[3.0, 4.0, 5.0]);
        let updated = Tensor::from(vec![1.0, 2.0, 3.0]);
        model.set_parameters(&updated).unwrap();
        assert_eq!(model.parameters(), updated);
        assert!(model.set_parameters(&Tensor::zeros(4usize)).is_err());
    }
}
