//! The simulated deployment: real servers/workers plus a cost-modelled fabric.
//!
//! A [`Deployment`] instantiates every node of an [`ExperimentConfig`] as a
//! real in-process object (workers compute real gradients, servers run real
//! GARs and SGD updates, Byzantine nodes run real attacks), and charges every
//! data movement and computation to the simulated clock through the
//! [`CostModel`]. Applications (`apps` module) drive iterations through the
//! two pull primitives — [`Deployment::gradient_round`] and
//! [`Deployment::model_round`] — which are the paper's `get_gradients()` /
//! `get_models()` abstractions.

use crate::server::{ByzantineServer, ParameterServer};
use crate::worker::{ByzantineWorker, Worker};
use crate::{CoreError, CoreResult, ExperimentConfig};
use garfield_ml::{zoo, Batch, Dataset, Sgd};
use garfield_net::{Cluster, CostModel, Device, NodeId, PullRound};
use garfield_tensor::{Tensor, TensorRng};

/// Result of one `get_gradients()` round as seen by one server.
#[derive(Debug, Clone)]
pub struct GradientRound {
    /// The gradient vectors actually collected (fastest `q`).
    pub gradients: Vec<Tensor>,
    /// Mean training loss reported by the *honest* workers this round.
    pub mean_loss: f32,
    /// Simulated computation time: the slowest gradient among those collected.
    pub computation_time: f64,
    /// Simulated communication time: model broadcast plus gradient pulls.
    pub communication_time: f64,
}

/// Result of one `get_models()` round as seen by one server.
#[derive(Debug, Clone)]
pub struct ModelRound {
    /// The model vectors collected from peer replicas (fastest `q`).
    pub models: Vec<Tensor>,
    /// Simulated communication time of the pulls.
    pub communication_time: f64,
}

/// The real node objects of a deployment, extracted so the live runtime
/// (`garfield-runtime`) can move each one onto its own OS thread.
///
/// Construction goes through [`Deployment::new`] first, so the live and sim
/// substrates share byte-identical initial state: same data shards, same
/// model initialisation, same attack installation — only the execution
/// substrate differs.
pub struct LiveParts {
    /// The experiment configuration the nodes were built from.
    pub config: ExperimentConfig,
    /// One (possibly Byzantine) worker per `config.nw`, in index order.
    pub workers: Vec<ByzantineWorker>,
    /// One (possibly Byzantine) server replica per `config.nps`, in index order.
    pub servers: Vec<ByzantineServer>,
    /// The held-out evaluation batch (never shown to any worker).
    pub test_batch: Batch,
    /// Model dimension `d`.
    pub dimension: usize,
}

/// A fully instantiated simulated deployment.
pub struct Deployment {
    config: ExperimentConfig,
    cluster: Cluster,
    cost: CostModel,
    workers: Vec<ByzantineWorker>,
    worker_ids: Vec<NodeId>,
    servers: Vec<ByzantineServer>,
    server_ids: Vec<NodeId>,
    test_batch: Batch,
    dimension: usize,
    rng: TensorRng,
}

impl Deployment {
    /// Builds every node of the configured deployment.
    ///
    /// The last `actual_byzantine_workers` workers and the last
    /// `actual_byzantine_servers` server replicas are the Byzantine ones, so
    /// index 0 of each group is always honest (the paper reports the fastest
    /// *correct* machine).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] / [`CoreError::Ml`] when the
    /// configuration cannot be instantiated.
    pub fn new(config: ExperimentConfig) -> CoreResult<Self> {
        let mut rng = TensorRng::seed_from(config.seed);
        let kind = zoo::dataset_for(&config.model)?;
        // Train and test are carved from one generation so they share the same
        // class structure; the test samples are never given to any worker.
        let combined = Dataset::synthetic(
            kind,
            config.dataset_samples + config.test_samples.max(1),
            &mut rng,
        );
        let (train, test) = combined.split_at(config.dataset_samples)?;
        let test_batch = test.full_batch()?;

        // One reference model defines the (identical) initial state everywhere.
        let reference = zoo::trainable_model(&config.model, &mut rng)?;
        let dimension = reference.num_parameters();

        let cluster = Cluster::builder()
            .servers(config.nps.max(1), config.device)
            .workers(config.nw, config.device)
            .build();
        let server_ids = cluster.servers();
        let worker_ids = cluster.workers();

        // Workers: shard the data, clone the reference model as the replica.
        let shards = train.shard(config.nw, config.shard_strategy)?;
        let mut workers = Vec::with_capacity(config.nw);
        let byz_worker_start = config.nw - config.actual_byzantine_workers;
        for (i, shard) in shards.into_iter().enumerate() {
            let worker = Worker::new(i, reference.clone_boxed(), shard.data, config.batch_size)?;
            let attack = if i >= byz_worker_start {
                config.worker_attack.map(|kind| kind.build())
            } else {
                None
            };
            workers.push(ByzantineWorker::new(
                worker,
                attack,
                rng.derive(1_000 + i as u64),
            ));
        }

        // Server replicas: identical initial model, identical optimizer.
        let nps = config.nps.max(1);
        let mut servers = Vec::with_capacity(nps);
        let byz_server_start = nps - config.actual_byzantine_servers.min(nps);
        for s in 0..nps {
            let optimizer = Sgd::new(config.learning_rate).with_momentum(config.momentum);
            let ps = ParameterServer::new(s, reference.clone_boxed(), optimizer);
            let attack = if s >= byz_server_start && config.actual_byzantine_servers > 0 {
                config.server_attack.map(|kind| kind.build())
            } else {
                None
            };
            servers.push(ByzantineServer::new(
                ps,
                attack,
                rng.derive(2_000 + s as u64),
            ));
        }

        Ok(Deployment {
            config,
            cluster,
            cost: CostModel::default(),
            workers,
            worker_ids,
            servers,
            server_ids,
            test_batch,
            dimension,
            rng,
        })
    }

    /// The experiment configuration this deployment was built from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Model dimension `d` (number of parameters).
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The device class of the deployment.
    pub fn device(&self) -> Device {
        self.config.device
    }

    /// The cost model used to charge simulated time.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (used by sensitivity/ablation benches).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Mutable access to the cluster fault state (crash, partition, stragglers).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Read access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of server replicas.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Access to one server replica.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range — deployment code always iterates
    /// over `0..server_count()`.
    pub fn server(&self, index: usize) -> &ByzantineServer {
        &self.servers[index]
    }

    /// Mutable access to one server replica.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn server_mut(&mut self, index: usize) -> &mut ByzantineServer {
        &mut self.servers[index]
    }

    /// Crashes the `index`-th worker (it stops replying to pulls).
    pub fn crash_worker(&mut self, index: usize) {
        if let Some(&id) = self.worker_ids.get(index) {
            self.cluster.crash(id);
        }
    }

    /// Crashes the `index`-th server replica.
    pub fn crash_server(&mut self, index: usize) {
        if let Some(&id) = self.server_ids.get(index) {
            self.cluster.crash(id);
        }
    }

    /// Whether the `index`-th server replica is currently crashed.
    pub fn server_crashed(&self, index: usize) -> bool {
        self.server_ids
            .get(index)
            .is_some_and(|&id| self.cluster.is_crashed(id))
    }

    /// Marks the `index`-th worker as a straggler with the given slowdown factor.
    pub fn set_worker_straggler(&mut self, index: usize, factor: f64) {
        if let Some(&id) = self.worker_ids.get(index) {
            let _ = self.cluster.set_straggler(id, factor);
        }
    }

    /// One `get_gradients(t, q)` round from the point of view of `server_index`.
    ///
    /// Every live worker computes a real gradient at the server's current
    /// model state; Byzantine workers corrupt theirs. Reply arrival times are
    /// simulated (computation × straggler factor + transfer + jitter) and the
    /// fastest `quorum` replies are returned. `server_fanout` is the number of
    /// server replicas every worker must serve this round (1 for a single
    /// trusted server; `nps` when the server is replicated), which multiplies
    /// the per-worker upload cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] when fewer than `quorum` live workers exist,
    /// and [`CoreError::Ml`] when a gradient computation fails.
    pub fn gradient_round(
        &mut self,
        server_index: usize,
        iteration: usize,
        quorum: usize,
        server_fanout: usize,
    ) -> CoreResult<GradientRound> {
        let params = self.servers[server_index].honest().parameters();
        let device = self.config.device;
        let fanout = server_fanout.max(1);

        // First pass: honest gradients (visible to an omniscient adversary).
        let mut honest_gradients = Vec::with_capacity(self.workers.len());
        let mut losses = Vec::with_capacity(self.workers.len());
        for (i, worker) in self.workers.iter_mut().enumerate() {
            if self.cluster.is_crashed(self.worker_ids[i]) {
                honest_gradients.push(None);
                continue;
            }
            let (loss, grad) = worker.honest_compute(&params, iteration)?;
            losses.push(loss);
            honest_gradients.push(Some(grad));
        }
        let peer_view: Vec<Tensor> = honest_gradients.iter().flatten().cloned().collect();

        // Second pass: the vectors actually sent, plus simulated arrival times.
        let mut replies: Vec<(NodeId, f64)> = Vec::new();
        let mut sent: Vec<Option<Tensor>> = vec![None; self.workers.len()];
        for (i, worker) in self.workers.iter_mut().enumerate() {
            let Some(honest) = honest_gradients[i].clone() else {
                continue;
            };
            let vector = worker.sent_gradient(honest, &peer_view);
            let info = self.cluster.info(self.worker_ids[i])?;
            let compute = self
                .cost
                .gradient_time(self.dimension, self.config.batch_size, device)
                * info.straggler_factor;
            let upload = self.cost.vector_transfer_time(self.dimension, device) * fanout as f64;
            let jitter = 1.0 + 0.05 * self.rng.uniform01() as f64;
            replies.push((self.worker_ids[i], (compute + upload) * jitter));
            sent[i] = Some(vector);
        }

        let round = PullRound::new(replies);
        let (chosen, _) = round
            .try_fastest(quorum.min(round.len()).max(1))
            .map_err(CoreError::from)?;
        if round.len() < quorum {
            return Err(CoreError::Net(format!(
                "only {} live workers can reply, {} required",
                round.len(),
                quorum
            )));
        }

        // Collect the chosen gradients in worker order (aggregation is order-insensitive).
        let chosen_set: std::collections::HashSet<NodeId> = chosen.into_iter().collect();
        let mut gradients = Vec::with_capacity(quorum);
        let mut computation_time = 0.0f64;
        for (i, vector) in sent.into_iter().enumerate() {
            let Some(vector) = vector else { continue };
            if chosen_set.contains(&self.worker_ids[i]) {
                let info = self.cluster.info(self.worker_ids[i])?;
                let compute =
                    self.cost
                        .gradient_time(self.dimension, self.config.batch_size, device)
                        * info.straggler_factor;
                computation_time = computation_time.max(compute);
                gradients.push(vector);
            }
        }

        // Communication: the server broadcasts its model to every live worker
        // and pulls `quorum` gradients back, both over its own shared link.
        // When the server is replicated the workers upload to all `fanout`
        // replicas at once: the latency overlaps, the bytes do not.
        let live_workers = gradients.len().max(quorum);
        let communication_time = self
            .cost
            .parallel_pull_time(self.dimension, live_workers, device)
            + self
                .cost
                .fanout_pull_time(self.dimension, quorum, fanout, device);

        let mean_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        Ok(GradientRound {
            gradients,
            mean_loss,
            computation_time,
            communication_time,
        })
    }

    /// One `get_models(q)` round: `server_index` pulls the model vectors served
    /// by its peer replicas and returns the fastest `quorum` of them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] when fewer than `quorum` live peers exist.
    pub fn model_round(&mut self, server_index: usize, quorum: usize) -> CoreResult<ModelRound> {
        let device = self.config.device;
        let peer_models_honest: Vec<Tensor> = (0..self.servers.len())
            .filter(|&s| s != server_index)
            .map(|s| self.servers[s].honest().parameters())
            .collect();

        let mut replies: Vec<(NodeId, f64)> = Vec::new();
        let mut served: Vec<(NodeId, Tensor)> = Vec::new();
        for s in 0..self.servers.len() {
            if s == server_index || self.cluster.is_crashed(self.server_ids[s]) {
                continue;
            }
            let model = self.servers[s].served_model(&peer_models_honest);
            let transfer = self.cost.vector_transfer_time(self.dimension, device);
            let jitter = 1.0 + 0.05 * self.rng.uniform01() as f64;
            replies.push((self.server_ids[s], transfer * jitter));
            served.push((self.server_ids[s], model));
        }
        let round = PullRound::new(replies);
        if round.len() < quorum {
            return Err(CoreError::Net(format!(
                "only {} live server peers can reply, {} required",
                round.len(),
                quorum
            )));
        }
        let (chosen, _) = round.fastest(quorum.max(1));
        let chosen_set: std::collections::HashSet<NodeId> = chosen.into_iter().collect();
        let models: Vec<Tensor> = served
            .into_iter()
            .filter(|(id, _)| chosen_set.contains(id))
            .map(|(_, m)| m)
            .collect();
        let communication_time = self.cost.parallel_pull_time(self.dimension, quorum, device);
        Ok(ModelRound {
            models,
            communication_time,
        })
    }

    /// Evaluates the `server_index`-th replica's model on the held-out test batch.
    pub fn evaluate(&self, server_index: usize) -> (f32, f32) {
        let server = self.servers[server_index].honest();
        (
            server.compute_accuracy(&self.test_batch),
            server.compute_loss(&self.test_batch),
        )
    }

    /// Consumes the deployment and hands out its node objects for the live
    /// runtime, which runs each of them on its own thread.
    pub fn into_live_parts(self) -> LiveParts {
        LiveParts {
            config: self.config,
            workers: self.workers,
            servers: self.servers,
            test_batch: self.test_batch,
            dimension: self.dimension,
        }
    }

    /// Simulated time for one node to run a GAR over `inputs` vectors of the
    /// model dimension (used for the telemetry breakdown).
    pub fn aggregation_cost(&self, inputs: usize, quadratic: bool) -> f64 {
        let order = if quadratic { 2 } else { 1 };
        self.cost
            .aggregation_time(self.dimension, inputs, order, self.config.device)
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("workers", &self.workers.len())
            .field("servers", &self.servers.len())
            .field("dimension", &self.dimension)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemKind;
    use garfield_attacks::AttackKind;

    fn deployment(cfg: ExperimentConfig) -> Deployment {
        cfg.validate(SystemKind::Ssmw).unwrap();
        Deployment::new(cfg).unwrap()
    }

    #[test]
    fn construction_creates_identical_initial_models() {
        let d = deployment(ExperimentConfig::small());
        let p0 = d.server(0).honest().parameters();
        for s in 1..d.server_count() {
            assert_eq!(d.server(s).honest().parameters(), p0);
        }
        assert_eq!(p0.len(), d.dimension());
    }

    #[test]
    fn gradient_round_collects_the_requested_quorum() {
        let mut d = deployment(ExperimentConfig::small());
        let nw = d.config().nw;
        let round = d.gradient_round(0, 0, nw, 1).unwrap();
        assert_eq!(round.gradients.len(), nw);
        assert!(round.mean_loss > 0.0);
        assert!(round.computation_time > 0.0);
        assert!(round.communication_time > 0.0);

        let partial = d.gradient_round(0, 1, nw - 2, 1).unwrap();
        assert_eq!(partial.gradients.len(), nw - 2);
    }

    #[test]
    fn crashed_workers_reduce_available_replies() {
        let mut d = deployment(ExperimentConfig::small());
        let nw = d.config().nw;
        d.crash_worker(0);
        d.crash_worker(1);
        assert!(d.gradient_round(0, 0, nw, 1).is_err());
        let ok = d.gradient_round(0, 0, nw - 2, 1).unwrap();
        assert_eq!(ok.gradients.len(), nw - 2);
    }

    #[test]
    fn byzantine_workers_corrupt_only_their_own_replies() {
        let mut cfg = ExperimentConfig::small();
        cfg.actual_byzantine_workers = 1;
        cfg.worker_attack = Some(AttackKind::Reversed);
        let mut d = deployment(cfg);
        let nw = d.config().nw;
        let round = d.gradient_round(0, 0, nw, 1).unwrap();
        // The reversed-and-amplified gradient has a much larger norm than honest ones.
        let norms: Vec<f32> = round.gradients.iter().map(|g| g.norm()).collect();
        let max = norms.iter().cloned().fold(0.0, f32::max);
        let median = {
            let mut s = norms.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(
            max > 10.0 * median,
            "expected one amplified outlier, norms {norms:?}"
        );
    }

    #[test]
    fn model_round_excludes_the_requester_and_respects_crashes() {
        let mut d = deployment(ExperimentConfig::small());
        let round = d.model_round(0, d.server_count() - 1).unwrap();
        assert_eq!(round.models.len(), d.server_count() - 1);
        d.crash_server(1);
        assert!(d.model_round(0, d.server_count() - 1).is_err());
        let ok = d.model_round(0, d.server_count() - 2).unwrap();
        assert_eq!(ok.models.len(), d.server_count() - 2);
    }

    #[test]
    fn stragglers_are_left_behind_by_partial_quorums() {
        let mut d = deployment(ExperimentConfig::small());
        let nw = d.config().nw;
        d.set_worker_straggler(0, 50.0);
        let round = d.gradient_round(0, 0, nw - 1, 1).unwrap();
        // The straggler's compute time would dominate; since it is excluded,
        // computation time stays near the nominal per-worker cost.
        let nominal =
            d.cost_model()
                .gradient_time(d.dimension(), d.config().batch_size, d.device());
        assert!(round.computation_time < nominal * 2.0);
    }

    #[test]
    fn evaluate_returns_probabilities_and_finite_loss() {
        let d = deployment(ExperimentConfig::small());
        let (acc, loss) = d.evaluate(0);
        assert!((0.0..=1.0).contains(&acc));
        assert!(loss.is_finite());
    }

    #[test]
    fn server_fanout_increases_communication_cost() {
        let mut d = deployment(ExperimentConfig::small());
        let nw = d.config().nw;
        let single = d.gradient_round(0, 0, nw, 1).unwrap();
        let fanned = d.gradient_round(0, 0, nw, 3).unwrap();
        assert!(fanned.communication_time > single.communication_time);
    }
}
