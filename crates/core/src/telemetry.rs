//! Per-iteration timing breakdown and training traces.
//!
//! Every application records, for each iteration, how much simulated time was
//! spent computing gradients, moving vectors over the network and running the
//! GAR. These are exactly the three bars of the paper's overhead-breakdown
//! figures (Fig. 7 and Fig. 16), and throughput figures are derived from their
//! sum.

use crate::json;
use crate::{CoreError, CoreResult};
use garfield_net::{PeerCounters, Role};

/// Simulated time spent in each phase of one training iteration, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IterationTiming {
    /// Gradient-estimation time (the slowest worker whose reply was used).
    pub computation: f64,
    /// Communication time: model broadcasts, gradient pulls, model pulls.
    pub communication: f64,
    /// Robust-aggregation time (gradients and, where applicable, models).
    pub aggregation: f64,
}

impl IterationTiming {
    /// Total simulated duration of the iteration.
    pub fn total(&self) -> f64 {
        self.computation + self.communication + self.aggregation
    }

    /// Adds another iteration's timing into this one (used for averaging).
    pub fn accumulate(&mut self, other: &IterationTiming) {
        self.computation += other.computation;
        self.communication += other.communication;
        self.aggregation += other.aggregation;
    }

    /// Divides every component by `n` (used for averaging).
    pub fn scaled(&self, factor: f64) -> IterationTiming {
        IterationTiming {
            computation: self.computation * factor,
            communication: self.communication * factor,
            aggregation: self.aggregation * factor,
        }
    }
}

/// One accuracy evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccuracyPoint {
    /// Iteration at which the evaluation happened.
    pub iteration: usize,
    /// Simulated time (seconds) at which the evaluation happened.
    pub sim_time: f64,
    /// Top-1 accuracy on the held-out test batch.
    pub accuracy: f32,
    /// Training loss observed at that iteration (mean over used gradients).
    pub loss: f32,
}

/// The full record of one training run.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainingTrace {
    /// Name of the system that produced the trace (e.g. `"ssmw"`).
    pub system: String,
    /// Per-iteration timing breakdowns.
    pub iterations: Vec<IterationTiming>,
    /// Accuracy evaluations over the course of training.
    pub accuracy: Vec<AccuracyPoint>,
    /// Effective batch size processed per iteration (workers × local batch).
    pub effective_batch: usize,
}

impl TrainingTrace {
    /// Creates an empty trace for the named system.
    pub fn new(system: impl Into<String>, effective_batch: usize) -> Self {
        TrainingTrace {
            system: system.into(),
            iterations: Vec::new(),
            accuracy: Vec::new(),
            effective_batch,
        }
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Whether the trace holds no iterations.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// Total simulated training time in seconds.
    pub fn total_time(&self) -> f64 {
        self.iterations.iter().map(IterationTiming::total).sum()
    }

    /// Mean per-iteration timing breakdown.
    pub fn mean_timing(&self) -> IterationTiming {
        if self.iterations.is_empty() {
            return IterationTiming::default();
        }
        let mut acc = IterationTiming::default();
        for it in &self.iterations {
            acc.accumulate(it);
        }
        acc.scaled(1.0 / self.iterations.len() as f64)
    }

    /// Model updates per simulated second (the paper's *throughput* metric).
    pub fn updates_per_second(&self) -> f64 {
        let t = self.total_time();
        if t <= 0.0 {
            0.0
        } else {
            self.iterations.len() as f64 / t
        }
    }

    /// Mini-batches processed per simulated second (used by Fig. 8, where more
    /// workers means more batches per update).
    pub fn batches_per_second(&self, workers: usize) -> f64 {
        self.updates_per_second() * workers as f64
    }

    /// The last recorded accuracy (0.0 if never evaluated).
    pub fn final_accuracy(&self) -> f32 {
        self.accuracy.last().map(|p| p.accuracy).unwrap_or(0.0)
    }

    /// The highest recorded accuracy (0.0 if never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.accuracy.iter().map(|p| p.accuracy).fold(0.0, f32::max)
    }

    /// Simulated time (seconds) at which accuracy first reached `target`, if ever.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.accuracy
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.sim_time)
    }

    /// Serializes the trace to JSON, in the same shape `serde_json` would
    /// produce for these structs (used by the experiment reports).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.iterations.len());
        out.push_str("{\"system\":");
        json::write_string(&mut out, &self.system);
        out.push_str(",\"iterations\":[");
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"computation\":");
            json::write_f64(&mut out, it.computation);
            out.push_str(",\"communication\":");
            json::write_f64(&mut out, it.communication);
            out.push_str(",\"aggregation\":");
            json::write_f64(&mut out, it.aggregation);
            out.push('}');
        }
        out.push_str("],\"accuracy\":[");
        for (i, p) in self.accuracy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"iteration\":");
            json::write_f64(&mut out, p.iteration as f64);
            out.push_str(",\"sim_time\":");
            json::write_f64(&mut out, p.sim_time);
            out.push_str(",\"accuracy\":");
            json::write_f32(&mut out, p.accuracy);
            out.push_str(",\"loss\":");
            json::write_f32(&mut out, p.loss);
            out.push('}');
        }
        out.push_str("],\"effective_batch\":");
        json::write_f64(&mut out, self.effective_batch as f64);
        out.push('}');
        out
    }

    /// Parses a trace previously produced by [`TrainingTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] on malformed JSON or a document
    /// whose fields do not match the trace schema.
    pub fn from_json(input: &str) -> CoreResult<Self> {
        let bad = |what: &str| CoreError::Serialization(format!("trace JSON: {what}"));
        let doc = json::parse(input).map_err(CoreError::Serialization)?;
        let system = doc
            .get("system")
            .and_then(json::Value::as_str)
            .ok_or_else(|| bad("missing string field 'system'"))?
            .to_string();
        let effective_batch = doc
            .get("effective_batch")
            .and_then(json::Value::as_usize)
            .ok_or_else(|| bad("missing integer field 'effective_batch'"))?;
        // `to_json` writes non-finite floats as `null` (like serde_json), so
        // the reader maps `null` back to NaN rather than rejecting a document
        // the writer itself produced.
        let f64_field = |v: &json::Value, key: &str| match v.get(key) {
            Some(json::Value::Null) => Ok(f64::NAN),
            Some(field) => field
                .as_f64()
                .ok_or_else(|| bad(&format!("missing number field '{key}'"))),
            None => Err(bad(&format!("missing number field '{key}'"))),
        };
        let mut iterations = Vec::new();
        for it in doc
            .get("iterations")
            .and_then(json::Value::as_array)
            .ok_or_else(|| bad("missing array field 'iterations'"))?
        {
            iterations.push(IterationTiming {
                computation: f64_field(it, "computation")?,
                communication: f64_field(it, "communication")?,
                aggregation: f64_field(it, "aggregation")?,
            });
        }
        let mut accuracy = Vec::new();
        for p in doc
            .get("accuracy")
            .and_then(json::Value::as_array)
            .ok_or_else(|| bad("missing array field 'accuracy'"))?
        {
            accuracy.push(AccuracyPoint {
                iteration: p
                    .get("iteration")
                    .and_then(json::Value::as_usize)
                    .ok_or_else(|| bad("missing integer field 'iteration'"))?,
                sim_time: f64_field(p, "sim_time")?,
                accuracy: f64_field(p, "accuracy")? as f32,
                loss: f64_field(p, "loss")? as f32,
            });
        }
        Ok(TrainingTrace {
            system,
            iterations,
            accuracy,
            effective_batch,
        })
    }
}

/// Network counters of one live-runtime node (a worker or server thread).
///
/// The simulated path charges an analytic [`CostModel`](garfield_net::CostModel)
/// instead of moving bytes; the live runtime actually routes every gradient
/// and model over the wire, and these counters are the proof — they must be
/// nonzero for every participating node after a live run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTelemetry {
    /// Raw node id on the router.
    pub node: u32,
    /// Whether this node ran the server or the worker actor loop.
    pub role: Role,
    /// Messages this node put on the wire.
    pub messages_sent: u64,
    /// Messages this node received from its inbox.
    pub messages_received: u64,
    /// Payload bytes this node put on the wire.
    pub bytes_sent: u64,
    /// Payload bytes this node received.
    pub bytes_received: u64,
    /// Per-peer *on-wire* counters reported by the node's transport, sorted
    /// by peer id. For the in-process router these equal payload bytes; for
    /// TCP they include frame headers, so `wire_bytes_sent() ≥ bytes_sent`
    /// minus any backpressure drops.
    pub peers: Vec<PeerCounters>,
    /// Times this node came back from a crash (a `RestartAt` rejoin in
    /// process, or a disk-checkpoint resume in `garfield-node --resume`).
    pub resumes: u64,
    /// Checkpoints this node persisted to disk.
    pub checkpoints_written: u64,
    /// `StateChunk` messages this node served to recovering peers.
    pub state_chunks_served: u64,
    /// `StateChunk` messages this node adopted while catching up.
    pub state_chunks_received: u64,
    /// Requests this node re-sent to peers that had not replied yet (the
    /// idempotent re-ask that lets a respawned peer contribute to a round
    /// whose original request died with its previous incarnation).
    pub requests_retried: u64,
}

impl NodeTelemetry {
    /// Creates zeroed counters for a node.
    pub fn new(node: u32, role: Role) -> Self {
        NodeTelemetry {
            node,
            role,
            messages_sent: 0,
            messages_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            peers: Vec::new(),
            resumes: 0,
            checkpoints_written: 0,
            state_chunks_served: 0,
            state_chunks_received: 0,
            requests_retried: 0,
        }
    }

    /// Total on-wire bytes this node's transport put on the wire, summed
    /// over peers (0 when the transport reported no per-peer counters).
    pub fn wire_bytes_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_sent).sum()
    }

    /// Total on-wire bytes this node's transport received, summed over peers.
    pub fn wire_bytes_received(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_received).sum()
    }

    /// Messages this node's transport dropped under backpressure (bounded
    /// outbound queue full — the signature of a slow or dead peer).
    pub fn messages_dropped(&self) -> u64 {
        self.peers.iter().map(|p| p.messages_dropped).sum()
    }

    /// Records one outbound message of `bytes` payload bytes.
    pub fn record_send(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Records one inbound message of `bytes` payload bytes.
    pub fn record_recv(&mut self, bytes: usize) {
        self.messages_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// Whether this node both sent and received at least one message.
    pub fn is_active(&self) -> bool {
        self.messages_sent > 0 && self.messages_received > 0
    }
}

/// Aggregate telemetry of one live run: per-node counters plus the observer
/// server's wall-clock round latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeTelemetry {
    /// One entry per node, servers first then workers, in id order.
    pub nodes: Vec<NodeTelemetry>,
    /// Wall-clock seconds per training iteration, measured by server 0.
    pub round_latencies: Vec<f64>,
}

impl RuntimeTelemetry {
    /// Total messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.messages_sent).sum()
    }

    /// Total payload bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total *on-wire* bytes sent across all nodes, from the per-peer
    /// transport counters (includes frame headers on framed substrates).
    pub fn total_wire_bytes(&self) -> u64 {
        self.nodes.iter().map(NodeTelemetry::wire_bytes_sent).sum()
    }

    /// Total messages dropped under backpressure across all nodes.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(NodeTelemetry::messages_dropped).sum()
    }

    /// Total crash-recovery rejoins/resumes across all nodes (0 on an
    /// uninterrupted run).
    pub fn total_resumes(&self) -> u64 {
        self.nodes.iter().map(|n| n.resumes).sum()
    }

    /// Total requests re-sent to silent peers across all nodes (0 when every
    /// peer answered its first request in time).
    pub fn total_requests_retried(&self) -> u64 {
        self.nodes.iter().map(|n| n.requests_retried).sum()
    }

    /// Total state chunks served to recovering peers across all nodes.
    pub fn total_state_chunks_served(&self) -> u64 {
        self.nodes.iter().map(|n| n.state_chunks_served).sum()
    }

    /// The nodes that played the given role.
    pub fn nodes_with_role(&self, role: Role) -> impl Iterator<Item = &NodeTelemetry> {
        self.nodes.iter().filter(move |n| n.role == role)
    }

    /// Whether every node both sent and received messages (the liveness
    /// signature of a healthy run; crashed nodes may legitimately fail this).
    pub fn all_nodes_active(&self) -> bool {
        !self.nodes.is_empty() && self.nodes.iter().all(NodeTelemetry::is_active)
    }

    /// Mean wall-clock seconds per iteration (0.0 before any round completes).
    pub fn mean_round_latency(&self) -> f64 {
        if self.round_latencies.is_empty() {
            return 0.0;
        }
        self.round_latencies.iter().sum::<f64>() / self.round_latencies.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> TrainingTrace {
        let mut t = TrainingTrace::new("test", 64);
        for i in 0..4 {
            t.iterations.push(IterationTiming {
                computation: 1.0,
                communication: 2.0,
                aggregation: 0.5,
            });
            t.accuracy.push(AccuracyPoint {
                iteration: i,
                sim_time: 3.5 * (i + 1) as f64,
                accuracy: 0.2 * (i + 1) as f32,
                loss: 1.0 / (i + 1) as f32,
            });
        }
        t
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let t = trace();
        let back = TrainingTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.system, t.system);
        assert_eq!(back.effective_batch, t.effective_batch);
        assert_eq!(back.iterations, t.iterations);
        assert_eq!(back.accuracy, t.accuracy);
    }

    #[test]
    fn non_finite_floats_survive_a_json_round_trip_as_nan() {
        // A diverging run can record NaN losses; the writer emits `null`
        // (like serde_json) and the reader must accept its own output.
        let mut t = trace();
        t.accuracy[0].loss = f32::NAN;
        t.iterations[0].computation = f64::INFINITY;
        let json = t.to_json();
        assert!(json.contains("null"));
        let back = TrainingTrace::from_json(&json).unwrap();
        assert!(back.accuracy[0].loss.is_nan());
        assert!(back.iterations[0].computation.is_nan());
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn from_json_rejects_schema_mismatches() {
        assert!(TrainingTrace::from_json("{").is_err());
        assert!(TrainingTrace::from_json("{}").is_err());
        let no_loss = r#"{"system":"x","iterations":[],"accuracy":[{"iteration":0,"sim_time":1.0,"accuracy":0.5}],"effective_batch":8}"#;
        assert!(TrainingTrace::from_json(no_loss).is_err());
    }

    #[test]
    fn totals_and_means() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert!((t.total_time() - 14.0).abs() < 1e-9);
        let mean = t.mean_timing();
        assert!((mean.computation - 1.0).abs() < 1e-9);
        assert!((mean.total() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_metrics() {
        let t = trace();
        assert!((t.updates_per_second() - 4.0 / 14.0).abs() < 1e-9);
        assert!((t.batches_per_second(10) - 40.0 / 14.0).abs() < 1e-9);
        assert_eq!(TrainingTrace::new("x", 1).updates_per_second(), 0.0);
    }

    #[test]
    fn accuracy_queries() {
        let t = trace();
        assert!((t.final_accuracy() - 0.8).abs() < 1e-6);
        assert!((t.best_accuracy() - 0.8).abs() < 1e-6);
        assert_eq!(t.time_to_accuracy(0.4).unwrap(), 7.0);
        assert!(t.time_to_accuracy(0.99).is_none());
        assert_eq!(TrainingTrace::new("x", 1).final_accuracy(), 0.0);
    }

    #[test]
    fn node_telemetry_counts_and_activity() {
        let mut n = NodeTelemetry::new(3, Role::Worker);
        assert!(!n.is_active());
        n.record_send(100);
        n.record_send(50);
        n.record_recv(10);
        assert_eq!(n.messages_sent, 2);
        assert_eq!(n.bytes_sent, 150);
        assert_eq!(n.messages_received, 1);
        assert_eq!(n.bytes_received, 10);
        assert!(n.is_active());
    }

    #[test]
    fn runtime_telemetry_aggregates_across_nodes() {
        let mut server = NodeTelemetry::new(0, Role::Server);
        server.record_send(1000);
        server.record_recv(2000);
        let mut worker = NodeTelemetry::new(1, Role::Worker);
        worker.record_send(2000);
        worker.record_recv(1000);
        let telemetry = RuntimeTelemetry {
            nodes: vec![server, worker],
            round_latencies: vec![0.5, 1.5],
        };
        assert_eq!(telemetry.total_messages(), 2);
        assert_eq!(telemetry.total_bytes(), 3000);
        assert_eq!(telemetry.nodes_with_role(Role::Server).count(), 1);
        assert!(telemetry.all_nodes_active());
        assert!((telemetry.mean_round_latency() - 1.0).abs() < 1e-12);
        assert!(!RuntimeTelemetry::default().all_nodes_active());
        assert_eq!(RuntimeTelemetry::default().mean_round_latency(), 0.0);
    }

    #[test]
    fn per_peer_wire_counters_aggregate() {
        use garfield_net::NodeId;
        let mut node = NodeTelemetry::new(0, Role::Server);
        assert_eq!(node.wire_bytes_sent(), 0);
        let mut toward_1 = PeerCounters::new(NodeId(1));
        toward_1.messages_sent = 2;
        toward_1.bytes_sent = 64;
        toward_1.messages_dropped = 1;
        let mut toward_2 = PeerCounters::new(NodeId(2));
        toward_2.bytes_sent = 36;
        toward_2.bytes_received = 12;
        node.peers = vec![toward_1, toward_2];
        assert_eq!(node.wire_bytes_sent(), 100);
        assert_eq!(node.wire_bytes_received(), 12);
        assert_eq!(node.messages_dropped(), 1);
        let telemetry = RuntimeTelemetry {
            nodes: vec![node],
            round_latencies: vec![],
        };
        assert_eq!(telemetry.total_wire_bytes(), 100);
        assert_eq!(telemetry.total_dropped(), 1);
    }

    #[test]
    fn timing_arithmetic() {
        let a = IterationTiming {
            computation: 1.0,
            communication: 2.0,
            aggregation: 3.0,
        };
        assert_eq!(a.total(), 6.0);
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.total(), 12.0);
        assert_eq!(b.scaled(0.5).total(), 6.0);
    }
}
