//! Per-iteration timing breakdown and training traces.
//!
//! Every application records, for each iteration, how much simulated time was
//! spent computing gradients, moving vectors over the network and running the
//! GAR. These are exactly the three bars of the paper's overhead-breakdown
//! figures (Fig. 7 and Fig. 16), and throughput figures are derived from their
//! sum.

use serde::{Deserialize, Serialize};

/// Simulated time spent in each phase of one training iteration, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationTiming {
    /// Gradient-estimation time (the slowest worker whose reply was used).
    pub computation: f64,
    /// Communication time: model broadcasts, gradient pulls, model pulls.
    pub communication: f64,
    /// Robust-aggregation time (gradients and, where applicable, models).
    pub aggregation: f64,
}

impl IterationTiming {
    /// Total simulated duration of the iteration.
    pub fn total(&self) -> f64 {
        self.computation + self.communication + self.aggregation
    }

    /// Adds another iteration's timing into this one (used for averaging).
    pub fn accumulate(&mut self, other: &IterationTiming) {
        self.computation += other.computation;
        self.communication += other.communication;
        self.aggregation += other.aggregation;
    }

    /// Divides every component by `n` (used for averaging).
    pub fn scaled(&self, factor: f64) -> IterationTiming {
        IterationTiming {
            computation: self.computation * factor,
            communication: self.communication * factor,
            aggregation: self.aggregation * factor,
        }
    }
}

/// One accuracy evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Iteration at which the evaluation happened.
    pub iteration: usize,
    /// Simulated time (seconds) at which the evaluation happened.
    pub sim_time: f64,
    /// Top-1 accuracy on the held-out test batch.
    pub accuracy: f32,
    /// Training loss observed at that iteration (mean over used gradients).
    pub loss: f32,
}

/// The full record of one training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// Name of the system that produced the trace (e.g. `"ssmw"`).
    pub system: String,
    /// Per-iteration timing breakdowns.
    pub iterations: Vec<IterationTiming>,
    /// Accuracy evaluations over the course of training.
    pub accuracy: Vec<AccuracyPoint>,
    /// Effective batch size processed per iteration (workers × local batch).
    pub effective_batch: usize,
}

impl TrainingTrace {
    /// Creates an empty trace for the named system.
    pub fn new(system: impl Into<String>, effective_batch: usize) -> Self {
        TrainingTrace { system: system.into(), iterations: Vec::new(), accuracy: Vec::new(), effective_batch }
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Whether the trace holds no iterations.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// Total simulated training time in seconds.
    pub fn total_time(&self) -> f64 {
        self.iterations.iter().map(IterationTiming::total).sum()
    }

    /// Mean per-iteration timing breakdown.
    pub fn mean_timing(&self) -> IterationTiming {
        if self.iterations.is_empty() {
            return IterationTiming::default();
        }
        let mut acc = IterationTiming::default();
        for it in &self.iterations {
            acc.accumulate(it);
        }
        acc.scaled(1.0 / self.iterations.len() as f64)
    }

    /// Model updates per simulated second (the paper's *throughput* metric).
    pub fn updates_per_second(&self) -> f64 {
        let t = self.total_time();
        if t <= 0.0 {
            0.0
        } else {
            self.iterations.len() as f64 / t
        }
    }

    /// Mini-batches processed per simulated second (used by Fig. 8, where more
    /// workers means more batches per update).
    pub fn batches_per_second(&self, workers: usize) -> f64 {
        self.updates_per_second() * workers as f64
    }

    /// The last recorded accuracy (0.0 if never evaluated).
    pub fn final_accuracy(&self) -> f32 {
        self.accuracy.last().map(|p| p.accuracy).unwrap_or(0.0)
    }

    /// The highest recorded accuracy (0.0 if never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.accuracy.iter().map(|p| p.accuracy).fold(0.0, f32::max)
    }

    /// Simulated time (seconds) at which accuracy first reached `target`, if ever.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.accuracy.iter().find(|p| p.accuracy >= target).map(|p| p.sim_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> TrainingTrace {
        let mut t = TrainingTrace::new("test", 64);
        for i in 0..4 {
            t.iterations.push(IterationTiming {
                computation: 1.0,
                communication: 2.0,
                aggregation: 0.5,
            });
            t.accuracy.push(AccuracyPoint {
                iteration: i,
                sim_time: 3.5 * (i + 1) as f64,
                accuracy: 0.2 * (i + 1) as f32,
                loss: 1.0 / (i + 1) as f32,
            });
        }
        t
    }

    #[test]
    fn totals_and_means() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert!((t.total_time() - 14.0).abs() < 1e-9);
        let mean = t.mean_timing();
        assert!((mean.computation - 1.0).abs() < 1e-9);
        assert!((mean.total() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_metrics() {
        let t = trace();
        assert!((t.updates_per_second() - 4.0 / 14.0).abs() < 1e-9);
        assert!((t.batches_per_second(10) - 40.0 / 14.0).abs() < 1e-9);
        assert_eq!(TrainingTrace::new("x", 1).updates_per_second(), 0.0);
    }

    #[test]
    fn accuracy_queries() {
        let t = trace();
        assert!((t.final_accuracy() - 0.8).abs() < 1e-6);
        assert!((t.best_accuracy() - 0.8).abs() < 1e-6);
        assert_eq!(t.time_to_accuracy(0.4).unwrap(), 7.0);
        assert!(t.time_to_accuracy(0.99).is_none());
        assert_eq!(TrainingTrace::new("x", 1).final_accuracy(), 0.0);
    }

    #[test]
    fn timing_arithmetic() {
        let a = IterationTiming { computation: 1.0, communication: 2.0, aggregation: 3.0 };
        assert_eq!(a.total(), 6.0);
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.total(), 12.0);
        assert_eq!(b.scaled(0.5).total(), 6.0);
    }
}
