//! # garfield-core
//!
//! The core library of the Garfield-rs reproduction of
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021):
//! the paper's object-oriented design (Server, Worker and their Byzantine
//! variants), its pull-based communication abstractions
//! (`get_gradients()` / `get_models()`), the Controller and Experiment
//! modules, the three applications of §5 (SSMW, MSMW, decentralized learning)
//! and the evaluation baselines of §6.2 (vanilla, crash-tolerant,
//! AggregaThor).
//!
//! The stack underneath is entirely in-workspace: tensors
//! ([`garfield_tensor`]), models/datasets/optimizers ([`garfield_ml`]), robust
//! aggregation rules ([`garfield_aggregation`]), Byzantine attacks
//! ([`garfield_attacks`]) and the simulated cluster fabric
//! ([`garfield_net`]).
//!
//! # Quick example
//!
//! Train with one trusted server, seven workers, one of which sends reversed
//! gradients, tolerated by Multi-Krum:
//!
//! ```rust
//! use garfield_core::{Controller, ExperimentConfig, SystemKind};
//! use garfield_attacks::AttackKind;
//!
//! let mut config = ExperimentConfig::small();
//! config.iterations = 10;
//! config.actual_byzantine_workers = 1;
//! config.worker_attack = Some(AttackKind::Reversed);
//! let trace = Controller::new(config).run(SystemKind::Ssmw)?;
//! assert_eq!(trace.len(), 10);
//! # Ok::<(), garfield_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alignment;
pub mod apps;
pub mod checkpoint;
mod controller;
mod deployment;
mod error;
mod executor;
mod experiment;
pub mod json;
mod server;
pub mod shard;
pub mod system;
mod telemetry;
mod worker;

pub use alignment::{alignment_sample, AlignmentSample};
pub use checkpoint::{Checkpoint, CheckpointPolicy};
pub use controller::Controller;
pub use deployment::{Deployment, GradientRound, LiveParts, ModelRound};
pub use error::{CoreError, CoreResult};
pub use executor::{ExecMode, Executor, SimExecutor};
pub use experiment::{ExperimentConfig, SystemKind};
pub use server::{ByzantineServer, ParameterServer};
pub use shard::{shard_server, ShardMap, ShardSliceModel, ShardSpec};
pub use system::{gradient_gar, live_supported, run_system, SystemSpec};
pub use telemetry::{
    AccuracyPoint, IterationTiming, NodeTelemetry, RuntimeTelemetry, TrainingTrace,
};
pub use worker::{ByzantineWorker, Worker};
