//! The one-place system registry.
//!
//! Everything that varies *by system* — which app drives a simulated run,
//! which GAR a server builds on the gradient path, which systems the live
//! runtime can host, and how a `--system` CLI argument reads — resolves
//! through this module. Adding a system means extending the enums here (and
//! writing its app); no other crate carries a `SystemKind` match for these
//! decisions.

use crate::apps::{
    AggregaThorApp, CrashTolerantApp, DecentralizedApp, MsmwApp, SpeculativeApp, SsmwApp,
    VanillaApp,
};
use crate::{CoreError, CoreResult, Deployment, ExperimentConfig, SystemKind, TrainingTrace};
use garfield_aggregation::GarKind;
use std::str::FromStr;

/// Runs `system` on a fresh deployment of `config` (the simulated substrate)
/// and returns its training trace.
///
/// This is the single constructor the [`Controller`](crate::Controller) and
/// every bench/example path resolve through.
///
/// # Errors
///
/// Returns configuration errors (invalid `(n, f)` pairs for the chosen GARs,
/// too few nodes, …) or runtime errors from the deployment.
pub fn run_system(config: &ExperimentConfig, system: SystemKind) -> CoreResult<TrainingTrace> {
    config.validate(system)?;
    let deploy = || Deployment::new(config.clone());
    match system {
        SystemKind::Vanilla => VanillaApp::new(deploy()?).run(),
        SystemKind::AggregaThor => AggregaThorApp::new(deploy()?).run(),
        SystemKind::CrashTolerant => CrashTolerantApp::new(deploy()?).run(),
        SystemKind::Ssmw => SsmwApp::new(deploy()?).run(),
        SystemKind::Msmw => MsmwApp::new(deploy()?).run(),
        SystemKind::Decentralized => DecentralizedApp::from_config(config.clone())?.run(),
        SystemKind::Speculative => SpeculativeApp::new(deploy()?).run(),
    }
}

/// The GAR a server of `system` builds on its gradient path, with the `f` it
/// must tolerate: the single source of truth shared by the simulated apps and
/// the live runtime's `ServerActor`.
///
/// * vanilla and the crash-tolerant strawman average (Byzantine workers are
///   out of their model);
/// * AggregaThor is pinned to Multi-Krum like the original system;
/// * the speculative system wraps the configured robust rule as the fallback
///   of a [`GarKind::Speculative`] composite;
/// * everything else aggregates with the configured `gradient_gar`.
pub fn gradient_gar(system: SystemKind, config: &ExperimentConfig) -> (GarKind, usize) {
    match system {
        SystemKind::Vanilla | SystemKind::CrashTolerant => (GarKind::Average, 0),
        SystemKind::AggregaThor => (GarKind::MultiKrum, config.fw),
        SystemKind::Speculative => (
            GarKind::Speculative {
                fallback: Box::new(config.gradient_gar.clone()),
            },
            config.fw,
        ),
        SystemKind::Ssmw | SystemKind::Msmw | SystemKind::Decentralized => {
            (config.gradient_gar.clone(), config.fw)
        }
    }
}

/// Whether the live (threaded / multi-process) runtime can host `system`.
///
/// The strawmen (AggregaThor, crash-tolerant) and the decentralized topology
/// only exist on the simulated substrate.
pub fn live_supported(system: SystemKind) -> bool {
    matches!(
        system,
        SystemKind::Vanilla | SystemKind::Ssmw | SystemKind::Msmw | SystemKind::Speculative
    )
}

/// A parsed `--system` argument: the system, plus the gradient-GAR override
/// the `speculative(<gar>)` form carries.
///
/// `"ssmw"` → SSMW with the config's GARs; `"speculative"` → speculative
/// falling back to the config's `gradient_gar`; `"speculative(multi-krum)"` →
/// speculative with the config's `gradient_gar` overridden to Multi-Krum.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// The system to run.
    pub system: SystemKind,
    /// Gradient-GAR override carried by the argument, if any.
    pub gradient_gar: Option<GarKind>,
}

impl SystemSpec {
    /// Writes the override (if any) into `config`.
    pub fn apply(&self, config: &mut ExperimentConfig) {
        if let Some(gar) = &self.gradient_gar {
            config.gradient_gar = gar.clone();
        }
    }
}

impl std::fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.gradient_gar {
            Some(gar) => write!(f, "{}({gar})", self.system),
            None => write!(f, "{}", self.system),
        }
    }
}

impl FromStr for SystemSpec {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if let Some(inner) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("speculative")
            .filter(|rest| !rest.is_empty())
        {
            let gar = inner
                .trim()
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| {
                    CoreError::InvalidConfig(format!(
                        "unknown system '{trimmed}' (speculative takes its fallback as \
                         'speculative(<gar>)')"
                    ))
                })?
                .parse::<GarKind>()
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))?;
            if matches!(gar, GarKind::Average | GarKind::Speculative { .. }) {
                return Err(CoreError::InvalidConfig(format!(
                    "speculative needs a primitive Byzantine-resilient fallback, not '{gar}'"
                )));
            }
            return Ok(SystemSpec {
                system: SystemKind::Speculative,
                gradient_gar: Some(gar),
            });
        }
        let system = trimmed
            .parse::<SystemKind>()
            .map_err(CoreError::InvalidConfig)?;
        Ok(SystemSpec {
            system,
            gradient_gar: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_system() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 2;
        cfg.eval_every = 0;
        for system in SystemKind::all() {
            let trace = run_system(&cfg, system).unwrap();
            assert_eq!(trace.system, system.as_str());
            assert_eq!(trace.len(), 2);
        }
    }

    #[test]
    fn gradient_gar_selection_matches_each_systems_contract() {
        let cfg = ExperimentConfig::small();
        assert_eq!(
            gradient_gar(SystemKind::Vanilla, &cfg),
            (GarKind::Average, 0)
        );
        assert_eq!(
            gradient_gar(SystemKind::CrashTolerant, &cfg),
            (GarKind::Average, 0)
        );
        assert_eq!(
            gradient_gar(SystemKind::AggregaThor, &cfg),
            (GarKind::MultiKrum, cfg.fw)
        );
        assert_eq!(
            gradient_gar(SystemKind::Ssmw, &cfg),
            (cfg.gradient_gar.clone(), cfg.fw)
        );
        assert_eq!(
            gradient_gar(SystemKind::Speculative, &cfg),
            (
                GarKind::Speculative {
                    fallback: Box::new(cfg.gradient_gar.clone())
                },
                cfg.fw
            )
        );
    }

    #[test]
    fn live_support_covers_the_runtime_topologies() {
        assert!(live_supported(SystemKind::Vanilla));
        assert!(live_supported(SystemKind::Ssmw));
        assert!(live_supported(SystemKind::Msmw));
        assert!(live_supported(SystemKind::Speculative));
        assert!(!live_supported(SystemKind::AggregaThor));
        assert!(!live_supported(SystemKind::CrashTolerant));
        assert!(!live_supported(SystemKind::Decentralized));
    }

    #[test]
    fn system_specs_parse_apply_and_round_trip() {
        let plain: SystemSpec = "msmw".parse().unwrap();
        assert_eq!(plain.system, SystemKind::Msmw);
        assert_eq!(plain.gradient_gar, None);
        assert_eq!(plain.to_string(), "msmw");

        let bare: SystemSpec = "speculative".parse().unwrap();
        assert_eq!(bare.system, SystemKind::Speculative);
        assert_eq!(bare.gradient_gar, None);

        let spec: SystemSpec = "speculative(median)".parse().unwrap();
        assert_eq!(spec.system, SystemKind::Speculative);
        assert_eq!(spec.gradient_gar, Some(GarKind::Median));
        assert_eq!(spec.to_string(), "speculative(median)");
        assert_eq!(spec.to_string().parse::<SystemSpec>().unwrap(), spec);

        let mut cfg = ExperimentConfig::small();
        spec.apply(&mut cfg);
        assert_eq!(cfg.gradient_gar, GarKind::Median);

        assert!("speculative(average)".parse::<SystemSpec>().is_err());
        assert!("speculative(speculative(median))"
            .parse::<SystemSpec>()
            .is_err());
        assert!("speculative(".parse::<SystemSpec>().is_err());
        assert!("warp-drive".parse::<SystemSpec>().is_err());
    }
}
