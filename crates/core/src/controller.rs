//! The Controller: builds deployments and launches experiments (§3.2).
//!
//! In the paper the controller parses the cluster description, starts every
//! node over SSH and passes the experiment parameters along. Here the cluster
//! is simulated, so the controller's job reduces to validating a
//! configuration, instantiating the corresponding [`Deployment`] and running
//! the requested [`SystemKind`]'s training loop.

use crate::{CoreResult, Deployment, ExperimentConfig, SystemKind, TrainingTrace};

/// Builds and runs Garfield experiments from configurations.
#[derive(Debug, Clone)]
pub struct Controller {
    config: ExperimentConfig,
}

impl Controller {
    /// Creates a controller for the given experiment configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Controller { config }
    }

    /// The configuration this controller launches.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Instantiates the deployment for the configured experiment.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`Deployment::new`].
    pub fn deploy(&self) -> CoreResult<Deployment> {
        Deployment::new(self.config.clone())
    }

    /// Runs the named system on a fresh deployment and returns its trace,
    /// resolving through the one-place [`run_system`](crate::run_system)
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (invalid `(n, f)` pairs for the chosen
    /// GARs, too few nodes, …) or runtime errors from the deployment.
    pub fn run(&self, system: SystemKind) -> CoreResult<TrainingTrace> {
        crate::system::run_system(&self.config, system)
    }

    /// Runs every requested system on identical configurations, returning
    /// `(system, trace)` pairs — the building block of the comparison figures.
    ///
    /// # Errors
    ///
    /// Fails on the first system whose run fails.
    pub fn run_all(&self, systems: &[SystemKind]) -> CoreResult<Vec<(SystemKind, TrainingTrace)>> {
        systems
            .iter()
            .map(|&system| self.run(system).map(|trace| (system, trace)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_runs_every_system_on_a_small_config() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 8;
        cfg.eval_every = 4;
        let controller = Controller::new(cfg);
        for system in SystemKind::all() {
            let trace = controller.run(system).unwrap();
            assert_eq!(trace.len(), 8, "{system} should record every iteration");
            assert!(trace.updates_per_second() > 0.0);
        }
    }

    #[test]
    fn run_all_preserves_order_and_configs() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 4;
        cfg.eval_every = 0;
        let controller = Controller::new(cfg);
        let systems = [SystemKind::Vanilla, SystemKind::Ssmw];
        let results = controller.run_all(&systems).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, SystemKind::Vanilla);
        assert_eq!(results[1].0, SystemKind::Ssmw);
        assert_eq!(controller.config().iterations, 4);
    }

    #[test]
    fn invalid_configuration_is_rejected_before_deployment() {
        let mut cfg = ExperimentConfig::small();
        cfg.fw = 3; // needs 9 inputs for Multi-Krum, nw is 7
        let controller = Controller::new(cfg);
        assert!(controller.run(SystemKind::Msmw).is_err());
    }
}
