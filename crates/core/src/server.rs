//! The Garfield `Server` object and its Byzantine variant.

use crate::CoreResult;
use garfield_aggregation::{Engine, Gar, SelectionOutcome};
use garfield_attacks::Attack;
use garfield_ml::{Batch, Model, Optimizer, Sgd};
use garfield_tensor::{GradientView, Tensor, TensorRng};

/// A parameter-server replica: owns the model state, updates it with
/// aggregated gradients, rewrites it from aggregated peer models and evaluates
/// accuracy (the paper's `Server` object, §3.2).
pub struct ParameterServer {
    index: usize,
    model: Box<dyn Model>,
    optimizer: Sgd,
}

impl ParameterServer {
    /// Creates a server replica around a model and an SGD optimizer.
    pub fn new(index: usize, model: Box<dyn Model>, optimizer: Sgd) -> Self {
        ParameterServer {
            index,
            model,
            optimizer,
        }
    }

    /// The server's index within the deployment.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The current flat model state (what `get_models()` serves to peers).
    pub fn parameters(&self) -> Tensor {
        self.model.parameters()
    }

    /// Number of model parameters.
    pub fn dimension(&self) -> usize {
        self.model.num_parameters()
    }

    /// The optimizer's current state (read by the checkpoint writer).
    pub fn optimizer(&self) -> &Sgd {
        &self.optimizer
    }

    /// Mutable optimizer access (used to restore checkpointed state).
    pub fn optimizer_mut(&mut self) -> &mut Sgd {
        &mut self.optimizer
    }

    /// Applies one SGD step with an (already aggregated) gradient.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when the gradient length is wrong.
    pub fn update_model(&mut self, aggregated_gradient: &Tensor) -> CoreResult<()> {
        self.optimizer
            .step(self.model.as_mut(), aggregated_gradient)?;
        Ok(())
    }

    /// Overwrites the model state (used after aggregating peer models in MSMW
    /// and decentralized deployments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when the parameter length is wrong.
    pub fn write_model(&mut self, params: &Tensor) -> CoreResult<()> {
        self.model.set_parameters(params)?;
        Ok(())
    }

    /// Aggregates a set of gradients (or models) with the given GAR.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Aggregation`] when the GAR rejects the inputs.
    pub fn aggregate(&self, gar: &dyn Gar, inputs: &[Tensor]) -> CoreResult<Tensor> {
        Ok(gar.aggregate(inputs)?)
    }

    /// Zero-copy aggregation: scores and selects over borrowed gradient
    /// views (e.g. decoded wire payloads) under the given engine, without
    /// materialising one `Tensor` per input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Aggregation`](crate::CoreError::Aggregation)
    /// when the GAR rejects the inputs.
    pub fn aggregate_views(
        &self,
        gar: &dyn Gar,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> CoreResult<Tensor> {
        Ok(gar.aggregate_views(inputs, engine)?)
    }

    /// Like [`ParameterServer::aggregate_views`], but also reports which
    /// inputs the GAR kept and each input's distance to the surviving set
    /// (see [`SelectionOutcome`]) for per-peer suspicion scoring. Outputs
    /// are bit-identical to the unobserved path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Aggregation`](crate::CoreError::Aggregation)
    /// when the GAR rejects the inputs.
    pub fn aggregate_views_observed(
        &self,
        gar: &dyn Gar,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> CoreResult<Tensor> {
        Ok(gar.aggregate_views_observed(inputs, engine, outcome)?)
    }

    /// Top-1 accuracy of the current model on a held-out batch.
    pub fn compute_accuracy(&self, test: &Batch) -> f32 {
        self.model.evaluate_accuracy(test)
    }

    /// Training loss of the current model on a batch (used for traces).
    pub fn compute_loss(&self, batch: &Batch) -> f32 {
        self.model.loss(batch)
    }
}

impl std::fmt::Debug for ParameterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParameterServer")
            .field("index", &self.index)
            .field("dimension", &self.dimension())
            .finish()
    }
}

/// A server replica that may behave arbitrarily.
///
/// Like the paper's `Byzantine Server`, it performs the honest computation but
/// corrupts the model vector it *serves to peers*; its local state stays
/// consistent so the attack is undetectable from its own behaviour alone.
pub struct ByzantineServer {
    inner: ParameterServer,
    attack: Option<Box<dyn Attack>>,
    rng: TensorRng,
}

impl ByzantineServer {
    /// Wraps an honest server with an optional attack.
    pub fn new(inner: ParameterServer, attack: Option<Box<dyn Attack>>, rng: TensorRng) -> Self {
        ByzantineServer { inner, attack, rng }
    }

    /// Whether this server currently behaves Byzantine.
    pub fn is_byzantine(&self) -> bool {
        self.attack.is_some()
    }

    /// The honest server underneath.
    pub fn honest(&self) -> &ParameterServer {
        &self.inner
    }

    /// Mutable access to the honest server underneath (it still performs the
    /// normal update protocol locally).
    pub fn honest_mut(&mut self) -> &mut ParameterServer {
        &mut self.inner
    }

    /// The attack RNG's internal state (checkpointed so a resumed Byzantine
    /// replica keeps corrupting with the stream it would have used).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state_words()
    }

    /// Restores the attack RNG from checkpointed state words.
    pub fn set_rng_state(&mut self, words: [u64; 4]) {
        self.rng = TensorRng::from_state_words(words);
    }

    /// The model vector this replica *serves* when peers call `get_models()`.
    ///
    /// Honest replicas serve their true state; Byzantine replicas serve the
    /// attack's output.
    pub fn served_model(&mut self, peer_models: &[Tensor]) -> Tensor {
        let honest = self.inner.parameters();
        match &self.attack {
            None => honest,
            Some(attack) => attack.corrupt(&honest, peer_models, &mut self.rng),
        }
    }
}

impl std::fmt::Debug for ByzantineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzantineServer")
            .field("index", &self.inner.index)
            .field("byzantine", &self.is_byzantine())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_aggregation::{build_gar, GarKind};
    use garfield_attacks::RandomVectorAttack;
    use garfield_ml::{Dataset, DatasetKind, Mlp};

    fn server() -> (ParameterServer, Dataset) {
        let mut rng = TensorRng::seed_from(4);
        let data = Dataset::synthetic(DatasetKind::Tiny, 64, &mut rng);
        let model = Mlp::tiny(&mut rng);
        (
            ParameterServer::new(0, Box::new(model), Sgd::new(0.1)),
            data,
        )
    }

    #[test]
    fn update_moves_parameters_and_validates_length() {
        let (mut ps, _) = server();
        let before = ps.parameters();
        let grad = Tensor::ones(ps.dimension());
        ps.update_model(&grad).unwrap();
        assert_ne!(ps.parameters(), before);
        assert!(ps.update_model(&Tensor::ones(3usize)).is_err());
    }

    #[test]
    fn write_model_overwrites_state() {
        let (mut ps, _) = server();
        let zeros = Tensor::zeros(ps.dimension());
        ps.write_model(&zeros).unwrap();
        assert_eq!(ps.parameters(), zeros);
        assert!(ps.write_model(&Tensor::zeros(1usize)).is_err());
    }

    #[test]
    fn aggregate_delegates_to_the_gar() {
        let (ps, _) = server();
        let gar = build_gar(&GarKind::Median, 3, 1).unwrap();
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::full(4usize, i as f32)).collect();
        let out = ps.aggregate(gar.as_ref(), &inputs).unwrap();
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0]);
        assert!(ps.aggregate(gar.as_ref(), &inputs[..2]).is_err());
    }

    #[test]
    fn accuracy_and_loss_are_finite() {
        let (ps, data) = server();
        let test = data.full_batch().unwrap();
        let acc = ps.compute_accuracy(&test);
        assert!((0.0..=1.0).contains(&acc));
        assert!(ps.compute_loss(&test).is_finite());
    }

    #[test]
    fn byzantine_server_serves_corrupted_models_but_keeps_local_state() {
        let (ps, _) = server();
        let honest_params = ps.parameters();
        let mut byz = ByzantineServer::new(
            ps,
            Some(Box::new(RandomVectorAttack::default())),
            TensorRng::seed_from(9),
        );
        assert!(byz.is_byzantine());
        let served = byz.served_model(&[]);
        assert_ne!(
            served, honest_params,
            "attack should corrupt the served model"
        );
        assert_eq!(
            byz.honest().parameters(),
            honest_params,
            "local state untouched"
        );
    }

    #[test]
    fn honest_byzantine_wrapper_serves_truth() {
        let (ps, _) = server();
        let expected = ps.parameters();
        let mut wrapper = ByzantineServer::new(ps, None, TensorRng::seed_from(1));
        assert!(!wrapper.is_byzantine());
        assert_eq!(wrapper.served_model(&[]), expected);
    }
}
