//! The Garfield `Worker` object and its Byzantine variant.

use crate::{CoreError, CoreResult};
use garfield_attacks::Attack;
use garfield_ml::{Batch, Dataset, Model};
use garfield_tensor::{Tensor, TensorRng};

/// An honest worker: owns a data shard and a model replica, and computes
/// gradient estimates on request (the paper's passive `Worker` object, §3.2).
pub struct Worker {
    index: usize,
    replica: Box<dyn Model>,
    data: Dataset,
    batch_size: usize,
}

impl Worker {
    /// Creates a worker from its data shard and a model replica.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero batch size or an empty shard.
    pub fn new(
        index: usize,
        replica: Box<dyn Model>,
        data: Dataset,
        batch_size: usize,
    ) -> CoreResult<Self> {
        if batch_size == 0 {
            return Err(CoreError::InvalidConfig(
                "worker batch size must be positive".into(),
            ));
        }
        if data.is_empty() {
            return Err(CoreError::InvalidConfig(format!(
                "worker {index} has an empty data shard"
            )));
        }
        Ok(Worker {
            index,
            replica,
            data,
            batch_size,
        })
    }

    /// The worker's index within the deployment.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The worker's local batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of samples in this worker's shard.
    pub fn shard_size(&self) -> usize {
        self.data.len()
    }

    /// Computes a gradient estimate at the given model state, using the
    /// `iteration`-th mini-batch of this worker's shard.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when `params` does not match the replica.
    pub fn compute_gradient(
        &mut self,
        params: &Tensor,
        iteration: usize,
    ) -> CoreResult<(f32, Tensor)> {
        self.replica.set_parameters(params)?;
        let batch = self.batch(iteration)?;
        Ok(self.replica.gradient(&batch))
    }

    /// The mini-batch this worker would use at `iteration`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the shard cannot produce a batch.
    pub fn batch(&self, iteration: usize) -> CoreResult<Batch> {
        Ok(self.data.batch(iteration, self.batch_size)?)
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("index", &self.index)
            .field("batch_size", &self.batch_size)
            .field("shard", &self.data.len())
            .finish()
    }
}

/// A worker that may behave arbitrarily.
///
/// `ByzantineWorker` *inherits* the honest behaviour (it owns a real
/// [`Worker`]) and, when an [`Attack`] is installed, substitutes the gradient
/// it sends with the attack's output — mirroring the paper's
/// `Byzantine Worker` object that derives from `Worker`.
pub struct ByzantineWorker {
    inner: Worker,
    attack: Option<Box<dyn Attack>>,
    rng: TensorRng,
}

impl ByzantineWorker {
    /// Wraps an honest worker with an optional attack.
    pub fn new(inner: Worker, attack: Option<Box<dyn Attack>>, rng: TensorRng) -> Self {
        ByzantineWorker { inner, attack, rng }
    }

    /// The worker's index within the deployment.
    pub fn index(&self) -> usize {
        self.inner.index()
    }

    /// Whether this worker currently behaves Byzantine.
    pub fn is_byzantine(&self) -> bool {
        self.attack.is_some()
    }

    /// Access to the honest worker underneath.
    pub fn honest(&self) -> &Worker {
        &self.inner
    }

    /// Computes the gradient this worker *sends* for `iteration`.
    ///
    /// Honest workers return their true estimate; Byzantine workers corrupt it
    /// with the installed attack. `peer_gradients` carries the honest
    /// gradients visible to an omniscient adversary this round.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when `params` does not match the replica.
    pub fn reply_gradient(
        &mut self,
        params: &Tensor,
        iteration: usize,
        peer_gradients: &[Tensor],
    ) -> CoreResult<(f32, Tensor)> {
        let (loss, honest) = self.inner.compute_gradient(params, iteration)?;
        match &self.attack {
            None => Ok((loss, honest)),
            Some(attack) => {
                let byz = attack.corrupt(&honest, peer_gradients, &mut self.rng);
                Ok((loss, byz))
            }
        }
    }
}

impl ByzantineWorker {
    /// The honest gradient this worker computes, bypassing any installed attack.
    ///
    /// Used by the deployment to build the omniscient adversary's view of the
    /// round, and by the live runtime to maintain the non-omniscient
    /// adversary's *self*-history (its own honest trajectory stands in for
    /// the peer view the collusion attacks estimate moments from).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when `params` does not match the replica.
    pub fn honest_compute(
        &mut self,
        params: &Tensor,
        iteration: usize,
    ) -> CoreResult<(f32, Tensor)> {
        self.inner.compute_gradient(params, iteration)
    }

    /// The vector this worker actually sends, given its honest gradient and
    /// the gradient view the adversary estimates moments from (the peers'
    /// honest gradients when omniscient, the worker's own recent honest
    /// gradients when not).
    pub fn sent_gradient(&mut self, honest: Tensor, peers: &[Tensor]) -> Tensor {
        match &self.attack {
            None => honest,
            Some(attack) => attack.corrupt(&honest, peers, &mut self.rng),
        }
    }
}

impl std::fmt::Debug for ByzantineWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzantineWorker")
            .field("index", &self.inner.index)
            .field("byzantine", &self.is_byzantine())
            .finish()
    }
}

#[cfg(test)]
impl Worker {
    /// Test helper: gradient at `params` on batch 0 without mutating iteration state.
    fn replica_gradient_for_test(&self, params: &Tensor) -> (f32, Tensor) {
        let mut replica = self.replica.clone_boxed();
        replica
            .set_parameters(params)
            .expect("test params are valid");
        let batch = self.data.batch(0, self.batch_size).expect("test batch");
        replica.gradient(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_attacks::ReversedVectorAttack;
    use garfield_ml::{DatasetKind, Mlp};

    fn setup() -> (Worker, Tensor) {
        let mut rng = TensorRng::seed_from(3);
        let data = Dataset::synthetic(DatasetKind::Tiny, 64, &mut rng);
        let model = Mlp::tiny(&mut rng);
        let params = model.parameters();
        (Worker::new(0, Box::new(model), data, 8).unwrap(), params)
    }

    #[test]
    fn construction_validates_inputs() {
        let mut rng = TensorRng::seed_from(3);
        let data = Dataset::synthetic(DatasetKind::Tiny, 16, &mut rng);
        let model = Mlp::tiny(&mut rng);
        assert!(Worker::new(0, Box::new(model.clone()), data.clone(), 0).is_err());
        let empty = Dataset::from_samples(DatasetKind::Tiny, vec![], vec![]).unwrap();
        assert!(Worker::new(0, Box::new(model), empty, 4).is_err());
    }

    #[test]
    fn honest_worker_computes_finite_gradients() {
        let (mut worker, params) = setup();
        let (loss, grad) = worker.compute_gradient(&params, 0).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grad.len(), params.len());
        assert!(grad.is_finite());
        assert_eq!(worker.batch_size(), 8);
        assert_eq!(worker.index(), 0);
        assert!(worker.shard_size() > 0);
    }

    #[test]
    fn different_iterations_use_different_batches() {
        let (mut worker, params) = setup();
        let (_, g0) = worker.compute_gradient(&params, 0).unwrap();
        let (_, g1) = worker.compute_gradient(&params, 1).unwrap();
        assert_ne!(
            g0, g1,
            "different mini-batches should give different gradients"
        );
    }

    #[test]
    fn wrong_parameter_length_is_an_error() {
        let (mut worker, _) = setup();
        assert!(worker.compute_gradient(&Tensor::zeros(3usize), 0).is_err());
    }

    #[test]
    fn byzantine_worker_without_attack_is_honest() {
        let (worker, params) = setup();
        let mut byz = ByzantineWorker::new(worker, None, TensorRng::seed_from(1));
        assert!(!byz.is_byzantine());
        let (_, sent) = byz.reply_gradient(&params, 0, &[]).unwrap();
        let (_, honest) = byz.inner.compute_gradient(&params, 0).unwrap();
        assert_eq!(sent, honest);
    }

    #[test]
    fn byzantine_worker_with_reversed_attack_flips_the_gradient() {
        let (worker, params) = setup();
        let attack = Box::new(ReversedVectorAttack::amplified(100.0));
        let mut byz = ByzantineWorker::new(worker, Some(attack), TensorRng::seed_from(1));
        assert!(byz.is_byzantine());
        let (_, sent) = byz.reply_gradient(&params, 0, &[]).unwrap();
        let (_, honest) = byz.honest().replica_gradient_for_test(&params);
        for (s, h) in sent.iter().zip(honest.iter()) {
            assert!((s + 100.0 * h).abs() < 1e-3);
        }
    }
}
