//! AggregaThor-style baseline (§6.2, Related Work).

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::{build_gar, GarKind};

/// A model of AggregaThor, the prior Byzantine-worker system the paper
/// compares against: single trusted server, Multi-Krum aggregation, but built
/// on an older runtime whose shared-graph design and serialization path add
/// communication overhead relative to Garfield's SSMW (the paper's Fig. 4a /
/// Fig. 8a show Garfield slightly ahead for those reasons).
pub struct AggregaThorApp {
    deployment: Deployment,
    comm_overhead: f64,
}

impl AggregaThorApp {
    /// Wraps a deployment with the default runtime-overhead factor.
    pub fn new(deployment: Deployment) -> Self {
        AggregaThorApp {
            deployment,
            comm_overhead: 1.25,
        }
    }

    /// Adjusts the modelled communication-overhead factor of the older runtime.
    pub fn with_comm_overhead(mut self, factor: f64) -> Self {
        self.comm_overhead = factor.max(1.0);
        self
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Runs the AggregaThor training loop (always Multi-Krum, always synchronous).
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::AggregaThor)?;
        let quorum = config.gradient_quorum(SystemKind::AggregaThor);
        let gar = build_gar(&GarKind::MultiKrum, quorum, config.fw)?;
        let mut trace =
            TrainingTrace::new(SystemKind::AggregaThor.as_str(), config.effective_batch());

        for iteration in 0..config.iterations {
            let round = self.deployment.gradient_round(0, iteration, quorum, 1)?;
            let aggregated = self
                .deployment
                .server(0)
                .honest()
                .aggregate(gar.as_ref(), &round.gradients)?;
            self.deployment
                .server_mut(0)
                .honest_mut()
                .update_model(&aggregated)?;

            trace.iterations.push(IterationTiming {
                computation: round.computation_time,
                communication: round.communication_time * self.comm_overhead,
                aggregation: self.deployment.aggregation_cost(quorum, true),
            });
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, round.mean_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 30;
        cfg.eval_every = 10;
        cfg
    }

    #[test]
    fn aggregathor_learns_the_task() {
        let mut app = AggregaThorApp::new(Deployment::new(config()).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "accuracy {}",
            trace.final_accuracy()
        );
        assert_eq!(trace.system, "aggregathor");
    }

    #[test]
    fn aggregathor_is_slower_than_garfield_ssmw() {
        let cfg = config();
        let aggregathor = AggregaThorApp::new(Deployment::new(cfg.clone()).unwrap())
            .run()
            .unwrap();
        let ssmw = crate::apps::SsmwApp::new(Deployment::new(cfg).unwrap())
            .run()
            .unwrap();
        assert!(aggregathor.mean_timing().communication > ssmw.mean_timing().communication);
        assert!(aggregathor.updates_per_second() < ssmw.updates_per_second());
    }

    #[test]
    fn overhead_factor_is_clamped_to_at_least_one() {
        let app = AggregaThorApp::new(Deployment::new(config()).unwrap()).with_comm_overhead(0.1);
        assert!((app.comm_overhead - 1.0).abs() < 1e-12);
    }
}
