//! The crash-tolerant primary/backup baseline (§6.2).

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::{build_gar, GarKind};

/// The strawman crash-fault-tolerant protocol the paper compares against:
/// the parameter server is replicated on `nps` machines, every replica
/// receives all workers' gradients and *averages* them, but workers read the
/// model only from the current primary. When the primary crashes (signalled by
/// a timeout), workers fail over to the next replica, whose model may lag by a
/// few updates — which is acceptable because SGD converges anyway.
pub struct CrashTolerantApp {
    deployment: Deployment,
    crash_primary_at: Option<usize>,
}

impl CrashTolerantApp {
    /// Wraps a deployment.
    pub fn new(deployment: Deployment) -> Self {
        CrashTolerantApp {
            deployment,
            crash_primary_at: None,
        }
    }

    /// Schedules a crash of the current primary at the given iteration, to
    /// exercise the fail-over path.
    pub fn with_primary_crash_at(mut self, iteration: usize) -> Self {
        self.crash_primary_at = Some(iteration);
        self
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Index of the replica currently acting as primary (first live replica).
    pub fn primary(&self) -> usize {
        (0..self.deployment.server_count())
            .find(|&s| !self.deployment.server_crashed(s))
            .unwrap_or(0)
    }

    /// Runs the protocol and returns the trace observed at the primary path.
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::CrashTolerant)?;
        let quorum = config.gradient_quorum(SystemKind::CrashTolerant);
        let average = build_gar(&GarKind::Average, quorum, 0)?;
        let nps = self.deployment.server_count();
        let mut trace =
            TrainingTrace::new(SystemKind::CrashTolerant.as_str(), config.effective_batch());

        for iteration in 0..config.iterations {
            if self.crash_primary_at == Some(iteration) {
                let victim = self.primary();
                self.deployment.crash_server(victim);
            }
            let primary = self.primary();

            // Every live replica ingests all workers' gradients and averages them.
            let mut primary_round = None;
            for server in 0..nps {
                if self.deployment.server_crashed(server) {
                    continue;
                }
                let round = self
                    .deployment
                    .gradient_round(server, iteration, quorum, nps)?;
                let aggregated = self
                    .deployment
                    .server(server)
                    .honest()
                    .aggregate(average.as_ref(), &round.gradients)?;
                self.deployment
                    .server_mut(server)
                    .honest_mut()
                    .update_model(&aggregated)?;
                if server == primary {
                    primary_round = Some(round);
                }
            }
            let round = primary_round.expect("the primary is live by construction");

            // Workers fetch the model from the primary only; the backups'
            // pulls are off the critical path. A primary change costs one
            // extra model broadcast to inform the workers.
            let failover_penalty = if self.crash_primary_at == Some(iteration) {
                self.deployment.cost_model().parallel_pull_time(
                    self.deployment.dimension(),
                    config.nw,
                    config.device,
                )
            } else {
                0.0
            };

            trace.iterations.push(IterationTiming {
                computation: round.computation_time,
                communication: round.communication_time + failover_penalty,
                aggregation: self.deployment.aggregation_cost(quorum, false),
            });
            maybe_evaluate(
                &mut trace,
                &self.deployment,
                primary,
                iteration,
                round.mean_loss,
            );
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use garfield_attacks::AttackKind;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg
    }

    #[test]
    fn crash_tolerant_learns_without_faults() {
        let mut app = CrashTolerantApp::new(Deployment::new(config()).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "accuracy {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn crash_tolerant_survives_a_primary_crash() {
        let mut app =
            CrashTolerantApp::new(Deployment::new(config()).unwrap()).with_primary_crash_at(10);
        let trace = app.run().unwrap();
        assert_eq!(
            app.primary(),
            1,
            "fail-over should promote the next replica"
        );
        assert!(
            trace.final_accuracy() > 0.5,
            "training should keep converging after fail-over, got {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn crash_tolerant_fails_to_learn_under_a_byzantine_attack() {
        // The paper's Fig. 5: crash tolerance is not Byzantine resilience.
        let mut cfg = config();
        cfg.actual_byzantine_workers = 1;
        cfg.worker_attack = Some(AttackKind::Reversed);
        let mut app = CrashTolerantApp::new(Deployment::new(cfg).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() < 0.6,
            "averaging replicas should not survive a reversed-gradient attack, got {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn crash_tolerant_costs_more_communication_than_ssmw() {
        let cfg = config();
        let crash = CrashTolerantApp::new(Deployment::new(cfg.clone()).unwrap())
            .run()
            .unwrap();
        let ssmw = crate::apps::SsmwApp::new(Deployment::new(cfg).unwrap())
            .run()
            .unwrap();
        assert!(crash.mean_timing().communication > ssmw.mean_timing().communication);
    }
}
