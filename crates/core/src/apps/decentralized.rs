//! Decentralized (peer-to-peer) learning (§5.3, Listing 3).

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, ExperimentConfig, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::build_gar;

/// Decentralized Byzantine learning: there is no parameter server — every node
/// plays both roles, owns its data, and per iteration (1) pulls `n − f`
/// gradients from its peers and robustly aggregates them, (2) updates its
/// local model, (3) pulls `n − f` peer models, robustly aggregates them and
/// rewrites its own. With non-IID data an extra *contraction* phase repeats
/// the model exchange to pull the replicas together.
///
/// Because all `n` nodes pull from all others simultaneously, the fabric
/// carries `O(n²)` messages per round — the scalability wall of Fig. 9.
pub struct DecentralizedApp {
    deployment: Deployment,
}

impl DecentralizedApp {
    /// Builds the peer-to-peer deployment for a configuration: the node count
    /// is `config.nw` and every node gets both a worker shard and a model
    /// replica (internally realised as `nps = nw` co-located servers).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn from_config(mut config: ExperimentConfig) -> CoreResult<Self> {
        config.nps = config.nw;
        config.fps = config.fw;
        config.actual_byzantine_servers = config.actual_byzantine_workers;
        config.server_attack = config.server_attack.or(config.worker_attack);
        Ok(DecentralizedApp {
            deployment: crate::Deployment::new(config)?,
        })
    }

    /// Wraps an already co-located deployment (`nps == nw`).
    pub fn new(deployment: Deployment) -> Self {
        DecentralizedApp { deployment }
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Runs the training loop of Listing 3 and returns the trace of node 0
    /// (always honest by construction).
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::Decentralized)?;
        let n = config.nw;
        let f = config.fw;
        let gradient_quorum = config.gradient_quorum(SystemKind::Decentralized);
        let model_quorum = (n - f).min(self.deployment.server_count() - 1).max(1);
        let gradient_gar = build_gar(&config.gradient_gar, gradient_quorum, f)?;
        let honest_nodes = n - config.actual_byzantine_workers.min(n);
        let mut trace =
            TrainingTrace::new(SystemKind::Decentralized.as_str(), config.effective_batch());

        // All n nodes exchange with all others at once: the shared fabric sees
        // O(n²) concurrent transfers, which we charge as an n-fold contention
        // factor on top of each node's own pull time (see DESIGN.md).
        let contention = n as f64;

        for iteration in 0..config.iterations {
            let mut observer = IterationTiming::default();
            let mut observer_loss = 0.0f32;

            // Phase 1 — every honest node pulls gradients (and, for non-IID
            // data, contracts towards its peers' models) and computes its
            // update. All nodes run this phase against the same pre-update
            // peer states, so no node merges a mix of old and new models.
            let mut updates = Vec::with_capacity(honest_nodes);
            let mut gradient_comms = Vec::with_capacity(honest_nodes);
            for node in 0..honest_nodes {
                let round = self
                    .deployment
                    .gradient_round(node, iteration, gradient_quorum, n)?;
                let mut aggregated = self
                    .deployment
                    .server(node)
                    .honest()
                    .aggregate(gradient_gar.as_ref(), &round.gradients)?;

                // Optional multi-round contraction for non-IID data.
                let mut contraction_comm = 0.0;
                for _ in 0..config.contraction_steps {
                    let peers = self.deployment.model_round(node, model_quorum)?;
                    contraction_comm += peers.communication_time;
                    // Contracting the aggregated gradient towards the peers'
                    // models keeps honest nodes close to each other.
                    let mut inputs = peers.models;
                    inputs.push(self.deployment.server(node).honest().parameters());
                    let rule = build_gar(
                        &config.model_gar,
                        inputs.len(),
                        f.min((inputs.len() - 1) / 2),
                    )?;
                    let contracted = rule.aggregate(&inputs)?;
                    let current = self.deployment.server(node).honest().parameters();
                    // Move the update direction towards the contracted model.
                    aggregated = aggregated
                        .try_add(
                            &current
                                .try_sub(&contracted)
                                .map_err(|e| crate::CoreError::Ml(e.to_string()))?
                                .scale(0.5),
                        )
                        .map_err(|e| crate::CoreError::Ml(e.to_string()))?;
                }
                updates.push(aggregated);
                gradient_comms.push(round.communication_time + contraction_comm);

                if node == 0 {
                    observer.computation = round.computation_time;
                    observer_loss = round.mean_loss;
                }
            }
            for (node, aggregated) in updates.into_iter().enumerate() {
                self.deployment
                    .server_mut(node)
                    .honest_mut()
                    .update_model(&aggregated)?;
            }

            // Phase 2 — every honest node pulls its peers' (now updated)
            // models, robustly merges them with its own and rewrites its
            // state, exactly like the MSMW model contraction.
            let mut merged_models = Vec::with_capacity(honest_nodes);
            for node in 0..honest_nodes {
                let models = self.deployment.model_round(node, model_quorum)?;
                let mut inputs = models.models;
                inputs.push(self.deployment.server(node).honest().parameters());
                let model_rule = build_gar(
                    &config.model_gar,
                    inputs.len(),
                    f.min((inputs.len() - 1) / 2),
                )?;
                let merged = self
                    .deployment
                    .server(node)
                    .honest()
                    .aggregate(model_rule.as_ref(), &inputs)?;
                merged_models.push(merged);

                if node == 0 {
                    observer.communication =
                        (gradient_comms[0] + models.communication_time) * contention;
                    observer.aggregation = self.deployment.aggregation_cost(gradient_quorum, true)
                        + self.deployment.aggregation_cost(model_quorum + 1, false) * 2.0;
                }
            }
            for (node, merged) in merged_models.into_iter().enumerate() {
                self.deployment
                    .server_mut(node)
                    .honest_mut()
                    .write_model(&merged)?;
            }

            trace.iterations.push(observer);
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, observer_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_aggregation::GarKind;
    use garfield_ml::ShardStrategy;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 30;
        cfg.eval_every = 10;
        cfg.nw = 6;
        cfg.fw = 1;
        cfg.gradient_gar = GarKind::MultiKrum;
        cfg.model_gar = GarKind::Median;
        cfg
    }

    #[test]
    fn decentralized_learns_on_iid_data() {
        let mut cfg = config();
        cfg.iterations = 40;
        let mut app = DecentralizedApp::from_config(cfg).unwrap();
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.35,
            "accuracy {}",
            trace.final_accuracy()
        );
        assert_eq!(trace.system, "decentralized");
    }

    #[test]
    fn decentralized_handles_non_iid_data_with_contraction() {
        let mut cfg = config();
        cfg.shard_strategy = ShardStrategy::ByLabel;
        cfg.contraction_steps = 1;
        let mut app = DecentralizedApp::from_config(cfg).unwrap();
        let trace = app.run().unwrap();
        // Non-IID decentralized learning is the hardest setting (biggest
        // accuracy loss in Fig. 4b); it should still do better than chance.
        assert!(
            trace.final_accuracy() > 0.3,
            "accuracy {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn decentralized_pays_quadratic_communication() {
        // The Fig. 9 scalability wall is about fabric *bytes*, so measure it
        // on a model large enough that bandwidth (not per-message latency)
        // dominates the communication time.
        let run = |nw: usize| {
            let mut c = config();
            c.model = "mnist-cnn-lite".into();
            c.dataset_samples = 64;
            c.test_samples = 32;
            c.nw = nw;
            c.iterations = 3;
            c.eval_every = 0;
            c.gradient_gar = GarKind::Median;
            DecentralizedApp::from_config(c).unwrap().run().unwrap()
        };
        let small = run(4);
        let large = run(8);
        let ratio = large.mean_timing().communication / small.mean_timing().communication;
        assert!(
            ratio > 3.0,
            "doubling n should roughly quadruple decentralized communication, got ×{ratio:.2}"
        );
    }
}
