//! The vanilla baseline: one trusted server, plain averaging.

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::{build_gar, GarKind};

/// A vanilla TensorFlow / PyTorch-style deployment: a single parameter server
/// that averages the gradients of all workers. It tolerates nothing — any
/// crash blocks it and any Byzantine worker corrupts it — and serves as the
/// normalisation baseline for every throughput figure.
pub struct VanillaApp {
    deployment: Deployment,
}

impl VanillaApp {
    /// Wraps a deployment. Only server 0 is used.
    pub fn new(deployment: Deployment) -> Self {
        VanillaApp { deployment }
    }

    /// Access to the underlying deployment (e.g. to inject faults between runs).
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Runs the configured number of iterations and returns the trace.
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::Vanilla)?;
        let quorum = config.gradient_quorum(SystemKind::Vanilla);
        let average = build_gar(&GarKind::Average, quorum, 0)?;
        let mut trace = TrainingTrace::new(SystemKind::Vanilla.as_str(), config.effective_batch());

        for iteration in 0..config.iterations {
            let round = self.deployment.gradient_round(0, iteration, quorum, 1)?;
            let aggregated = self
                .deployment
                .server(0)
                .honest()
                .aggregate(average.as_ref(), &round.gradients)?;
            self.deployment
                .server_mut(0)
                .honest_mut()
                .update_model(&aggregated)?;

            let aggregation = self.deployment.aggregation_cost(quorum, false);
            trace.iterations.push(IterationTiming {
                computation: round.computation_time,
                communication: round.communication_time,
                aggregation,
            });
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, round.mean_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use garfield_attacks::AttackKind;

    #[test]
    fn vanilla_learns_the_synthetic_task_without_faults() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 40;
        cfg.eval_every = 10;
        let mut app = VanillaApp::new(Deployment::new(cfg).unwrap());
        let trace = app.run().unwrap();
        assert_eq!(trace.len(), 40);
        assert!(
            trace.final_accuracy() > 0.5,
            "accuracy {}",
            trace.final_accuracy()
        );
        assert!(trace.updates_per_second() > 0.0);
    }

    #[test]
    fn vanilla_collapses_under_a_byzantine_worker() {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 30;
        cfg.actual_byzantine_workers = 1;
        cfg.worker_attack = Some(AttackKind::Reversed);
        let mut app = VanillaApp::new(Deployment::new(cfg).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() < 0.6,
            "vanilla averaging should not survive a reversed-gradient attack, got {}",
            trace.final_accuracy()
        );
    }
}
