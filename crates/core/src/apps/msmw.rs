//! MSMW — Multiple Servers, Multiple Workers (§5.2, Listing 2).

use crate::apps::maybe_evaluate;
use crate::{AlignmentSample, CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::build_gar;

/// The fully Byzantine setting: the parameter server is replicated on `nps`
/// machines, up to `fps` of which may be Byzantine, in addition to up to `fw`
/// Byzantine workers. Each replica robustly aggregates worker gradients,
/// applies the update, then pulls its peers' models and robustly aggregates
/// those too to keep the replicas from diverging (ByzSGD-style).
pub struct MsmwApp {
    deployment: Deployment,
    alignment_every: usize,
    alignment: Vec<AlignmentSample>,
}

impl MsmwApp {
    /// Wraps a deployment.
    pub fn new(deployment: Deployment) -> Self {
        MsmwApp {
            deployment,
            alignment_every: 0,
            alignment: Vec::new(),
        }
    }

    /// Enables recording of the parameter-vector alignment study (Table 2)
    /// every `every` iterations.
    pub fn with_alignment_sampling(mut self, every: usize) -> Self {
        self.alignment_every = every;
        self
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// The alignment samples recorded during the last run.
    pub fn alignment_samples(&self) -> &[AlignmentSample] {
        &self.alignment
    }

    /// Runs the training loop of Listing 2 and returns the trace of the first
    /// *honest* replica (the paper reports the fastest correct machine).
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::Msmw)?;
        let gradient_quorum = config.gradient_quorum(SystemKind::Msmw);
        let model_quorum = config.model_quorum();
        let gradient_gar = build_gar(&config.gradient_gar, gradient_quorum, config.fw)?;
        let nps = self.deployment.server_count();
        let honest_servers = nps - config.actual_byzantine_servers.min(nps);
        let mut trace = TrainingTrace::new(SystemKind::Msmw.as_str(), config.effective_batch());
        self.alignment.clear();

        for iteration in 0..config.iterations {
            let mut observer_timing = IterationTiming::default();
            let mut observer_loss = 0.0f32;

            // Phase 1 — every *honest* replica pulls gradients, aggregates and
            // updates its local state. All replicas run this phase "in
            // parallel" (before any of them serves its new model), matching
            // the real deployment.
            for server in 0..honest_servers {
                // gradients = ps.get_gradients(i, q); aggr = gar(gradients)
                let round =
                    self.deployment
                        .gradient_round(server, iteration, gradient_quorum, nps)?;
                let aggregated = self
                    .deployment
                    .server(server)
                    .honest()
                    .aggregate(gradient_gar.as_ref(), &round.gradients)?;
                self.deployment
                    .server_mut(server)
                    .honest_mut()
                    .update_model(&aggregated)?;

                if server == 0 {
                    observer_timing = IterationTiming {
                        computation: round.computation_time,
                        communication: round.communication_time,
                        aggregation: self.deployment.aggregation_cost(gradient_quorum, true),
                    };
                    observer_loss = round.mean_loss;
                }
            }

            // The Table 2 alignment study samples the states the correct
            // replicas are about to exchange, i.e. after the gradient update
            // and before the model contraction.
            if self.alignment_every > 0 && iteration % self.alignment_every == 0 {
                let params: Vec<_> = (0..honest_servers)
                    .map(|s| self.deployment.server(s).honest().parameters())
                    .collect();
                if let Some(sample) = crate::alignment::alignment_sample(iteration, &params) {
                    self.alignment.push(sample);
                }
            }

            // Phase 2 — every honest replica pulls its peers' (now updated)
            // models, robustly aggregates them together with its own state and
            // rewrites its model. Byzantine replicas serve corrupted vectors
            // (the corruption happens inside Deployment::model_round).
            let mut merged_models = Vec::with_capacity(honest_servers);
            for server in 0..honest_servers {
                // models = ps.get_models(nps - fps); write_model(gar(models))
                let models = self.deployment.model_round(server, model_quorum)?;
                let mut inputs = models.models;
                inputs.push(self.deployment.server(server).honest().parameters());
                let model_rule = build_gar(&config.model_gar, inputs.len(), config.fps)?;
                let merged = self
                    .deployment
                    .server(server)
                    .honest()
                    .aggregate(model_rule.as_ref(), &inputs)?;
                merged_models.push(merged);

                if server == 0 {
                    observer_timing.communication += models.communication_time;
                    observer_timing.aggregation +=
                        self.deployment.aggregation_cost(model_quorum + 1, false);
                }
            }
            for (server, merged) in merged_models.into_iter().enumerate() {
                self.deployment
                    .server_mut(server)
                    .honest_mut()
                    .write_model(&merged)?;
            }
            trace.iterations.push(observer_timing);
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, observer_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use garfield_aggregation::GarKind;
    use garfield_attacks::AttackKind;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg.gradient_gar = GarKind::MultiKrum;
        cfg.model_gar = GarKind::Median;
        cfg.nps = 3;
        cfg.fps = 1;
        cfg
    }

    #[test]
    fn msmw_learns_without_faults() {
        let mut app = MsmwApp::new(Deployment::new(config()).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "accuracy {}",
            trace.final_accuracy()
        );
        assert_eq!(trace.system, "msmw");
    }

    #[test]
    fn msmw_survives_byzantine_servers_and_workers() {
        let mut cfg = config();
        cfg.actual_byzantine_workers = 1;
        cfg.worker_attack = Some(AttackKind::Random);
        cfg.actual_byzantine_servers = 1;
        cfg.server_attack = Some(AttackKind::Random);
        let mut app = MsmwApp::new(Deployment::new(cfg).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "MSMW should survive 1 Byzantine worker + 1 Byzantine server, got {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn msmw_communicates_more_than_ssmw() {
        let cfg = config();
        let msmw = MsmwApp::new(Deployment::new(cfg.clone()).unwrap())
            .run()
            .unwrap();
        let ssmw = crate::apps::SsmwApp::new(Deployment::new(cfg).unwrap())
            .run()
            .unwrap();
        assert!(msmw.mean_timing().communication > ssmw.mean_timing().communication);
    }

    #[test]
    fn alignment_sampling_records_cosines_near_one() {
        let mut cfg = config();
        cfg.iterations = 30;
        // Asynchronous quorums make different replicas aggregate different
        // worker subsets, so their post-update states actually diverge
        // (otherwise every difference vector is zero and there is nothing to
        // sample). Median makes the aggregate sensitive to the excluded worker.
        cfg.synchronous = false;
        cfg.gradient_gar = GarKind::Median;
        let mut app = MsmwApp::new(Deployment::new(cfg).unwrap()).with_alignment_sampling(10);
        app.run().unwrap();
        let samples = app.alignment_samples();
        assert!(!samples.is_empty());
        for s in samples {
            assert!(s.cosine <= 1.0 + 1e-5);
        }
    }
}
