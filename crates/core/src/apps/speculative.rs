//! Speculative fast-path aggregation over the SSMW topology (arXiv:1911.07537).

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::build_gar;

/// SSMW's trusted single server, but betting on the fault-free common case:
/// each round takes the cheap average path plus a cheap consistency check,
/// and permanently falls back to the configured robust `gradient_gar` the
/// first time the check trips.
///
/// Determinism contract (see `garfield_aggregation::SpeculativeGar`): a run
/// in which the check never trips is bit-identical to a vanilla run; from
/// the fallback round onward the run is bit-identical to an SSMW run of the
/// fallback rule on the same seed.
pub struct SpeculativeApp {
    deployment: Deployment,
}

impl SpeculativeApp {
    /// Wraps a deployment. Only server 0 is used and it is assumed trusted.
    pub fn new(deployment: Deployment) -> Self {
        SpeculativeApp { deployment }
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Runs the speculative training loop and returns the trace.
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::Speculative)?;
        let quorum = config.gradient_quorum(SystemKind::Speculative);
        let (gar_kind, gar_f) = crate::system::gradient_gar(SystemKind::Speculative, &config);
        let gar = build_gar(&gar_kind, quorum, gar_f)?;
        let mut trace =
            TrainingTrace::new(SystemKind::Speculative.as_str(), config.effective_batch());

        for iteration in 0..config.iterations {
            let round = self.deployment.gradient_round(0, iteration, quorum, 1)?;
            let aggregated = self
                .deployment
                .server(0)
                .honest()
                .aggregate(gar.as_ref(), &round.gradients)?;
            self.deployment
                .server_mut(0)
                .honest_mut()
                .update_model(&aggregated)?;

            // Cost the round for what it was: the cheap path until the latch
            // trips, the robust rule afterwards.
            let robust = gar.fell_back() == Some(true);
            let aggregation = self.deployment.aggregation_cost(quorum, robust);
            trace.iterations.push(IterationTiming {
                computation: round.computation_time,
                communication: round.communication_time,
                aggregation,
            });
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, round.mean_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{SsmwApp, VanillaApp};
    use crate::ExperimentConfig;
    use garfield_aggregation::GarKind;
    use garfield_attacks::AttackKind;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 12;
        cfg.eval_every = 6;
        cfg.gradient_gar = GarKind::MultiKrum;
        cfg
    }

    fn final_model_bits(deployment: &Deployment) -> Vec<u32> {
        deployment
            .server(0)
            .honest()
            .parameters()
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn fault_free_speculative_is_bit_identical_to_vanilla() {
        let cfg = config();
        let mut spec = SpeculativeApp::new(Deployment::new(cfg.clone()).unwrap());
        spec.run().unwrap();
        let mut vanilla = VanillaApp::new(Deployment::new(cfg).unwrap());
        vanilla.run().unwrap();
        assert_eq!(
            final_model_bits(&spec.deployment),
            final_model_bits(vanilla.deployment_mut()),
        );
    }

    #[test]
    fn every_attack_falls_back_to_the_exact_robust_run() {
        for attack in AttackKind::all() {
            let mut cfg = config();
            cfg.actual_byzantine_workers = cfg.fw;
            cfg.worker_attack = Some(attack);

            let mut spec = SpeculativeApp::new(Deployment::new(cfg.clone()).unwrap());
            spec.run().unwrap();
            let mut robust = SsmwApp::new(Deployment::new(cfg).unwrap());
            robust.run().unwrap();
            assert_eq!(
                final_model_bits(&spec.deployment),
                final_model_bits(robust.deployment_mut()),
                "{attack:?} did not land the pure-robust model"
            );
        }
    }
}
