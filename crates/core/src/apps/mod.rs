//! The Byzantine ML applications of §5 and the baselines of §6.2.
//!
//! Every application drives a [`Deployment`](crate::Deployment) through
//! iterations of the paper's training loops (Listings 1–3), records a
//! [`TrainingTrace`](crate::TrainingTrace) with the per-iteration
//! computation / communication / aggregation breakdown, and evaluates
//! accuracy on the held-out test set at the configured cadence.

mod aggregathor;
mod crash_tolerant;
mod decentralized;
mod msmw;
mod speculative;
mod ssmw;
mod vanilla;

pub use aggregathor::AggregaThorApp;
pub use crash_tolerant::CrashTolerantApp;
pub use decentralized::DecentralizedApp;
pub use msmw::MsmwApp;
pub use speculative::SpeculativeApp;
pub use ssmw::SsmwApp;
pub use vanilla::VanillaApp;

use crate::{AccuracyPoint, Deployment, TrainingTrace};

/// Records an accuracy point on `trace` if the evaluation cadence says so.
pub(crate) fn maybe_evaluate(
    trace: &mut TrainingTrace,
    deployment: &Deployment,
    server_index: usize,
    iteration: usize,
    loss: f32,
) {
    let every = deployment.config().eval_every;
    let last = iteration + 1 == deployment.config().iterations;
    if every == 0 || (!iteration.is_multiple_of(every) && !last) {
        return;
    }
    let (accuracy, _) = deployment.evaluate(server_index);
    let sim_time = trace.total_time();
    trace.accuracy.push(AccuracyPoint {
        iteration,
        sim_time,
        accuracy,
        loss,
    });
}
