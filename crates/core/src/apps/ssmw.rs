//! SSMW — Single Server, Multiple Workers (§5.1, Listing 1).

use crate::apps::maybe_evaluate;
use crate::{CoreResult, Deployment, IterationTiming, SystemKind, TrainingTrace};
use garfield_aggregation::build_gar;

/// The standard Byzantine-worker setup: a single *trusted* parameter server
/// aggregates worker gradients with a statistically robust GAR instead of
/// averaging them (the setting studied by Krum, Bulyan, AggregaThor, …).
pub struct SsmwApp {
    deployment: Deployment,
}

impl SsmwApp {
    /// Wraps a deployment. Only server 0 is used and it is assumed trusted.
    pub fn new(deployment: Deployment) -> Self {
        SsmwApp { deployment }
    }

    /// Access to the underlying deployment.
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Runs the training loop of Listing 1 and returns the trace.
    ///
    /// # Errors
    ///
    /// Propagates configuration and runtime errors from the deployment.
    pub fn run(&mut self) -> CoreResult<TrainingTrace> {
        let config = self.deployment.config().clone();
        config.validate(SystemKind::Ssmw)?;
        let quorum = config.gradient_quorum(SystemKind::Ssmw);
        let gar = build_gar(&config.gradient_gar, quorum, config.fw)?;
        let mut trace = TrainingTrace::new(SystemKind::Ssmw.as_str(), config.effective_batch());

        for iteration in 0..config.iterations {
            // gradients = ps.get_gradients(i, nw)
            let round = self.deployment.gradient_round(0, iteration, quorum, 1)?;
            // aggr_grad = gar(gradients, f = fw)
            let aggregated = self
                .deployment
                .server(0)
                .honest()
                .aggregate(gar.as_ref(), &round.gradients)?;
            // ps.update_model(aggr_grad)
            self.deployment
                .server_mut(0)
                .honest_mut()
                .update_model(&aggregated)?;

            let aggregation = self.deployment.aggregation_cost(quorum, true);
            trace.iterations.push(IterationTiming {
                computation: round.computation_time,
                communication: round.communication_time,
                aggregation,
            });
            maybe_evaluate(&mut trace, &self.deployment, 0, iteration, round.mean_loss);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use garfield_aggregation::GarKind;
    use garfield_attacks::AttackKind;

    fn config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg.gradient_gar = GarKind::MultiKrum;
        cfg
    }

    #[test]
    fn ssmw_learns_without_faults() {
        let mut app = SsmwApp::new(Deployment::new(config()).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "accuracy {}",
            trace.final_accuracy()
        );
        assert_eq!(trace.system, "ssmw");
    }

    #[test]
    fn ssmw_survives_byzantine_workers_up_to_fw() {
        let mut cfg = config();
        cfg.actual_byzantine_workers = cfg.fw;
        cfg.worker_attack = Some(AttackKind::Reversed);
        let mut app = SsmwApp::new(Deployment::new(cfg).unwrap());
        let trace = app.run().unwrap();
        assert!(
            trace.final_accuracy() > 0.5,
            "robust aggregation should survive fw Byzantine workers, got {}",
            trace.final_accuracy()
        );
    }

    #[test]
    fn ssmw_is_slower_than_vanilla_due_to_robust_aggregation() {
        let cfg = config();
        let ssmw_trace = SsmwApp::new(Deployment::new(cfg.clone()).unwrap())
            .run()
            .unwrap();
        let vanilla_trace = crate::apps::VanillaApp::new(Deployment::new(cfg).unwrap())
            .run()
            .unwrap();
        assert!(ssmw_trace.mean_timing().aggregation >= vanilla_trace.mean_timing().aggregation);
    }
}
