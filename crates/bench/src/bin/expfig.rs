//! `expfig` — regenerate the tables and figures of the Garfield paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p garfield-bench --bin expfig -- <experiment> [...]
//! cargo run --release -p garfield-bench --bin expfig -- all
//! cargo run --release -p garfield-bench --bin expfig -- perf \
//!     [--quick] [--out BENCH_aggregation.json] \
//!     [--check results/perf_baseline.json] [--tolerance 0.20] \
//!     [--merge-baseline results/perf_baseline.json] \
//!     [--threads N] [--require-baseline] [--obs-gate]
//! cargo run --release -p garfield-bench --bin expfig -- trace <flight-dir>
//! cargo run --release -p garfield-bench --bin expfig -- watch <spec> \
//!     [--interval-ms 1000] [--csv results/watch.csv] [--once]
//! ```
//!
//! Recognised experiment ids: `table1`, `fig3a`, `fig3b`, `fig4a`, `fig4b`,
//! `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`, `fig12`,
//! `fig13`, `fig14`, `fig15`, `fig16`, `table2`, `variance`, `dec-scaling`,
//! `runtime` (live-vs-sim executor comparison).
//! Each prints its rows and writes `results/<id>.csv`.
//!
//! `perf` is the GAR-engine micro-benchmark: it times the distance kernels
//! (scalar / chunked / blocked / Gram), sweeps every GAR over d × n on the
//! sequential and parallel engines, asserts bit-identical outputs, and
//! writes `BENCH_aggregation.json` stamped with the effective thread count.
//!
//! With `--check` it gates against a baseline file holding one recorded
//! report per `(threads, quick)` key: entries recorded at a *different*
//! thread count are never compared (throughput is not comparable across
//! machine shapes) — if the file has no entry for this machine's thread
//! count the gate prints a notice and passes (or, with `--require-baseline`,
//! fails with recording instructions — the CI arming step), and
//! `--merge-baseline PATH` records the current report into the file so CI
//! can capture a multi-core baseline as an artifact. On multi-thread runs
//! the gate additionally fails if `Engine::auto` lost to
//! `Engine::sequential` by more than 10% on any cell (the fan-out heuristic
//! regression assertion). `--threads N` pins the parallel engine's thread
//! count (for recording a baseline under another machine shape's key; the
//! fan-out gate is skipped, since an oversubscribed engine tells you
//! nothing about the heuristic). `--obs-gate` additionally times a
//! representative aggregation cell with the `garfield-obs` layer disabled
//! vs enabled and fails if the instrumentation costs more than 2% of
//! aggregation throughput.
//!
//! `trace <dir>` merges the `flight-*.jsonl` dumps that `garfield-node
//! --flight-dir` processes wrote into one per-round cross-node timeline
//! (who was slow, which pulls were re-asked, how the round split between
//! gathering the quorum and the aggregate/apply tail, and which sender rode
//! the round's worst wire hop), printed and written to `results/trace.csv`;
//! the cross-round per-sender one-way-delay profile from the wire-header
//! stamps lands in `results/trace_peers.csv`.
//!
//! `watch <spec>` is the live cluster view: the spec maps node ids to the
//! `--metrics-addr` endpoints, and the command polls `/healthz` +
//! `/metrics` per node, rendering a refreshing table (round, rounds/s,
//! round-latency p50/p99, queue depth, drops, top-suspicion peers) while
//! appending every poll to the CSV sink. `--once` scrapes once and prints
//! one JSON object per node instead — the machine-readable face for tests
//! and scripts. The watch exits on its own when every node that was up has
//! gone down.

use garfield_bench::figures;
use garfield_bench::perf;
use garfield_bench::report::{print_table, write_csv, Row};
use garfield_bench::trace;
use garfield_bench::watch;
use garfield_net::Device;
use std::time::{Duration, Instant};

fn run_one(id: &str) -> Option<(String, Vec<Row>)> {
    let rows = match id {
        "table1" => figures::table1(),
        "fig3a" => figures::fig3a(100_000),
        "fig3b" => figures::fig3b(1_000_000),
        // Fig. 4a (TensorFlow / CPU / asynchronous Bulyan-style) and 4b
        // (PyTorch / GPU / synchronous Multi-Krum) differ in synchrony here;
        // Fig. 11 is the same data plotted against simulated time, which the
        // rows already contain.
        "fig4a" | "fig11a" => figures::fig4(false),
        "fig4b" | "fig11b" => figures::fig4(true),
        "fig5" => figures::fig5(),
        "fig6" | "fig6a" => figures::fig6(Device::Cpu),
        "fig6b" | "fig15" => figures::fig6(Device::Gpu),
        "fig7" => figures::fig7(Device::Cpu),
        "fig16" => figures::fig7(Device::Gpu),
        "fig8" | "fig8a" => figures::fig8(Device::Cpu),
        "fig8b" => figures::fig8(Device::Gpu),
        "fig9" => figures::fig9(),
        "fig10" | "fig10a" | "fig10b" | "fig13" | "fig14" => figures::fig10(Device::Cpu),
        "table2" => figures::table2(),
        "fig12" => figures::fig12(),
        "variance" => figures::variance_report(),
        "runtime" => garfield_bench::runtime_report(),
        "dec-scaling" => figures::decentralized_scaling(),
        other => {
            eprintln!("unknown experiment '{other}'");
            return None;
        }
    };
    Some((id.to_string(), rows))
}

/// Runs the `perf` subcommand; returns the process exit code.
fn run_perf(args: &[String]) -> i32 {
    let mut config = perf::PerfConfig::full();
    let mut out_path = String::from("BENCH_aggregation.json");
    let mut check_path: Option<String> = None;
    let mut merge_path: Option<String> = None;
    let mut tolerance = perf::DEFAULT_TOLERANCE;
    let mut threads_override: Option<usize> = None;
    let mut require_baseline = false;
    let mut obs_gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config = perf::PerfConfig::quick(),
            "--threads" => match it.next().and_then(|t| t.parse::<usize>().ok()) {
                Some(t) if t >= 1 => threads_override = Some(t),
                _ => {
                    eprintln!("--threads requires an integer ≥ 1");
                    return 2;
                }
            },
            "--require-baseline" => require_baseline = true,
            "--obs-gate" => obs_gate = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return 2;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check requires a baseline path");
                    return 2;
                }
            },
            "--merge-baseline" => match it.next() {
                Some(p) => merge_path = Some(p.clone()),
                None => {
                    eprintln!("--merge-baseline requires a path");
                    return 2;
                }
            },
            "--tolerance" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a fraction in [0, 1)");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown perf flag '{other}'");
                return 2;
            }
        }
    }

    // The effective engine shape, logged and recorded in the report so every
    // entry is self-describing: Engine::with_threads clamps a requested 0 to
    // 1 in exactly one place, so what it reports here is what every sweep
    // cell actually ran with.
    let engine = match threads_override {
        Some(t) => garfield_aggregation::Engine::with_threads(t),
        None => garfield_aggregation::Engine::auto(),
    };
    println!(
        "perf sweep: {} mode, effective engine: {} thread{} ({}), \
         fast-math off, d={:?}, n={:?}",
        if config.quick { "quick" } else { "full" },
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" },
        if threads_override.is_some() {
            "--threads override"
        } else {
            "Engine::auto"
        },
        config.dims,
        config.ns
    );
    let report = perf::run_report_with(&config, &engine);
    print_table(
        "kernels (pairwise distance fill, 1 thread)",
        &perf::kernel_rows(&report.kernels),
    );
    print_table(
        "perf (GAR engine, parallel vs sequential)",
        &perf::as_rows(&report.entries),
    );

    let divergent: Vec<&perf::PerfPoint> = report.entries.iter().filter(|p| !p.identical).collect();
    for p in &divergent {
        eprintln!(
            "ENGINE MISMATCH: {} n={} d={} — parallel output differs from sequential",
            p.gar, p.n, p.d
        );
    }

    let json = perf::report_to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        return 1;
    }
    println!("(written to {out_path})");

    if !divergent.is_empty() {
        return 1;
    }

    // The fan-out sanity gate needs no baseline: parallel vs sequential is
    // measured within this very sweep. Skipped under a --threads override —
    // a pinned thread count can oversubscribe this machine, and losing to
    // sequential then says nothing about the `threads_for` heuristic.
    let fanout = if threads_override.is_some() {
        println!("fan-out gate skipped under --threads override");
        Vec::new()
    } else {
        perf::parallel_regressions(&report, perf::PARALLEL_LOSS_TOLERANCE)
    };
    if !fanout.is_empty() {
        eprintln!(
            "parallel-engine fan-out regression (Engine::auto must stay within {:.0}% of \
             sequential):",
            perf::PARALLEL_LOSS_TOLERANCE * 100.0
        );
        for p in &fanout {
            eprintln!("  {p}");
        }
        return 1;
    }

    if obs_gate {
        let m = perf::obs_overhead(&config);
        println!(
            "obs overhead ({} n={} d={}): disabled {:.3} ms, enabled {:.3} ms — {:+.2}%",
            m.gar,
            m.n,
            m.d,
            m.disabled_secs * 1e3,
            m.enabled_secs * 1e3,
            m.overhead() * 100.0
        );
        if m.overhead() > perf::OBS_OVERHEAD_TOLERANCE {
            eprintln!(
                "obs gate FAILED: enabled observability costs {:.2}% of aggregation \
                 throughput (limit {:.0}%)",
                m.overhead() * 100.0,
                perf::OBS_OVERHEAD_TOLERANCE * 100.0
            );
            return 1;
        }
        println!(
            "obs gate passed: instrumentation overhead within {:.0}%",
            perf::OBS_OVERHEAD_TOLERANCE * 100.0
        );
    }

    let mut code = 0;
    if let Some(baseline_path) = check_path {
        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read baseline {baseline_path}: {e}");
                return 1;
            }
        };
        let baselines = match perf::parse_baselines(&baseline_text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("malformed baseline {baseline_path}: {e}");
                return 1;
            }
        };
        match perf::matching_baseline(&baselines, &report) {
            None => {
                // Refuse to compare across machine shapes: a 1-core baseline
                // says nothing about an 8-core run. Without
                // --require-baseline this is not an error — record a
                // baseline for this shape with --merge-baseline.
                let shapes: Vec<String> = baselines
                    .iter()
                    .map(|b| {
                        format!(
                            "{} thread{}/{}",
                            b.threads,
                            if b.threads == 1 { "" } else { "s" },
                            if b.quick { "quick" } else { "full" }
                        )
                    })
                    .collect();
                let notice = format!(
                    "{baseline_path} has no baseline recorded at {} threads ({} mode); \
                     recorded shapes: [{}]. Refusing to compare across thread counts — \
                     run `expfig perf --quick --merge-baseline {baseline_path}` on this \
                     machine (or `--threads {} --merge-baseline …` elsewhere) and commit \
                     the result to record one.",
                    report.threads,
                    if report.quick { "quick" } else { "full" },
                    shapes.join(", "),
                    report.threads,
                );
                if require_baseline {
                    eprintln!("perf gate UNARMED (--require-baseline): {notice}");
                    code = 1;
                } else {
                    println!("perf gate SKIPPED: {notice}");
                }
            }
            Some(base) => {
                let mut problems = perf::regressions(&report.entries, &base.entries, tolerance);
                problems.extend(perf::kernel_regressions(
                    &report.kernels,
                    &base.kernels,
                    tolerance,
                ));
                if !problems.is_empty() {
                    eprintln!(
                        "perf regression vs {baseline_path} at {} threads (tolerance {:.0}%):",
                        base.threads,
                        tolerance * 100.0
                    );
                    for p in &problems {
                        eprintln!("  {p}");
                    }
                    code = 1;
                } else {
                    println!(
                        "perf gate passed: no GAR or kernel regressed more than {:.0}% vs \
                         {baseline_path} at {} threads",
                        tolerance * 100.0,
                        base.threads
                    );
                }
            }
        }
    }

    if let Some(merge_path) = merge_path {
        let mut baselines = match std::fs::read_to_string(&merge_path) {
            Ok(text) => match perf::parse_baselines(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("malformed baseline {merge_path}: {e}");
                    return 1;
                }
            },
            Err(_) => Vec::new(), // new file
        };
        perf::merge_baseline(&mut baselines, report);
        if let Err(e) = std::fs::write(&merge_path, perf::baselines_to_json(&baselines)) {
            eprintln!("could not write {merge_path}: {e}");
            return 1;
        }
        println!(
            "(baseline for {} recorded into {merge_path})",
            baselines
                .iter()
                .map(|b| format!("{}t", b.threads))
                .collect::<Vec<_>>()
                .join("+")
        );
    }
    code
}

/// Runs the `trace` subcommand: merge a directory of flight dumps into a
/// per-round cross-node timeline. Returns the process exit code.
fn run_trace(args: &[String]) -> i32 {
    let Some(dir) = args.first() else {
        eprintln!("usage: expfig trace <dir with flight-*.jsonl dumps>");
        return 2;
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return 1;
        }
    };
    let mut files: Vec<std::path::PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("no .jsonl flight dumps in {dir} (run nodes with --flight-dir {dir})");
        return 1;
    }
    let mut dumps = Vec::new();
    for path in &files {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| trace::parse_dump(&text));
        match parsed {
            Ok(dump) => {
                println!(
                    "{}: {} events (pid {})",
                    path.display(),
                    dump.events.len(),
                    dump.pid
                );
                dumps.push(dump);
            }
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return 1;
            }
        }
    }
    let merged = trace::merge(&dumps);
    let rows = trace::as_rows(&trace::rounds(&merged));
    print_table(
        &format!("trace ({} dumps, {} events)", dumps.len(), merged.len()),
        &rows,
    );
    if let Err(e) = write_csv("results/trace.csv", &rows) {
        eprintln!("could not write results/trace.csv: {e}");
        return 1;
    }
    println!("(written to results/trace.csv)");

    // The cross-round network view: every sender's one-way delay profile
    // from the wire-header stamps (empty when the dumps predate v2 headers).
    let peer_rows = trace::as_peer_rows(&trace::peer_delays(&merged));
    if !peer_rows.is_empty() {
        print_table("per-peer one-way delay (wire stamps)", &peer_rows);
        if let Err(e) = write_csv("results/trace_peers.csv", &peer_rows) {
            eprintln!("could not write results/trace_peers.csv: {e}");
            return 1;
        }
        println!("(written to results/trace_peers.csv)");
    }
    0
}

/// Runs the `watch` subcommand: poll every node's scrape endpoint and
/// render a refreshing per-node cluster table. Returns the exit code.
fn run_watch(args: &[String]) -> i32 {
    let mut spec_path: Option<&String> = None;
    let mut interval = Duration::from_millis(1_000);
    let mut once = false;
    let mut csv_path = String::from("results/watch.csv");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 100 => interval = Duration::from_millis(ms),
                _ => {
                    eprintln!("--interval-ms requires an integer ≥ 100");
                    return 2;
                }
            },
            "--csv" => match it.next() {
                Some(p) => csv_path = p.clone(),
                None => {
                    eprintln!("--csv requires a path");
                    return 2;
                }
            },
            other if spec_path.is_none() && !other.starts_with('-') => spec_path = Some(arg),
            other => {
                eprintln!("unknown watch flag '{other}'");
                return 2;
            }
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!(
            "usage: expfig watch <spec: 'node-id metrics-host:port' lines> \
             [--interval-ms N] [--csv PATH] [--once]"
        );
        return 2;
    };
    let spec_text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return 1;
        }
    };
    let timeout = Duration::from_millis(500.min(interval.as_millis() as u64));

    if once {
        // Machine-readable: one JSON object per node on stdout, nothing else.
        return match watch::watch_once(&spec_text, timeout) {
            Ok(lines) => {
                println!("{lines}");
                0
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        };
    }

    let targets = match watch::parse_spec(&spec_text) {
        Ok(t) if !t.is_empty() => t,
        Ok(_) => {
            eprintln!("{spec_path} names no node");
            return 2;
        }
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut csv: Option<std::fs::File> = None;
    let mut previous: Option<(Vec<garfield_bench::watch::NodeView>, Instant)> = None;
    let mut seen_up = false;
    for poll_index in 0u64.. {
        let views = watch::poll(&targets, timeout);
        let now = Instant::now();
        let rates: Vec<f64> = views
            .iter()
            .map(|v| {
                let prev = previous.as_ref().and_then(|(vs, at)| {
                    vs.iter()
                        .find(|p| p.node == v.node)
                        .map(|p| (p, at.elapsed().as_secs_f64()))
                });
                match prev {
                    Some((p, elapsed)) => watch::rounds_per_sec(Some(p), v, elapsed),
                    None => 0.0,
                }
            })
            .collect();

        // CSV sink: lazily created so a spec typo never leaves an empty file.
        if csv.is_none() {
            if let Some(parent) = std::path::Path::new(&csv_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::File::create(&csv_path) {
                Ok(mut file) => {
                    use std::io::Write as _;
                    let _ = writeln!(file, "{}", watch::csv_header());
                    csv = Some(file);
                }
                Err(e) => {
                    eprintln!("could not write {csv_path}: {e}");
                    return 1;
                }
            }
        }
        if let Some(file) = &mut csv {
            use std::io::Write as _;
            for (v, rate) in views.iter().zip(&rates) {
                let _ = writeln!(file, "{}", watch::csv_line(poll_index, v, *rate));
            }
        }

        // Refresh the screen in place: clear, home, redraw.
        print!("\x1b[2J\x1b[H");
        println!(
            "garfield watch — {} nodes, every {} ms (Ctrl-C to stop, CSV → {csv_path})\n",
            targets.len(),
            interval.as_millis()
        );
        print!("{}", watch::render_table(&views, &rates));
        let _ = std::io::Write::flush(&mut std::io::stdout());

        // The watch outlives any one node, but not the cluster: once every
        // node that was up has gone down, the run is over.
        let any_up = views.iter().any(|v| v.up);
        seen_up |= any_up;
        if seen_up && !any_up {
            println!("\nevery node is down — run over, exiting");
            return 0;
        }
        previous = Some((views, now));
        std::thread::sleep(interval);
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: expfig <experiment id ...> | all | perf [flags] | trace <dir> | watch <spec> [flags]   (see --help in the doc comment)");
        std::process::exit(2);
    }
    if args[0] == "perf" {
        std::process::exit(run_perf(&args[1..]));
    }
    if args[0] == "trace" {
        std::process::exit(run_trace(&args[1..]));
    }
    if args[0] == "watch" {
        std::process::exit(run_watch(&args[1..]));
    }
    let quick_all = [
        "table1",
        "fig3a",
        "fig3b",
        "fig4a",
        "fig4b",
        "fig5",
        "fig6",
        "fig6b",
        "fig7",
        "fig8",
        "fig8b",
        "fig9",
        "fig10",
        "fig12",
        "fig16",
        "table2",
        "variance",
        "dec-scaling",
        "runtime",
    ];
    let ids: Vec<String> = if args.len() == 1 && args[0] == "all" {
        quick_all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut failures = 0;
    for id in ids {
        match run_one(&id) {
            Some((name, rows)) => {
                print_table(&name, &rows);
                let path = format!("results/{name}.csv");
                if let Err(e) = write_csv(&path, &rows) {
                    eprintln!("could not write {path}: {e}");
                } else {
                    println!("(written to {path})");
                }
            }
            None => failures += 1,
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
