//! `expfig` — regenerate the tables and figures of the Garfield paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p garfield-bench --bin expfig -- <experiment> [...]
//! cargo run --release -p garfield-bench --bin expfig -- all
//! ```
//!
//! Recognised experiment ids: `table1`, `fig3a`, `fig3b`, `fig4a`, `fig4b`,
//! `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`, `fig12`,
//! `fig13`, `fig14`, `fig15`, `fig16`, `table2`, `variance`, `dec-scaling`,
//! `runtime` (live-vs-sim executor comparison).
//! Each prints its rows and writes `results/<id>.csv`.

use garfield_bench::figures;
use garfield_bench::report::{print_table, write_csv, Row};
use garfield_net::Device;

fn run_one(id: &str) -> Option<(String, Vec<Row>)> {
    let rows = match id {
        "table1" => figures::table1(),
        "fig3a" => figures::fig3a(100_000),
        "fig3b" => figures::fig3b(1_000_000),
        // Fig. 4a (TensorFlow / CPU / asynchronous Bulyan-style) and 4b
        // (PyTorch / GPU / synchronous Multi-Krum) differ in synchrony here;
        // Fig. 11 is the same data plotted against simulated time, which the
        // rows already contain.
        "fig4a" | "fig11a" => figures::fig4(false),
        "fig4b" | "fig11b" => figures::fig4(true),
        "fig5" => figures::fig5(),
        "fig6" | "fig6a" => figures::fig6(Device::Cpu),
        "fig6b" | "fig15" => figures::fig6(Device::Gpu),
        "fig7" => figures::fig7(Device::Cpu),
        "fig16" => figures::fig7(Device::Gpu),
        "fig8" | "fig8a" => figures::fig8(Device::Cpu),
        "fig8b" => figures::fig8(Device::Gpu),
        "fig9" => figures::fig9(),
        "fig10" | "fig10a" | "fig10b" | "fig13" | "fig14" => figures::fig10(Device::Cpu),
        "table2" => figures::table2(),
        "fig12" => figures::fig12(),
        "variance" => figures::variance_report(),
        "runtime" => garfield_bench::runtime_report(),
        "dec-scaling" => figures::decentralized_scaling(),
        other => {
            eprintln!("unknown experiment '{other}'");
            return None;
        }
    };
    Some((id.to_string(), rows))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: expfig <experiment id ...> | all   (see --help in the doc comment)");
        std::process::exit(2);
    }
    let quick_all = [
        "table1",
        "fig3a",
        "fig3b",
        "fig4a",
        "fig4b",
        "fig5",
        "fig6",
        "fig6b",
        "fig7",
        "fig8",
        "fig8b",
        "fig9",
        "fig10",
        "fig12",
        "fig16",
        "table2",
        "variance",
        "dec-scaling",
        "runtime",
    ];
    let ids: Vec<String> = if args.len() == 1 && args[0] == "all" {
        quick_all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut failures = 0;
    for id in ids {
        match run_one(&id) {
            Some((name, rows)) => {
                print_table(&name, &rows);
                let path = format!("results/{name}.csv");
                if let Err(e) = write_csv(&path, &rows) {
                    eprintln!("could not write {path}: {e}");
                } else {
                    println!("(written to {path})");
                }
            }
            None => failures += 1,
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
