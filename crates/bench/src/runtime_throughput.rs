//! Live-vs-sim throughput comparison: the `runtime` report.
//!
//! The analytic sim substrate reports *simulated* updates/second (a function
//! of the cost model, comparable across systems and to the paper's figures);
//! the live substrate reports *wall-clock* updates/second on this machine
//! plus the message/byte volume its actors actually moved through the
//! router. The two throughput columns are therefore not directly comparable
//! to each other — the report exists to track the live runtime's real cost
//! over time and to pin the invariant that both substrates learn the same
//! model (the `acc_gap` column should stay ~0).

//! The live run additionally reports wall-clock latency *distributions*
//! sourced from the `garfield-obs` phase histograms the runtime actors feed
//! (`garfield_phase_seconds{phase=…}` / `garfield_round_seconds`): p50 and
//! p99 per phase, where a mean alone would hide a straggler tail. Quantiles
//! are log-bucket upper bounds (factor-of-2 buckets), so they are coarse
//! but monotone and cheap.
//!
//! ### `results/runtime.csv` schema
//!
//! One row per system (`vanilla`, `ssmw`, `msmw`, `speculative`) plus one
//! sharded row (`ssmw@2sh`: the model split over 2 parameter shards under
//! the median, the executor's sharded mode); columns:
//!
//! | column | meaning |
//! |---|---|
//! | `shards` | parameter shard count of the live run (1 = unsharded) |
//! | `sim_ups` | simulated updates/s of the analytic substrate |
//! | `live_ups` | wall-clock updates/s of the threaded substrate |
//! | `live_msgs` | messages the live actors put on the wire |
//! | `live_mb` | payload megabytes sent |
//! | `wire_mb` | on-wire megabytes (payload + framing) |
//! | `dropped` | frames dropped by transport backpressure |
//! | `resumes` | crash-recovery rejoins |
//! | `retried` | re-asked pull requests |
//! | `comm_p50_ms` / `comm_p99_ms` | communication-phase latency quantiles |
//! | `agg_p50_ms` / `agg_p99_ms` | aggregation-phase latency quantiles |
//! | `round_p50_ms` / `round_p99_ms` | whole-round latency quantiles |
//! | `acc_gap` | \|sim − live\| final accuracy (should stay ~0) |

use crate::report::Row;
use garfield_aggregation::{build_gar, Engine, GarKind};
use garfield_core::{Deployment, Executor, ExperimentConfig, SimExecutor, SystemKind};
use garfield_obs::{metrics, Histogram, HistogramSnapshot};
use garfield_runtime::LiveExecutor;
use garfield_tensor::{GradientView, Tensor, TensorRng};
use std::time::Instant;

/// One system's sim-vs-live measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimePoint {
    /// Which system was measured.
    pub system: SystemKind,
    /// Parameter shard count of the live run (1 = one full-model server per
    /// replica; > 1 = one server thread per contiguous parameter shard).
    pub shards: usize,
    /// Simulated updates/second of the analytic substrate.
    pub sim_updates_per_second: f64,
    /// Wall-clock updates/second of the threaded substrate on this machine.
    pub live_updates_per_second: f64,
    /// Messages the live actors put on the wire.
    pub live_messages: u64,
    /// Payload bytes the live actors put on the wire.
    pub live_bytes: u64,
    /// On-wire bytes reported by the transport's per-peer counters. For the
    /// in-process router this equals `live_bytes`; over `garfield-transport`
    /// TCP it additionally includes frame headers.
    pub live_wire_bytes: u64,
    /// Messages dropped by transport backpressure (0 on a healthy run).
    pub live_dropped: u64,
    /// Crash-recovery rejoins across the run's nodes (0 fault-free; nonzero
    /// when a `RestartAt` fault or a `--resume` was in play).
    pub live_resumes: u64,
    /// Requests re-sent to peers that had not replied within the retry
    /// window (0 when every peer answers promptly).
    pub live_retried: u64,
    /// Final accuracy of the sim run.
    pub sim_accuracy: f64,
    /// Final accuracy of the live run.
    pub live_accuracy: f64,
    /// Communication-phase (p50, p99) seconds from the live run's histograms.
    pub comm_quantiles: (f64, f64),
    /// Aggregation-phase (p50, p99) seconds from the live run's histograms.
    pub agg_quantiles: (f64, f64),
    /// Whole-round (p50, p99) seconds from the live run's histograms.
    pub round_quantiles: (f64, f64),
}

/// Handles on the phase histograms the runtime actors feed, plus a snapshot
/// taken before a run so per-run quantiles come from interval deltas (the
/// registry is process-global and accumulates across systems).
struct PhaseHists {
    communication: Histogram,
    aggregation: Histogram,
    round: Histogram,
}

impl PhaseHists {
    fn get() -> PhaseHists {
        // Same (name, labels) keys the actors register; help text is taken
        // from whichever registration happens first.
        let phase = |name| {
            metrics::histogram(
                "garfield_phase_seconds",
                "Per-round phase latency (the paper's compute/communication/\
                 aggregation breakdown, plus checkpointing), by phase.",
                &[("phase", name)],
            )
        };
        PhaseHists {
            communication: phase("communication"),
            aggregation: phase("aggregation"),
            round: metrics::histogram(
                "garfield_round_seconds",
                "End-to-end server round latency.",
                &[],
            ),
        }
    }

    fn snapshot(&self) -> [HistogramSnapshot; 3] {
        [
            self.communication.snapshot(),
            self.aggregation.snapshot(),
            self.round.snapshot(),
        ]
    }
}

fn quantiles(after: &HistogramSnapshot, before: &HistogramSnapshot) -> (f64, f64) {
    let delta = after.since(before);
    (
        delta.quantile(0.5).unwrap_or(0.0),
        delta.quantile(0.99).unwrap_or(0.0),
    )
}

/// Runs vanilla, SSMW, MSMW and speculative on both substrates (fault-free,
/// identical seeds) and measures each.
///
/// # Errors
///
/// Propagates any configuration or runtime error from either substrate.
pub fn measure(iterations: usize) -> garfield_core::CoreResult<Vec<RuntimePoint>> {
    let mut cfg = ExperimentConfig::small();
    cfg.iterations = iterations.max(1);
    cfg.eval_every = iterations.max(1);
    // The phase quantile columns exist only if the actors record: turn the
    // observability layer on for the measurement (it stays on — `expfig`
    // is a harness process, not a latency-critical service).
    garfield_obs::enable();
    let hists = PhaseHists::get();
    let mut points = Vec::new();
    for system in [
        SystemKind::Vanilla,
        SystemKind::Ssmw,
        SystemKind::Msmw,
        SystemKind::Speculative,
    ] {
        let sim_trace = SimExecutor::new(cfg.clone()).run(system)?;
        let mut live = LiveExecutor::new(cfg.clone());
        let before = hists.snapshot();
        let report = live.run_live(system)?;
        let after = hists.snapshot();
        let wall: f64 = report.telemetry.round_latencies.iter().sum();
        points.push(RuntimePoint {
            system,
            shards: 1,
            sim_updates_per_second: sim_trace.updates_per_second(),
            live_updates_per_second: report.trace.len() as f64 / wall.max(1e-9),
            live_messages: report.telemetry.total_messages(),
            live_bytes: report.telemetry.total_bytes(),
            live_wire_bytes: report.telemetry.total_wire_bytes(),
            live_dropped: report.telemetry.total_dropped(),
            live_resumes: report.telemetry.total_resumes(),
            live_retried: report.telemetry.total_requests_retried(),
            sim_accuracy: sim_trace.final_accuracy() as f64,
            live_accuracy: report.trace.final_accuracy() as f64,
            comm_quantiles: quantiles(&after[0], &before[0]),
            agg_quantiles: quantiles(&after[1], &before[1]),
            round_quantiles: quantiles(&after[2], &before[2]),
        });
    }
    // The sharded row: SSMW split over 2 parameter shards, under the median
    // (the sweep needs a coordinate-decomposable GAR — validation rejects
    // the distance-based rules at shards > 1). The sim substrate is
    // shard-oblivious, so its columns are the analytic cost of the same
    // learning task; the live columns are what the per-shard server threads
    // actually moved. Shard servers skip in-run accuracy evaluation (no
    // shard holds the full model), so the stitched final model is evaluated
    // post-hoc for the `acc_gap` column.
    let mut sharded_cfg = cfg.clone();
    sharded_cfg.gradient_gar = GarKind::Median;
    sharded_cfg.shards = 2;
    let sim_trace = SimExecutor::new(sharded_cfg.clone()).run(SystemKind::Ssmw)?;
    let before = hists.snapshot();
    let report = LiveExecutor::new(sharded_cfg.clone()).run_live(SystemKind::Ssmw)?;
    let after = hists.snapshot();
    let live_accuracy = {
        let mut eval_cfg = sharded_cfg;
        eval_cfg.shards = 1;
        let mut deployment = Deployment::new(eval_cfg)?;
        deployment
            .server_mut(0)
            .honest_mut()
            .write_model(&report.final_models[0])?;
        deployment.evaluate(0).0
    };
    let wall: f64 = report.telemetry.round_latencies.iter().sum();
    points.push(RuntimePoint {
        system: SystemKind::Ssmw,
        shards: 2,
        sim_updates_per_second: sim_trace.updates_per_second(),
        live_updates_per_second: report.trace.len() as f64 / wall.max(1e-9),
        live_messages: report.telemetry.total_messages(),
        live_bytes: report.telemetry.total_bytes(),
        live_wire_bytes: report.telemetry.total_wire_bytes(),
        live_dropped: report.telemetry.total_dropped(),
        live_resumes: report.telemetry.total_resumes(),
        live_retried: report.telemetry.total_requests_retried(),
        sim_accuracy: sim_trace.final_accuracy() as f64,
        live_accuracy: live_accuracy as f64,
        comm_quantiles: quantiles(&after[0], &before[0]),
        agg_quantiles: quantiles(&after[1], &before[1]),
        round_quantiles: quantiles(&after[2], &before[2]),
    });
    Ok(points)
}

/// One fast-path-vs-robust measurement at a fixed aggregation shape: server
/// aggregation rounds/second of the speculative rule (fault-free, so every
/// round stays on the fast path) against pure Multi-Krum on the same inputs
/// and engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastPathPoint {
    /// Aggregation rounds/second of the speculative fast path.
    pub fast_rounds_per_second: f64,
    /// Aggregation rounds/second of pure Multi-Krum.
    pub robust_rounds_per_second: f64,
}

impl FastPathPoint {
    /// The speculative win: fast-path rounds/s over robust rounds/s.
    pub fn speedup(&self) -> f64 {
        self.fast_rounds_per_second / self.robust_rounds_per_second.max(1e-12)
    }
}

/// Measures the speculative fast-path win at shape `(d, n, f)` on honest
/// inputs: rounds/second of `speculative(multi-krum)` (the check never
/// trips, so every round is the fused average sweep) vs pure Multi-Krum,
/// each timed over `budget_secs` of wall clock after one warm-up round.
///
/// This is the paper's headline speculation claim (arXiv:1911.07537) at the
/// GARFIELD evaluation shape: at `d = 10⁶`, `n = 25` the fast path reads the
/// `n·d` payload once per round where Multi-Krum pays the `O(n²d)` distance
/// matrix, so rounds/s should be a small multiple apart (≳3× on machines
/// measured so far; see README "Speculative aggregation").
pub fn measure_fast_path(d: usize, n: usize, f: usize, budget_secs: f64) -> FastPathPoint {
    let mut rng = TensorRng::seed_from(0x5bec ^ (d as u64) ^ ((n as u64) << 32));
    let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
    let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
    let engine = Engine::auto();
    let rate = |kind: &GarKind| {
        let gar = build_gar(kind, n, f).expect("measurement shape is well-formed");
        // Warm-up: first-touch faults and allocator reuse land outside the
        // timed window (same policy as the perf sweep cells).
        gar.aggregate_views(&views, &engine)
            .expect("honest inputs aggregate");
        let start = Instant::now();
        let mut reps = 0usize;
        while reps == 0 || start.elapsed().as_secs_f64() < budget_secs {
            let out = gar
                .aggregate_views(&views, &engine)
                .expect("honest inputs aggregate");
            std::hint::black_box(out);
            reps += 1;
        }
        assert!(
            !gar.fell_back().unwrap_or(false),
            "honest inputs must stay on the fast path"
        );
        reps as f64 / start.elapsed().as_secs_f64()
    };
    FastPathPoint {
        fast_rounds_per_second: rate(&GarKind::Speculative {
            fallback: Box::new(GarKind::MultiKrum),
        }),
        robust_rounds_per_second: rate(&GarKind::MultiKrum),
    }
}

/// The `runtime` report rows printed by `expfig` and written to
/// `results/runtime.csv`.
pub fn runtime_report() -> Vec<Row> {
    let points = match measure(20) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("runtime report failed: {e}");
            return Vec::new();
        }
    };
    points
        .into_iter()
        .map(|p| {
            let name = if p.shards > 1 {
                format!("{}@{}sh", p.system.as_str(), p.shards)
            } else {
                p.system.as_str().to_string()
            };
            Row::new(
                name,
                vec![
                    ("shards", p.shards as f64),
                    ("sim_ups", p.sim_updates_per_second),
                    ("live_ups", p.live_updates_per_second),
                    ("live_msgs", p.live_messages as f64),
                    ("live_mb", p.live_bytes as f64 / 1.0e6),
                    ("wire_mb", p.live_wire_bytes as f64 / 1.0e6),
                    ("dropped", p.live_dropped as f64),
                    ("resumes", p.live_resumes as f64),
                    ("retried", p.live_retried as f64),
                    ("comm_p50_ms", p.comm_quantiles.0 * 1e3),
                    ("comm_p99_ms", p.comm_quantiles.1 * 1e3),
                    ("agg_p50_ms", p.agg_quantiles.0 * 1e3),
                    ("agg_p99_ms", p.agg_quantiles.1 * 1e3),
                    ("round_p50_ms", p.round_quantiles.0 * 1e3),
                    ("round_p99_ms", p.round_quantiles.1 * 1e3),
                    ("acc_gap", (p.sim_accuracy - p.live_accuracy).abs()),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_substrates_agree_and_live_moves_real_bytes() {
        // measure() turns the global obs flag on; serialize against tests
        // that toggle it.
        let _lock = crate::obs_test_lock();
        let points = measure(6).unwrap();
        assert_eq!(points.len(), 5, "four systems plus the sharded row");
        assert_eq!(
            (points[4].system, points[4].shards),
            (SystemKind::Ssmw, 2),
            "the fifth row is SSMW over 2 parameter shards"
        );
        assert!(points[..4].iter().all(|p| p.shards == 1));
        for p in &points {
            // The actors fed the phase histograms, so the quantile columns
            // must be live: every round takes > 0 time and p99 ≥ p50.
            assert!(
                p.round_quantiles.0 > 0.0,
                "{}: empty round histogram",
                p.system
            );
            assert!(p.round_quantiles.1 >= p.round_quantiles.0);
            assert!(p.comm_quantiles.1 >= p.comm_quantiles.0);
            assert!(p.agg_quantiles.1 >= p.agg_quantiles.0);
            assert!(p.sim_updates_per_second > 0.0);
            assert!(p.live_updates_per_second > 0.0);
            assert!(p.live_messages > 0, "{}: no live messages", p.system);
            assert!(p.live_bytes > 0);
            // The router transport frames nothing: its per-peer on-wire
            // counts must equal the actors' payload counts exactly, and a
            // healthy full-quorum run drops nothing.
            assert_eq!(p.live_wire_bytes, p.live_bytes, "{}", p.system);
            assert_eq!(p.live_dropped, 0, "{}", p.system);
            // A fault-free run never recovers and never needs a re-ask.
            assert_eq!(p.live_resumes, 0, "{}", p.system);
            assert_eq!(p.live_retried, 0, "{}", p.system);
            assert!(
                (p.sim_accuracy - p.live_accuracy).abs() < 1e-6,
                "{}: sim {} vs live {}",
                p.system,
                p.sim_accuracy,
                p.live_accuracy
            );
        }
        // MSMW replicates the server: it must move strictly more traffic.
        assert!(points[2].live_bytes > points[1].live_bytes);
    }

    #[test]
    fn fast_path_measurement_reports_sane_rates_at_a_small_shape() {
        // The full paper shape is a release-build measurement (below); this
        // keeps the measurement code itself exercised in debug runs.
        let point = measure_fast_path(4096, 9, 1, 0.05);
        assert!(point.fast_rounds_per_second > 0.0);
        assert!(point.robust_rounds_per_second > 0.0);
        assert!(point.speedup() > 0.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "throughput acceptance is a release-build measurement: run with \
                  `cargo test --release -p garfield-bench fast_path_is_3x`"
    )]
    fn fast_path_is_3x_multi_krum_at_the_paper_shape() {
        // d = 10⁶, n = 25: the evaluation shape the speculation claim is
        // stated at. Best-of-3 damps scheduler noise — the claim is about
        // the machine's capability, not about a single timing sample.
        let mut best: f64 = 0.0;
        for _ in 0..3 {
            let point = measure_fast_path(1_000_000, 25, 5, 1.0);
            best = best.max(point.speedup());
            if best >= 3.0 {
                break;
            }
        }
        assert!(
            best >= 3.0,
            "speculative fast path must be ≥3× Multi-Krum rounds/s at d=1e6 n=25, got {best:.2}×"
        );
    }
}
