//! Small reporting helpers: aligned text tables and CSV output.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One row of an experiment report: a label plus named numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (system name, model name, parameter value, …).
    pub label: String,
    /// `(column name, value)` pairs, printed in order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row from a label and `(column, value)` pairs.
    pub fn new(label: impl Into<String>, values: Vec<(&str, f64)>) -> Self {
        Row {
            label: label.into(),
            values: values
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// Prints rows as an aligned text table with the given title.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    print!("{:<28}", "");
    for (name, _) in &rows[0].values {
        print!("{name:>16}");
    }
    println!();
    for row in rows {
        print!("{:<28}", row.label);
        for (_, value) in &row.values {
            if value.abs() >= 1000.0 || (*value != 0.0 && value.abs() < 0.001) {
                print!("{value:>16.3e}");
            } else {
                print!("{value:>16.4}");
            }
        }
        println!();
    }
}

/// Writes rows as a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(path: impl AsRef<Path>, rows: &[Row]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::File::create(path)?;
    if let Some(first) = rows.first() {
        let header: Vec<&str> = std::iter::once("label")
            .chain(first.values.iter().map(|(k, _)| k.as_str()))
            .collect();
        writeln!(file, "{}", header.join(","))?;
    }
    for row in rows {
        let mut fields = vec![row.label.clone()];
        fields.extend(row.values.iter().map(|(_, v)| format!("{v}")));
        writeln!(file, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_to_csv() {
        let rows = vec![
            Row::new("a", vec![("x", 1.0), ("y", 2.0)]),
            Row::new("b", vec![("x", 3.0), ("y", 4.0)]),
        ];
        let dir = std::env::temp_dir().join("garfield-bench-test");
        let path = dir.join("rows.csv");
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("label,x,y"));
        assert!(text.contains("a,1,2"));
        assert!(text.contains("b,3,4"));
        print_table("test", &rows);
        print_table("empty", &[]);
    }
}
