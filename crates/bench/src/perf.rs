//! The `expfig perf` harness: GAR engine throughput, recorded and enforced.
//!
//! Sweeps every GAR over gradient dimension `d` × input count `n`, timing the
//! **sequential** engine (the retained single-threaded reference path) and
//! the **parallel** engine (thread-chunked distance matrix and coordinate
//! fills) on identical inputs, asserting their outputs are bit-identical.
//! A separate `kernels` section times the distance kernels themselves
//! (retained scalar reference vs chunked multi-lane vs blocked cache fill vs
//! Gram fast-math fill) so kernel-level regressions are visible even when a
//! GAR's end-to-end cost is dominated by something else.
//!
//! The sweep emits `BENCH_aggregation.json` (schema
//! `garfield-bench/aggregation-v2`) — the recorded perf trajectory CI uploads
//! as an artifact — and gates against `results/perf_baseline.json`, which
//! holds one recorded report *per thread count* (schema
//! `garfield-bench/aggregation-baselines-v2`): throughput is only comparable
//! between runs with the same parallelism, so `expfig perf --check` refuses
//! to compare against a baseline recorded at a different thread count (the
//! old gate silently compared every machine against a 1-core recording, so
//! parallel-engine regressions were invisible).

use crate::report::Row;
use garfield_aggregation::{build_gar, DistanceCache, Engine, Gar, GarKind};
use garfield_core::json::{self, Value};
use garfield_core::ShardMap;
use garfield_tensor::{
    squared_l2_distance_scalar, squared_l2_distance_slices, GradientView, TensorRng,
};
use std::hint::black_box;
use std::time::Instant;

/// Relative throughput loss versus the baseline that fails the CI gate.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Fraction of sequential-engine throughput `Engine::auto` may lose before
/// the parallel gate fails (speedup < 1 − this is a bug in `threads_for`,
/// not noise). Only enforced when the report was recorded with > 1 thread:
/// at 1 thread both engines run the identical code path and the ratio is
/// pure measurement noise.
pub const PARALLEL_LOSS_TOLERANCE: f64 = 0.10;

/// One sweep configuration.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Gradient dimensions to sweep.
    pub dims: Vec<usize>,
    /// Input counts to sweep.
    pub ns: Vec<usize>,
    /// Keep repeating a cell until it has run at least this long...
    pub target_secs: f64,
    /// ...but at most this many repetitions.
    pub max_reps: usize,
    /// Whether this is the CI quick sweep (recorded in the report).
    pub quick: bool,
}

impl PerfConfig {
    /// The full sweep of the issue spec: d ∈ {1e4, 1e5, 1e6} × n ∈ {15, 25, 51}.
    pub fn full() -> Self {
        PerfConfig {
            dims: vec![10_000, 100_000, 1_000_000],
            ns: vec![15, 25, 51],
            target_secs: 0.2,
            max_reps: 5,
            quick: false,
        }
    }

    /// The CI smoke sweep: small enough for a PR gate, still covering every
    /// GAR and both engines. The timing window is generous relative to the
    /// cell cost (sub-millisecond cells run many reps) so the 20% regression
    /// gate measures code, not scheduler noise.
    pub fn quick() -> Self {
        PerfConfig {
            dims: vec![10_000, 100_000],
            ns: vec![15, 25],
            target_secs: 0.15,
            max_reps: 40,
            quick: true,
        }
    }
}

/// One measured (GAR, n, d) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// GAR name.
    pub gar: String,
    /// Number of inputs.
    pub n: usize,
    /// Declared Byzantine bound used for this cell.
    pub f: usize,
    /// Gradient dimension.
    pub d: usize,
    /// Seconds per aggregation on the sequential engine.
    pub seq_secs: f64,
    /// Seconds per aggregation on the parallel engine.
    pub par_secs: f64,
    /// Parallel-engine throughput in gradient values per second (n·d / s).
    pub throughput: f64,
    /// Parallel-engine input bandwidth in MB/s (n·d·4 bytes / s).
    pub mb_s: f64,
    /// Sequential time over parallel time.
    pub speedup: f64,
    /// Whether the two engines produced bit-identical outputs.
    pub identical: bool,
}

/// One measured distance-kernel cell (single-threaded, pair-element rate).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel name: `scalar`, `chunked`, `blocked_exact` or `gram`.
    pub kernel: String,
    /// Number of inputs whose `n(n−1)/2` pairs were filled.
    pub n: usize,
    /// Gradient dimension.
    pub d: usize,
    /// Pair elements per second (`n(n−1)/2 · d` per fill / seconds).
    pub elem_s: f64,
}

/// One complete `expfig perf` recording: the machine shape it was measured
/// under plus every measured point. Baselines are keyed on `(threads,
/// quick)` — comparing across either is comparing different experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Thread count of the parallel engine when this report was recorded.
    pub threads: usize,
    /// Whether the quick (CI smoke) sweep produced this report.
    pub quick: bool,
    /// Distance-kernel throughput points.
    pub kernels: Vec<KernelPoint>,
    /// GAR sweep points.
    pub entries: Vec<PerfPoint>,
}

/// The Byzantine bound each GAR is swept with.
///
/// Distance-based rules use the strongest `f` valid for every rule at that
/// `n` (`(n-3)/4`, satisfying both `n ≥ 2f+3` and `n ≥ 4f+3`); MDA's subset
/// enumeration is `C(n, f)` — exponential in `f`, as the paper's Fig. 3
/// discussion notes — so it is swept at `f = 2` to keep the cell about the
/// distance matrix rather than the combinatorics.
pub fn sweep_f(kind: &GarKind, n: usize) -> usize {
    match kind {
        GarKind::Average => 0,
        GarKind::Mda => 2.min((n.saturating_sub(1)) / 2),
        GarKind::Median => (n.saturating_sub(1)) / 2,
        GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan => (n.saturating_sub(3)) / 4,
        // The composite is swept with whatever its fallback tolerates — the
        // fast path itself is f-independent.
        GarKind::Speculative { fallback } => sweep_f(fallback, n),
    }
}

/// Every kind the perf sweep measures: the six primitives plus one
/// speculative composite cell, whose honest random inputs keep the check on
/// the fast path — the fault-free fast-path throughput the regression gate
/// watches.
pub fn sweep_kinds() -> Vec<GarKind> {
    let mut kinds: Vec<GarKind> = GarKind::all().to_vec();
    kinds.push(GarKind::Speculative {
        fallback: Box::new(GarKind::MultiKrum),
    });
    kinds
}

/// Shard count of the sharded sweep cells (`<gar>@4sh`): every
/// coordinate-decomposable GAR is re-timed over a 4-way [`ShardMap`] split
/// of the same inputs, aggregating the shards one after another — the work
/// one round costs a sharded deployment, minus the network.
pub const SHARD_SWEEP: usize = 4;

fn time_cell(
    gar: &dyn Gar,
    views: &[GradientView<'_>],
    engine: &Engine,
    config: &PerfConfig,
) -> (f64, Vec<f32>) {
    // One untimed warm-up rep: first-touch page faults and thread-pool
    // spin-up used to land inside the first timed rep and could make a
    // single-rep cell read ~10–30% slow, which at 1 thread masqueraded as a
    // "parallel engine slower than sequential" bug.
    let mut out = gar
        .aggregate_views(views, engine)
        .expect("sweep inputs are well-formed")
        .into_vec();
    let start = Instant::now();
    let mut reps = 0usize;
    while reps == 0
        || (start.elapsed().as_secs_f64() < config.target_secs && reps < config.max_reps)
    {
        out = gar
            .aggregate_views(views, engine)
            .expect("sweep inputs are well-formed")
            .into_vec();
        reps += 1;
    }
    (start.elapsed().as_secs_f64() / reps as f64, out)
}

/// Times one rep = aggregate *every* shard slice in shard order, stitching
/// the slice aggregates back into a full vector (same warm-up + budget
/// policy as [`time_cell`]).
fn time_sharded_cell(
    gar: &dyn Gar,
    shard_views: &[Vec<GradientView<'_>>],
    engine: &Engine,
    config: &PerfConfig,
) -> (f64, Vec<f32>) {
    let aggregate_all = || -> Vec<f32> {
        let mut out = Vec::new();
        for views in shard_views {
            out.extend(
                gar.aggregate_views(views, engine)
                    .expect("sweep inputs are well-formed")
                    .into_vec(),
            );
        }
        out
    };
    let mut out = aggregate_all();
    let start = Instant::now();
    let mut reps = 0usize;
    while reps == 0
        || (start.elapsed().as_secs_f64() < config.target_secs && reps < config.max_reps)
    {
        out = aggregate_all();
        reps += 1;
    }
    (start.elapsed().as_secs_f64() / reps as f64, out)
}

/// Times one closure with the same warm-up + repeat-until-budget policy as
/// the GAR cells; returns seconds per rep.
fn time_kernel<F: FnMut() -> f32>(config: &PerfConfig, mut work: F) -> f64 {
    black_box(work());
    let start = Instant::now();
    let mut reps = 0usize;
    while reps == 0
        || (start.elapsed().as_secs_f64() < config.target_secs && reps < config.max_reps)
    {
        black_box(work());
        reps += 1;
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measures the distance kernels themselves — single-threaded, at the
/// sweep's largest `d` — in pair elements per second.
///
/// `scalar` is the retained pre-rewrite reference (serial `f32` adds),
/// `chunked` the multi-lane kernel applied per whole pair, `blocked_exact`
/// the `DistanceCache` cache-blocked fill, and `gram` the fast-math Gram
/// fill (norm pass included in its time).
pub fn run_kernels(config: &PerfConfig) -> Vec<KernelPoint> {
    let d = config.dims.iter().copied().max().unwrap_or(100_000);
    let n = 15usize;
    let mut rng = TensorRng::seed_from(0x6b72_6e6c ^ (d as u64));
    let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
    let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
    let pair_elems = (n * (n - 1) / 2 * d) as f64;
    let seq = Engine::sequential();
    let gram_engine = Engine::sequential().fast_math(true);

    let pairwise = |kernel: fn(&[f32], &[f32]) -> f32| {
        let mut sum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += kernel(&inputs[i], &inputs[j]);
            }
        }
        sum
    };

    let mut points = Vec::new();
    let secs = time_kernel(config, || pairwise(squared_l2_distance_scalar));
    points.push(KernelPoint {
        kernel: "scalar".into(),
        n,
        d,
        elem_s: pair_elems / secs,
    });
    let secs = time_kernel(config, || pairwise(squared_l2_distance_slices));
    points.push(KernelPoint {
        kernel: "chunked".into(),
        n,
        d,
        elem_s: pair_elems / secs,
    });
    let secs = time_kernel(config, || DistanceCache::build(&views, &seq).get(0, 1));
    points.push(KernelPoint {
        kernel: "blocked_exact".into(),
        n,
        d,
        elem_s: pair_elems / secs,
    });
    let secs = time_kernel(config, || {
        let cache = DistanceCache::build(&views, &gram_engine);
        debug_assert!(cache.used_gram());
        cache.get(0, 1)
    });
    points.push(KernelPoint {
        kernel: "gram".into(),
        n,
        d,
        elem_s: pair_elems / secs,
    });
    points
}

/// Runs the sweep, returning one point per (GAR, n, d) cell.
///
/// Inputs are deterministic (seeded per cell), and each cell runs the
/// sequential and parallel engines on the *same* borrowed views, comparing
/// outputs bit for bit.
pub fn run(config: &PerfConfig) -> Vec<PerfPoint> {
    run_with(config, &Engine::auto())
}

/// [`run`] with an explicit parallel engine (the `--threads` override used
/// to record baselines for a machine shape other than this one's).
pub fn run_with(config: &PerfConfig, parallel: &Engine) -> Vec<PerfPoint> {
    let parallel = parallel.clone();
    let sequential = Engine::sequential();
    let mut points = Vec::new();
    for &d in &config.dims {
        for &n in &config.ns {
            // One input set per (n, d) cell, shared by every GAR.
            let mut rng = TensorRng::seed_from(0x9a2f_0000 ^ (d as u64) ^ ((n as u64) << 32));
            let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
            let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
            for kind in sweep_kinds() {
                let f = sweep_f(&kind, n);
                let gar = build_gar(&kind, n, f).expect("sweep (n, f) satisfies every rule");
                let (seq_secs, seq_out) = time_cell(gar.as_ref(), &views, &sequential, config);
                let (par_secs, par_out) = time_cell(gar.as_ref(), &views, &parallel, config);
                let identical = seq_out.len() == par_out.len()
                    && seq_out
                        .iter()
                        .zip(par_out.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                let values = (n * d) as f64;
                points.push(PerfPoint {
                    gar: kind.as_str().to_string(),
                    n,
                    f,
                    d,
                    seq_secs,
                    par_secs,
                    throughput: values / par_secs,
                    mb_s: values * 4.0 / par_secs / 1e6,
                    speedup: seq_secs / par_secs,
                    identical,
                });
            }
            // Sharded cells (`<gar>@4sh`): every coordinate-decomposable GAR
            // re-timed over the SHARD_SWEEP-way split of the *same* inputs.
            // `identical` here carries the decomposition claim itself: the
            // stitched per-shard aggregates must equal the full-vector
            // aggregate bit for bit, on both engines.
            let map = ShardMap::new(d, SHARD_SWEEP).expect("sweep dims exceed the shard count");
            let shard_views: Vec<Vec<GradientView<'_>>> = map
                .specs()
                .iter()
                .map(|spec| {
                    inputs
                        .iter()
                        .map(|g| GradientView::from(&g[spec.range()]))
                        .collect()
                })
                .collect();
            for kind in sweep_kinds() {
                if !kind.is_coordinate_decomposable() {
                    continue;
                }
                let f = sweep_f(&kind, n);
                let gar = build_gar(&kind, n, f).expect("sweep (n, f) satisfies every rule");
                let full = gar
                    .aggregate_views(&views, &sequential)
                    .expect("sweep inputs are well-formed")
                    .into_vec();
                let (seq_secs, seq_out) =
                    time_sharded_cell(gar.as_ref(), &shard_views, &sequential, config);
                let (par_secs, par_out) =
                    time_sharded_cell(gar.as_ref(), &shard_views, &parallel, config);
                let bits_equal = |a: &[f32], b: &[f32]| {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                };
                let identical = bits_equal(&seq_out, &full) && bits_equal(&par_out, &full);
                let values = (n * d) as f64;
                points.push(PerfPoint {
                    gar: format!("{}@{SHARD_SWEEP}sh", kind.as_str()),
                    n,
                    f,
                    d,
                    seq_secs,
                    par_secs,
                    throughput: values / par_secs,
                    mb_s: values * 4.0 / par_secs / 1e6,
                    speedup: seq_secs / par_secs,
                    identical,
                });
            }
        }
    }
    points
}

/// Runs the whole recording: kernel points plus the GAR sweep, stamped with
/// the machine shape.
pub fn run_report(config: &PerfConfig) -> PerfReport {
    run_report_with(config, &Engine::auto())
}

/// [`run_report`] with an explicit parallel engine; the report is stamped
/// with that engine's thread count, so a `--threads 4` recording lands under
/// the 4-thread baseline key regardless of the machine it ran on.
pub fn run_report_with(config: &PerfConfig, parallel: &Engine) -> PerfReport {
    PerfReport {
        threads: parallel.threads(),
        quick: config.quick,
        kernels: run_kernels(config),
        entries: run_with(config, parallel),
    }
}

/// Relative aggregation slowdown the enabled observability layer may cost
/// before the `--obs-gate` check fails.
pub const OBS_OVERHEAD_TOLERANCE: f64 = 0.02;

/// The enabled-vs-disabled observability measurement: one representative
/// DistanceCache-heavy cell, timed with the recorder/registry off and on.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverhead {
    /// GAR timed.
    pub gar: String,
    /// Number of inputs.
    pub n: usize,
    /// Gradient dimension.
    pub d: usize,
    /// Min-of-rounds seconds per aggregation with observability disabled.
    pub disabled_secs: f64,
    /// Min-of-rounds seconds per aggregation with observability enabled.
    pub enabled_secs: f64,
}

impl ObsOverhead {
    /// Fractional slowdown (`enabled / disabled − 1`; a negative value is
    /// measurement noise reading as a speedup).
    pub fn overhead(&self) -> f64 {
        self.enabled_secs / self.disabled_secs - 1.0
    }
}

/// Measures what the `garfield-obs` instrumentation costs on the aggregation
/// hot path: Multi-Krum at the sweep's largest cell, where every aggregation
/// crosses the instrumented `DistanceCache::build` (fill histogram +
/// throughput gauge) and the per-GAR selection counter.
///
/// The two states are timed *interleaved* (disabled, enabled, disabled, …)
/// and each side keeps its minimum over the rounds, so machine drift hits
/// both sides alike instead of biasing whichever state ran second. Restores
/// the observability state it found.
pub fn obs_overhead(config: &PerfConfig) -> ObsOverhead {
    const ROUNDS: usize = 7;
    let d = config.dims.iter().copied().max().unwrap_or(100_000);
    let n = config.ns.iter().copied().max().unwrap_or(15);
    let kind = GarKind::MultiKrum;
    let f = sweep_f(&kind, n);
    let gar = build_gar(&kind, n, f).expect("sweep (n, f) satisfies every rule");
    let mut rng = TensorRng::seed_from(0x0b50_bd0b ^ (d as u64));
    let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
    let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
    let engine = Engine::auto();
    let was_enabled = garfield_obs::enabled();

    let time_one = |on: bool| -> f64 {
        if on {
            garfield_obs::enable();
        } else {
            garfield_obs::disable();
        }
        let start = Instant::now();
        black_box(
            gar.aggregate_views(&views, &engine)
                .expect("sweep inputs are well-formed"),
        );
        start.elapsed().as_secs_f64()
    };
    // Warm both paths untimed: page faults, thread-pool spin-up, and metric
    // registration (a one-time cold-path cost, not steady-state overhead).
    time_one(false);
    time_one(true);
    let (mut disabled_secs, mut enabled_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        disabled_secs = disabled_secs.min(time_one(false));
        enabled_secs = enabled_secs.min(time_one(true));
    }
    if was_enabled {
        garfield_obs::enable();
    } else {
        garfield_obs::disable();
    }
    ObsOverhead {
        gar: kind.as_str().to_string(),
        n,
        d,
        disabled_secs,
        enabled_secs,
    }
}

/// Renders points as report rows (for the aligned text table).
pub fn as_rows(points: &[PerfPoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                format!("{} n={} d={}", p.gar, p.n, p.d),
                vec![
                    ("seq_ms", p.seq_secs * 1e3),
                    ("par_ms", p.par_secs * 1e3),
                    ("mvals_s", p.throughput / 1e6),
                    ("mb_s", p.mb_s),
                    ("speedup", p.speedup),
                    ("identical", if p.identical { 1.0 } else { 0.0 }),
                ],
            )
        })
        .collect()
}

/// Renders kernel points as report rows.
pub fn kernel_rows(points: &[KernelPoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                format!("{} n={} d={}", p.kernel, p.n, p.d),
                vec![("melem_s", p.elem_s / 1e6)],
            )
        })
        .collect()
}

fn push_json_f64(out: &mut String, key: &str, v: f64, trailing: bool) {
    let mut num = String::new();
    json::write_f64(&mut num, v);
    out.push_str(&format!("\"{key}\": {num}"));
    if trailing {
        out.push_str(", ");
    }
}

/// Serialises one recording to the `garfield-bench/aggregation-v2` schema.
pub fn report_to_json(report: &PerfReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"garfield-bench/aggregation-v2\",\n");
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in report.kernels.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"kernel\": \"{}\", \"n\": {}, \"d\": {}, ",
            k.kernel, k.n, k.d
        ));
        push_json_f64(&mut out, "elem_s", k.elem_s, false);
        out.push('}');
        if i + 1 < report.kernels.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"entries\": [\n");
    for (i, p) in report.entries.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"gar\": \"{}\", ", p.gar));
        out.push_str(&format!("\"n\": {}, \"f\": {}, \"d\": {}, ", p.n, p.f, p.d));
        push_json_f64(&mut out, "seq_secs", p.seq_secs, true);
        push_json_f64(&mut out, "par_secs", p.par_secs, true);
        push_json_f64(&mut out, "throughput", p.throughput, true);
        push_json_f64(&mut out, "mb_s", p.mb_s, true);
        push_json_f64(&mut out, "speedup", p.speedup, true);
        out.push_str(&format!("\"identical\": {}", p.identical));
        out.push('}');
        if i + 1 < report.entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialises a set of per-thread-count baselines
/// (`garfield-bench/aggregation-baselines-v2`).
pub fn baselines_to_json(baselines: &[PerfReport]) -> String {
    let mut out = String::from("{\n\"schema\": \"garfield-bench/aggregation-baselines-v2\",\n");
    out.push_str("\"baselines\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        out.push_str(report_to_json(b).trim_end());
        if i + 1 < baselines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

fn report_from_value(doc: &Value, what: &str) -> Result<PerfReport, String> {
    let entries = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{what} has no 'entries' array"))?;
    let mut points = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let field_f64 = |k: &str| -> Result<f64, String> {
            e.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{what} entry {i} misses numeric '{k}'"))
        };
        let field_usize = |k: &str| -> Result<usize, String> {
            e.get(k)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("{what} entry {i} misses integer '{k}'"))
        };
        points.push(PerfPoint {
            gar: e
                .get("gar")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{what} entry {i} misses 'gar'"))?
                .to_string(),
            n: field_usize("n")?,
            f: field_usize("f")?,
            d: field_usize("d")?,
            seq_secs: field_f64("seq_secs")?,
            par_secs: field_f64("par_secs")?,
            throughput: field_f64("throughput")?,
            mb_s: field_f64("mb_s")?,
            speedup: field_f64("speedup")?,
            identical: e.get("identical").and_then(Value::as_bool).unwrap_or(false),
        });
    }
    // v1 reports have no kernels section; parse it when present.
    let mut kernels = Vec::new();
    if let Some(ks) = doc.get("kernels").and_then(Value::as_array) {
        for (i, k) in ks.iter().enumerate() {
            kernels.push(KernelPoint {
                kernel: k
                    .get("kernel")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{what} kernel {i} misses 'kernel'"))?
                    .to_string(),
                n: k.get("n")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| format!("{what} kernel {i} misses 'n'"))?,
                d: k.get("d")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| format!("{what} kernel {i} misses 'd'"))?,
                elem_s: k
                    .get("elem_s")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{what} kernel {i} misses 'elem_s'"))?,
            });
        }
    }
    Ok(PerfReport {
        // v1 reports always carried 'threads'; default 1 for hand-written
        // fixtures.
        threads: doc.get("threads").and_then(Value::as_usize).unwrap_or(1),
        quick: doc.get("quick").and_then(Value::as_bool).unwrap_or(false),
        kernels,
        entries: points,
    })
}

/// Parses one `BENCH_aggregation.json` document (v1 or v2) back into a
/// report.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn parse_report(text: &str) -> Result<PerfReport, String> {
    let doc = json::parse(text)?;
    report_from_value(&doc, "report")
}

/// Parses a baseline file: either the multi-report
/// `garfield-bench/aggregation-baselines-v2` document or, for backward
/// compatibility, a single legacy v1/v2 report (treated as one baseline).
pub fn parse_baselines(text: &str) -> Result<Vec<PerfReport>, String> {
    let doc = json::parse(text)?;
    match doc.get("baselines").and_then(Value::as_array) {
        Some(list) => list
            .iter()
            .enumerate()
            .map(|(i, b)| report_from_value(b, &format!("baseline {i}")))
            .collect(),
        None => Ok(vec![report_from_value(&doc, "baseline")?]),
    }
}

/// Inserts `report` into a baseline set, replacing any existing baseline
/// recorded at the same `(threads, quick)` key.
pub fn merge_baseline(baselines: &mut Vec<PerfReport>, report: PerfReport) {
    match baselines
        .iter_mut()
        .find(|b| b.threads == report.threads && b.quick == report.quick)
    {
        Some(slot) => *slot = report,
        None => baselines.push(report),
    }
    baselines.sort_by_key(|b| (b.threads, b.quick));
}

/// Finds the baseline recorded under the same `(threads, quick)` key as
/// `report`, if any.
pub fn matching_baseline<'a>(
    baselines: &'a [PerfReport],
    report: &PerfReport,
) -> Option<&'a PerfReport> {
    baselines
        .iter()
        .find(|b| b.threads == report.threads && b.quick == report.quick)
}

/// Compares a fresh sweep against a recorded baseline.
///
/// Every baseline cell present in the current sweep must reach at least
/// `(1 - tolerance)` of the baseline's parallel-engine throughput; a cell
/// that disappeared from the sweep also counts as a regression (so the gate
/// cannot be dodged by shrinking the sweep). Returns one human-readable
/// message per violation — empty means the gate passes.
pub fn regressions(current: &[PerfPoint], baseline: &[PerfPoint], tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for base in baseline {
        let Some(now) = current
            .iter()
            .find(|p| p.gar == base.gar && p.n == base.n && p.d == base.d)
        else {
            problems.push(format!(
                "{} n={} d={}: cell present in baseline but missing from this sweep",
                base.gar, base.n, base.d
            ));
            continue;
        };
        let floor = base.throughput * (1.0 - tolerance);
        if now.throughput < floor {
            problems.push(format!(
                "{} n={} d={}: throughput {:.3e} values/s fell below {:.3e} \
                 ({:.0}% of baseline {:.3e})",
                now.gar,
                now.n,
                now.d,
                now.throughput,
                floor,
                (1.0 - tolerance) * 100.0,
                base.throughput,
            ));
        }
    }
    problems
}

/// The kernel-level regression gate: same shape as [`regressions`], keyed on
/// `(kernel, n, d)`.
pub fn kernel_regressions(
    current: &[KernelPoint],
    baseline: &[KernelPoint],
    tolerance: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for base in baseline {
        let Some(now) = current
            .iter()
            .find(|k| k.kernel == base.kernel && k.n == base.n && k.d == base.d)
        else {
            problems.push(format!(
                "kernel {} n={} d={}: present in baseline but missing from this sweep",
                base.kernel, base.n, base.d
            ));
            continue;
        };
        let floor = base.elem_s * (1.0 - tolerance);
        if now.elem_s < floor {
            problems.push(format!(
                "kernel {} n={} d={}: {:.3e} elem/s fell below {:.3e} \
                 ({:.0}% of baseline {:.3e})",
                now.kernel,
                now.n,
                now.d,
                now.elem_s,
                floor,
                (1.0 - tolerance) * 100.0,
                base.elem_s,
            ));
        }
    }
    problems
}

/// The parallel-engine sanity gate: on a multi-core recording, no (GAR, n,
/// d) cell may show `Engine::auto` losing to `Engine::sequential` by more
/// than `max_loss` — that is the `threads_for` fan-out heuristic spawning
/// threads that cost more than they compute, the exact bug the old
/// `PAR_MIN_WORK` floor had at d = 10⁴. Returns one message per violation;
/// always empty for single-threaded reports.
///
/// Sharded cells (`<gar>@Nsh`) are exempt: they aggregate shard-at-a-time
/// over `d / N`-length slices that sit near (or below) the engine's fan-out
/// threshold by construction, so their auto-vs-sequential ratio measures the
/// threshold boundary, not the heuristic's quality — and in a real sharded
/// deployment each shard server is its own thread of parallelism anyway.
pub fn parallel_regressions(report: &PerfReport, max_loss: f64) -> Vec<String> {
    if report.threads <= 1 {
        return Vec::new();
    }
    report
        .entries
        .iter()
        .filter(|p| !p.gar.ends_with("sh") && p.speedup < 1.0 - max_loss)
        .map(|p| {
            format!(
                "{} n={} d={}: parallel engine is {:.0}% slower than sequential \
                 (speedup {:.2} at {} threads)",
                p.gar,
                p.n,
                p.d,
                (1.0 - p.speedup) * 100.0,
                p.speedup,
                report.threads,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            dims: vec![256],
            ns: vec![7],
            target_secs: 0.0,
            max_reps: 1,
            quick: true,
        }
    }

    fn tiny_report() -> PerfReport {
        PerfReport {
            threads: Engine::auto().threads(),
            quick: true,
            kernels: run_kernels(&tiny_config()),
            entries: run(&tiny_config()),
        }
    }

    #[test]
    fn sweep_covers_every_gar_and_outputs_are_identical() {
        let points = run(&tiny_config());
        let decomposable = sweep_kinds()
            .iter()
            .filter(|k| k.is_coordinate_decomposable())
            .count();
        assert_eq!(points.len(), sweep_kinds().len() + decomposable);
        assert!(
            points.iter().any(|p| p.gar == "speculative"),
            "the speculative fast-path cell is part of the sweep"
        );
        // Every decomposable GAR also gets a sharded cell, whose `identical`
        // flag asserts stitched shard aggregates == the full aggregate.
        for kind in sweep_kinds()
            .iter()
            .filter(|k| k.is_coordinate_decomposable())
        {
            let label = format!("{}@{SHARD_SWEEP}sh", kind.as_str());
            assert!(
                points.iter().any(|p| p.gar == label),
                "missing sharded cell {label}"
            );
        }
        for p in &points {
            assert!(p.identical, "{} outputs diverged between engines", p.gar);
            assert!(p.seq_secs > 0.0 && p.par_secs > 0.0);
            assert!(p.throughput > 0.0 && p.mb_s > 0.0 && p.speedup > 0.0);
        }
    }

    #[test]
    fn kernel_sweep_measures_every_kernel() {
        let points = run_kernels(&tiny_config());
        let names: Vec<&str> = points.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(names, ["scalar", "chunked", "blocked_exact", "gram"]);
        for k in &points {
            assert!(k.elem_s > 0.0, "{} measured no throughput", k.kernel);
        }
    }

    #[test]
    fn json_round_trips() {
        let report = tiny_report();
        let text = report_to_json(&report);
        let back = parse_report(&text).unwrap();
        assert_eq!(back.threads, report.threads);
        assert_eq!(back.quick, report.quick);
        assert_eq!(back.entries.len(), report.entries.len());
        assert_eq!(back.kernels.len(), report.kernels.len());
        for (a, b) in report.entries.iter().zip(back.entries.iter()) {
            assert_eq!(a.gar, b.gar);
            assert_eq!((a.n, a.f, a.d), (b.n, b.f, b.d));
            assert!((a.throughput - b.throughput).abs() <= a.throughput * 1e-9);
            assert_eq!(a.identical, b.identical);
        }
        for (a, b) in report.kernels.iter().zip(back.kernels.iter()) {
            assert_eq!(a.kernel, b.kernel);
            assert!((a.elem_s - b.elem_s).abs() <= a.elem_s * 1e-9);
        }
    }

    #[test]
    fn baseline_files_round_trip_and_merge_by_thread_count() {
        let mut a = tiny_report();
        a.threads = 1;
        let mut b = tiny_report();
        b.threads = 8;

        let mut baselines = Vec::new();
        merge_baseline(&mut baselines, a.clone());
        merge_baseline(&mut baselines, b.clone());
        assert_eq!(baselines.len(), 2);

        // Re-recording at an existing thread count replaces, not appends.
        let mut a2 = a.clone();
        a2.entries[0].throughput *= 2.0;
        merge_baseline(&mut baselines, a2.clone());
        assert_eq!(baselines.len(), 2);
        assert_eq!(
            matching_baseline(&baselines, &a).unwrap().entries[0].throughput,
            a2.entries[0].throughput
        );

        let text = baselines_to_json(&baselines);
        let back = parse_baselines(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].threads, 1);
        assert_eq!(back[1].threads, 8);

        // A report only matches a baseline recorded at its thread count.
        assert!(matching_baseline(&back, &b).is_some());
        let mut c = tiny_report();
        c.threads = 4;
        assert!(matching_baseline(&back, &c).is_none());
    }

    #[test]
    fn legacy_single_report_parses_as_one_baseline() {
        let report = tiny_report();
        let text = report_to_json(&report);
        let baselines = parse_baselines(&text).unwrap();
        assert_eq!(baselines.len(), 1);
        assert_eq!(baselines[0].threads, report.threads);
    }

    #[test]
    fn regression_gate_fires_on_slowdowns_and_missing_cells() {
        let mut base = run(&tiny_config());
        // Same sweep: no regression.
        assert!(regressions(&base, &base, DEFAULT_TOLERANCE).is_empty());

        // 2x slower current: regression.
        let mut slow = base.clone();
        for p in &mut slow {
            p.throughput /= 2.0;
        }
        let problems = regressions(&slow, &base, DEFAULT_TOLERANCE);
        assert_eq!(problems.len(), base.len());

        // Dropped cell: regression too.
        let dropped: Vec<PerfPoint> = base[1..].to_vec();
        assert_eq!(regressions(&dropped, &base, DEFAULT_TOLERANCE).len(), 1);

        // Within tolerance: fine (same measurements, baseline dampened 10%,
        // gate at 50% — deterministic, unlike re-timing the sweep).
        let current = base.clone();
        for p in &mut base {
            p.throughput *= 0.9;
        }
        assert!(regressions(&current, &base, 0.5).is_empty());
    }

    #[test]
    fn kernel_gate_fires_on_slowdowns_and_missing_kernels() {
        let base = run_kernels(&tiny_config());
        assert!(kernel_regressions(&base, &base, DEFAULT_TOLERANCE).is_empty());
        let mut slow = base.clone();
        for k in &mut slow {
            k.elem_s /= 2.0;
        }
        assert_eq!(
            kernel_regressions(&slow, &base, DEFAULT_TOLERANCE).len(),
            base.len()
        );
        let dropped: Vec<KernelPoint> = base[1..].to_vec();
        assert_eq!(
            kernel_regressions(&dropped, &base, DEFAULT_TOLERANCE).len(),
            1
        );
    }

    #[test]
    fn parallel_gate_only_fires_on_multi_thread_reports() {
        let mut report = tiny_report();
        report.threads = 4;
        for p in &mut report.entries {
            p.speedup = 1.5;
        }
        report.entries[0].speedup = 0.6; // a genuine fan-out loss
        let problems = parallel_regressions(&report, PARALLEL_LOSS_TOLERANCE);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("slower than sequential"));

        // Borderline loss within tolerance passes.
        report.entries[0].speedup = 0.95;
        assert!(parallel_regressions(&report, PARALLEL_LOSS_TOLERANCE).is_empty());

        // Sharded cells are exempt: their slices sit at the fan-out
        // threshold by construction.
        let sharded = report
            .entries
            .iter_mut()
            .find(|p| p.gar.ends_with("sh"))
            .expect("the sweep has sharded cells");
        sharded.speedup = 0.5;
        assert!(parallel_regressions(&report, PARALLEL_LOSS_TOLERANCE).is_empty());

        // At 1 thread the ratio is noise — never gated.
        report.threads = 1;
        report.entries[0].speedup = 0.5;
        assert!(parallel_regressions(&report, PARALLEL_LOSS_TOLERANCE).is_empty());
    }

    #[test]
    fn obs_overhead_times_both_states_and_restores_the_flag() {
        let _lock = crate::obs_test_lock();
        garfield_obs::disable();
        let m = obs_overhead(&tiny_config());
        assert_eq!(m.gar, "multi-krum");
        assert!(m.disabled_secs > 0.0 && m.enabled_secs > 0.0);
        assert!(m.overhead().is_finite());
        assert!(!garfield_obs::enabled(), "flag not restored");

        garfield_obs::enable();
        let _ = obs_overhead(&tiny_config());
        assert!(garfield_obs::enabled(), "enabled state not restored");
        garfield_obs::disable();
    }

    #[test]
    fn sweep_f_respects_every_rule_requirement() {
        for kind in sweep_kinds() {
            for n in [15usize, 25, 51] {
                let f = sweep_f(&kind, n);
                assert!(
                    n >= kind.minimum_inputs(f),
                    "{kind} n={n} f={f} violates its requirement"
                );
            }
        }
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"entries\": [{}]}").is_err());
        assert!(parse_baselines("{\"baselines\": [{}]}").is_err());
    }
}
