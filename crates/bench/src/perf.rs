//! The `expfig perf` harness: GAR engine throughput, recorded and enforced.
//!
//! Sweeps every GAR over gradient dimension `d` × input count `n`, timing the
//! **sequential** engine (the retained single-threaded reference path) and
//! the **parallel** engine (thread-chunked distance matrix and coordinate
//! fills) on identical inputs, asserting their outputs are bit-identical,
//! and emitting `BENCH_aggregation.json` — the recorded perf trajectory CI
//! uploads as an artifact and gates against `results/perf_baseline.json`
//! (any GAR regressing more than the tolerance fails the `perf-smoke` job).

use crate::report::Row;
use garfield_aggregation::{build_gar, Engine, Gar, GarKind};
use garfield_core::json::{self, Value};
use garfield_tensor::{GradientView, TensorRng};
use std::time::Instant;

/// Relative throughput loss versus the baseline that fails the CI gate.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// One sweep configuration.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Gradient dimensions to sweep.
    pub dims: Vec<usize>,
    /// Input counts to sweep.
    pub ns: Vec<usize>,
    /// Keep repeating a cell until it has run at least this long...
    pub target_secs: f64,
    /// ...but at most this many repetitions.
    pub max_reps: usize,
    /// Whether this is the CI quick sweep (recorded in the report).
    pub quick: bool,
}

impl PerfConfig {
    /// The full sweep of the issue spec: d ∈ {1e4, 1e5, 1e6} × n ∈ {15, 25, 51}.
    pub fn full() -> Self {
        PerfConfig {
            dims: vec![10_000, 100_000, 1_000_000],
            ns: vec![15, 25, 51],
            target_secs: 0.2,
            max_reps: 5,
            quick: false,
        }
    }

    /// The CI smoke sweep: small enough for a PR gate, still covering every
    /// GAR and both engines. The timing window is generous relative to the
    /// cell cost (sub-millisecond cells run many reps) so the 20% regression
    /// gate measures code, not scheduler noise.
    pub fn quick() -> Self {
        PerfConfig {
            dims: vec![10_000, 100_000],
            ns: vec![15, 25],
            target_secs: 0.15,
            max_reps: 40,
            quick: true,
        }
    }
}

/// One measured (GAR, n, d) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// GAR name.
    pub gar: String,
    /// Number of inputs.
    pub n: usize,
    /// Declared Byzantine bound used for this cell.
    pub f: usize,
    /// Gradient dimension.
    pub d: usize,
    /// Seconds per aggregation on the sequential engine.
    pub seq_secs: f64,
    /// Seconds per aggregation on the parallel engine.
    pub par_secs: f64,
    /// Parallel-engine throughput in gradient values per second (n·d / s).
    pub throughput: f64,
    /// Parallel-engine input bandwidth in MB/s (n·d·4 bytes / s).
    pub mb_s: f64,
    /// Sequential time over parallel time.
    pub speedup: f64,
    /// Whether the two engines produced bit-identical outputs.
    pub identical: bool,
}

/// The Byzantine bound each GAR is swept with.
///
/// Distance-based rules use the strongest `f` valid for every rule at that
/// `n` (`(n-3)/4`, satisfying both `n ≥ 2f+3` and `n ≥ 4f+3`); MDA's subset
/// enumeration is `C(n, f)` — exponential in `f`, as the paper's Fig. 3
/// discussion notes — so it is swept at `f = 2` to keep the cell about the
/// distance matrix rather than the combinatorics.
pub fn sweep_f(kind: GarKind, n: usize) -> usize {
    match kind {
        GarKind::Average => 0,
        GarKind::Mda => 2.min((n.saturating_sub(1)) / 2),
        GarKind::Median => (n.saturating_sub(1)) / 2,
        GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan => (n.saturating_sub(3)) / 4,
    }
}

fn time_cell(
    gar: &dyn Gar,
    views: &[GradientView<'_>],
    engine: &Engine,
    config: &PerfConfig,
) -> (f64, Vec<f32>) {
    let start = Instant::now();
    let mut out = gar
        .aggregate_views(views, engine)
        .expect("sweep inputs are well-formed")
        .into_vec();
    let mut reps = 1usize;
    while start.elapsed().as_secs_f64() < config.target_secs && reps < config.max_reps {
        out = gar
            .aggregate_views(views, engine)
            .expect("sweep inputs are well-formed")
            .into_vec();
        reps += 1;
    }
    (start.elapsed().as_secs_f64() / reps as f64, out)
}

/// Runs the sweep, returning one point per (GAR, n, d) cell.
///
/// Inputs are deterministic (seeded per cell), and each cell runs the
/// sequential and parallel engines on the *same* borrowed views, comparing
/// outputs bit for bit.
pub fn run(config: &PerfConfig) -> Vec<PerfPoint> {
    let parallel = Engine::auto();
    let sequential = Engine::sequential();
    let mut points = Vec::new();
    for &d in &config.dims {
        for &n in &config.ns {
            // One input set per (n, d) cell, shared by every GAR.
            let mut rng = TensorRng::seed_from(0x9a2f_0000 ^ (d as u64) ^ ((n as u64) << 32));
            let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
            let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
            for kind in GarKind::all() {
                let f = sweep_f(kind, n);
                let gar = build_gar(kind, n, f).expect("sweep (n, f) satisfies every rule");
                let (seq_secs, seq_out) = time_cell(gar.as_ref(), &views, &sequential, config);
                let (par_secs, par_out) = time_cell(gar.as_ref(), &views, &parallel, config);
                let identical = seq_out.len() == par_out.len()
                    && seq_out
                        .iter()
                        .zip(par_out.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                let values = (n * d) as f64;
                points.push(PerfPoint {
                    gar: kind.as_str().to_string(),
                    n,
                    f,
                    d,
                    seq_secs,
                    par_secs,
                    throughput: values / par_secs,
                    mb_s: values * 4.0 / par_secs / 1e6,
                    speedup: seq_secs / par_secs,
                    identical,
                });
            }
        }
    }
    points
}

/// Renders points as report rows (for the aligned text table).
pub fn as_rows(points: &[PerfPoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                format!("{} n={} d={}", p.gar, p.n, p.d),
                vec![
                    ("seq_ms", p.seq_secs * 1e3),
                    ("par_ms", p.par_secs * 1e3),
                    ("mvals_s", p.throughput / 1e6),
                    ("mb_s", p.mb_s),
                    ("speedup", p.speedup),
                    ("identical", if p.identical { 1.0 } else { 0.0 }),
                ],
            )
        })
        .collect()
}

/// Serialises a sweep to the `BENCH_aggregation.json` schema.
pub fn to_json(points: &[PerfPoint], threads: usize, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"garfield-bench/aggregation-v1\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"gar\": \"{}\", ", p.gar));
        out.push_str(&format!("\"n\": {}, \"f\": {}, \"d\": {}, ", p.n, p.f, p.d));
        let mut num = String::new();
        json::write_f64(&mut num, p.seq_secs);
        out.push_str(&format!("\"seq_secs\": {num}, "));
        num.clear();
        json::write_f64(&mut num, p.par_secs);
        out.push_str(&format!("\"par_secs\": {num}, "));
        num.clear();
        json::write_f64(&mut num, p.throughput);
        out.push_str(&format!("\"throughput\": {num}, "));
        num.clear();
        json::write_f64(&mut num, p.mb_s);
        out.push_str(&format!("\"mb_s\": {num}, "));
        num.clear();
        json::write_f64(&mut num, p.speedup);
        out.push_str(&format!("\"speedup\": {num}, "));
        out.push_str(&format!("\"identical\": {}", p.identical));
        out.push('}');
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_aggregation.json` document back into points.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn parse_report(text: &str) -> Result<Vec<PerfPoint>, String> {
    let doc = json::parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("report has no 'entries' array")?;
    let mut points = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let field_f64 = |k: &str| -> Result<f64, String> {
            e.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("entry {i} misses numeric '{k}'"))
        };
        let field_usize = |k: &str| -> Result<usize, String> {
            e.get(k)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("entry {i} misses integer '{k}'"))
        };
        points.push(PerfPoint {
            gar: e
                .get("gar")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("entry {i} misses 'gar'"))?
                .to_string(),
            n: field_usize("n")?,
            f: field_usize("f")?,
            d: field_usize("d")?,
            seq_secs: field_f64("seq_secs")?,
            par_secs: field_f64("par_secs")?,
            throughput: field_f64("throughput")?,
            mb_s: field_f64("mb_s")?,
            speedup: field_f64("speedup")?,
            identical: e.get("identical").and_then(Value::as_bool).unwrap_or(false),
        });
    }
    Ok(points)
}

/// Compares a fresh sweep against a recorded baseline.
///
/// Every baseline cell present in the current sweep must reach at least
/// `(1 - tolerance)` of the baseline's parallel-engine throughput; a cell
/// that disappeared from the sweep also counts as a regression (so the gate
/// cannot be dodged by shrinking the sweep). Returns one human-readable
/// message per violation — empty means the gate passes.
pub fn regressions(current: &[PerfPoint], baseline: &[PerfPoint], tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for base in baseline {
        let Some(now) = current
            .iter()
            .find(|p| p.gar == base.gar && p.n == base.n && p.d == base.d)
        else {
            problems.push(format!(
                "{} n={} d={}: cell present in baseline but missing from this sweep",
                base.gar, base.n, base.d
            ));
            continue;
        };
        let floor = base.throughput * (1.0 - tolerance);
        if now.throughput < floor {
            problems.push(format!(
                "{} n={} d={}: throughput {:.3e} values/s fell below {:.3e} \
                 ({:.0}% of baseline {:.3e})",
                now.gar,
                now.n,
                now.d,
                now.throughput,
                floor,
                (1.0 - tolerance) * 100.0,
                base.throughput,
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            dims: vec![256],
            ns: vec![7],
            target_secs: 0.0,
            max_reps: 1,
            quick: true,
        }
    }

    #[test]
    fn sweep_covers_every_gar_and_outputs_are_identical() {
        let points = run(&tiny_config());
        assert_eq!(points.len(), GarKind::all().len());
        for p in &points {
            assert!(p.identical, "{} outputs diverged between engines", p.gar);
            assert!(p.seq_secs > 0.0 && p.par_secs > 0.0);
            assert!(p.throughput > 0.0 && p.mb_s > 0.0 && p.speedup > 0.0);
        }
    }

    #[test]
    fn json_round_trips() {
        let points = run(&tiny_config());
        let text = to_json(&points, 4, true);
        let back = parse_report(&text).unwrap();
        assert_eq!(back.len(), points.len());
        for (a, b) in points.iter().zip(back.iter()) {
            assert_eq!(a.gar, b.gar);
            assert_eq!((a.n, a.f, a.d), (b.n, b.f, b.d));
            assert!((a.throughput - b.throughput).abs() <= a.throughput * 1e-9);
            assert_eq!(a.identical, b.identical);
        }
    }

    #[test]
    fn regression_gate_fires_on_slowdowns_and_missing_cells() {
        let mut base = run(&tiny_config());
        // Same sweep: no regression.
        assert!(regressions(&base, &base, DEFAULT_TOLERANCE).is_empty());

        // 2x slower current: regression.
        let mut slow = base.clone();
        for p in &mut slow {
            p.throughput /= 2.0;
        }
        let problems = regressions(&slow, &base, DEFAULT_TOLERANCE);
        assert_eq!(problems.len(), base.len());

        // Dropped cell: regression too.
        let dropped: Vec<PerfPoint> = base[1..].to_vec();
        assert_eq!(regressions(&dropped, &base, DEFAULT_TOLERANCE).len(), 1);

        // Within tolerance: fine.
        for p in &mut base {
            p.throughput *= 0.9;
        }
        let within = regressions(&base, &run(&tiny_config()), 0.5);
        assert!(within.is_empty());
    }

    #[test]
    fn sweep_f_respects_every_rule_requirement() {
        for kind in GarKind::all() {
            for n in [15usize, 25, 51] {
                let f = sweep_f(kind, n);
                assert!(
                    n >= kind.minimum_inputs(f),
                    "{kind} n={n} f={f} violates its requirement"
                );
            }
        }
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"entries\": [{}]}").is_err());
    }
}
