//! One function per table / figure of the paper's evaluation.
//!
//! Each function returns the rows that the `expfig` binary prints and writes
//! to `results/`. Convergence experiments (Figs. 4, 5, 11, 12, Table 2) run
//! the real training stack on scaled-down settings; throughput sweeps use the
//! analytic [`crate::throughput`] module at the paper's exact model sizes.

use crate::report::Row;
use crate::throughput::throughput;
use garfield_aggregation::{build_gar, GarKind, VarianceProbe};
use garfield_core::apps::{DecentralizedApp, MsmwApp};
use garfield_core::{Controller, Deployment, ExperimentConfig, SystemKind};
use garfield_ml::{zoo, Dataset, DatasetKind, Mlp};
use garfield_net::{CostModel, Device};
use garfield_tensor::{Tensor, TensorRng};
use std::time::Instant;

/// The paper's default CPU cluster shape (18 workers / 3 Byzantine, 6 servers / 1 Byzantine).
const CPU_CLUSTER: (usize, usize, usize, usize) = (18, 3, 6, 1);
/// The paper's default GPU cluster shape (10 workers / 3 Byzantine, 3 servers / 1 Byzantine).
const GPU_CLUSTER: (usize, usize, usize, usize) = (10, 3, 3, 1);

/// Quick, CI-friendly convergence settings used by the `expfig` binary.
fn convergence_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.model = "tiny".into();
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.nps = 3;
    cfg.fps = 1;
    cfg.iterations = 60;
    cfg.eval_every = 10;
    cfg.gradient_gar = GarKind::MultiKrum;
    cfg.model_gar = GarKind::Median;
    cfg
}

/// Table 1: the model zoo.
pub fn table1() -> Vec<Row> {
    zoo::paper_models()
        .into_iter()
        .map(|m| {
            Row::new(
                m.name,
                vec![("parameters", m.parameters as f64), ("size_mb", m.size_mb)],
            )
        })
        .collect()
}

/// Fig. 3a: GAR aggregation time versus the number of inputs `n`.
///
/// Measures the real CPU kernels. `d` defaults to 10⁵ (the paper uses 10⁷ on
/// GPUs); pass a larger `d` for a slower but closer-to-paper run.
pub fn fig3a(d: usize) -> Vec<Row> {
    let mut rng = TensorRng::seed_from(3);
    let mut rows = Vec::new();
    for n in (7..=23).step_by(2) {
        let f = (n - 3) / 4;
        let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
        let mut values = Vec::new();
        for kind in [
            GarKind::Bulyan,
            GarKind::Mda,
            GarKind::MultiKrum,
            GarKind::Median,
            GarKind::Average,
        ] {
            let gar = build_gar(&kind, n, if kind == GarKind::Average { 0 } else { f })
                .expect("n >= 7 satisfies every rule for f = (n-3)/4");
            let start = Instant::now();
            gar.aggregate(&inputs).expect("inputs are well formed");
            values.push((kind.as_str(), start.elapsed().as_secs_f64()));
        }
        rows.push(Row::new(format!("n={n}"), values));
    }
    rows
}

/// Fig. 3b: GAR aggregation time versus the input dimension `d` (n = 17).
pub fn fig3b(max_d: usize) -> Vec<Row> {
    let n = 17;
    let f = (n - 3) / 4;
    let mut rng = TensorRng::seed_from(4);
    let mut rows = Vec::new();
    let mut d = 1_000usize;
    while d <= max_d {
        let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
        let mut values = Vec::new();
        for kind in [
            GarKind::Bulyan,
            GarKind::Mda,
            GarKind::MultiKrum,
            GarKind::Median,
            GarKind::Average,
        ] {
            let gar = build_gar(&kind, n, if kind == GarKind::Average { 0 } else { f })
                .expect("n = 17 satisfies every rule for f = 3");
            let start = Instant::now();
            gar.aggregate(&inputs).expect("inputs are well formed");
            values.push((kind.as_str(), start.elapsed().as_secs_f64()));
        }
        rows.push(Row::new(format!("d={d}"), values));
        d *= 10;
    }
    rows
}

/// Figs. 4a/4b and 11a/11b: convergence of every system versus iterations and
/// versus simulated time. Returns `(system, iteration, sim_time, accuracy)` rows.
pub fn fig4(synchronous: bool) -> Vec<Row> {
    let mut cfg = convergence_config();
    cfg.synchronous = synchronous;
    let controller = Controller::new(cfg);
    let mut rows = Vec::new();
    for system in SystemKind::all() {
        let trace = match controller.run(system) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {system}: {e}");
                continue;
            }
        };
        for point in &trace.accuracy {
            rows.push(Row::new(
                format!("{system}"),
                vec![
                    ("iteration", point.iteration as f64),
                    ("sim_time_s", point.sim_time),
                    ("accuracy", point.accuracy as f64),
                ],
            ));
        }
    }
    rows
}

/// Fig. 5: accuracy under real Byzantine behaviour (random and reversed
/// vectors) for vanilla, crash-tolerant and MSMW deployments.
pub fn fig5() -> Vec<Row> {
    let mut rows = Vec::new();
    for (attack_name, attack) in [
        ("random", garfield_attacks::AttackKind::Random),
        ("reversed", garfield_attacks::AttackKind::Reversed),
    ] {
        let mut cfg = convergence_config();
        cfg.actual_byzantine_workers = 1;
        cfg.worker_attack = Some(attack);
        cfg.actual_byzantine_servers = 1;
        cfg.server_attack = Some(attack);
        let controller = Controller::new(cfg);
        for system in [
            SystemKind::Vanilla,
            SystemKind::CrashTolerant,
            SystemKind::Msmw,
        ] {
            let trace = controller.run(system).expect("configuration is valid");
            rows.push(Row::new(
                format!("{attack_name}/{system}"),
                vec![
                    ("final_accuracy", trace.final_accuracy() as f64),
                    ("best_accuracy", trace.best_accuracy() as f64),
                ],
            ));
        }
    }
    rows
}

/// Fig. 6 (and Fig. 15): throughput slowdown of each fault-tolerant system
/// relative to vanilla, for every Table 1 model, on the given device.
pub fn fig6(device: Device) -> Vec<Row> {
    let (nw, fw, nps, fps) = if device == Device::Cpu {
        CPU_CLUSTER
    } else {
        GPU_CLUSTER
    };
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for model in zoo::paper_models() {
        let vanilla = throughput(
            SystemKind::Vanilla,
            model.parameters,
            nw,
            fw,
            nps,
            fps,
            32,
            device,
            &cost,
        );
        let mut values = Vec::new();
        for system in [
            SystemKind::CrashTolerant,
            SystemKind::Ssmw,
            SystemKind::Msmw,
            SystemKind::Decentralized,
        ] {
            let point = throughput(
                system,
                model.parameters,
                nw,
                fw,
                nps,
                fps,
                32,
                device,
                &cost,
            );
            values.push((
                system.as_str(),
                vanilla.updates_per_second / point.updates_per_second,
            ));
        }
        rows.push(Row::new(model.name, values));
    }
    rows
}

/// Fig. 7 (CPU) / Fig. 16 (GPU): per-iteration overhead breakdown for ResNet-50.
pub fn fig7(device: Device) -> Vec<Row> {
    let (nw, fw, nps, fps) = if device == Device::Cpu {
        CPU_CLUSTER
    } else {
        GPU_CLUSTER
    };
    let d = zoo::spec_by_name("ResNet-50")
        .expect("ResNet-50 is in Table 1")
        .parameters;
    let cost = CostModel::default();
    SystemKind::all()
        .into_iter()
        .filter(|s| *s != SystemKind::AggregaThor)
        .map(|system| {
            let t =
                crate::throughput::iteration_time(system, d, nw, fw, nps, fps, 32, device, &cost);
            Row::new(
                system.as_str(),
                vec![
                    ("computation_s", t.computation),
                    ("communication_s", t.communication),
                    ("aggregation_s", t.aggregation),
                    ("total_s", t.total()),
                ],
            )
        })
        .collect()
}

/// Fig. 8: throughput (batches/s) versus the number of workers, CifarNet on
/// CPU (8a) or ResNet-50 on GPU (8b).
pub fn fig8(device: Device) -> Vec<Row> {
    let (model, range): (&str, Vec<usize>) = if device == Device::Cpu {
        ("CifarNet", (3..=20).collect())
    } else {
        ("ResNet-50", (5..=13).step_by(2).collect())
    };
    let d = zoo::spec_by_name(model)
        .expect("model is in Table 1")
        .parameters;
    let (_, fw, nps, fps) = if device == Device::Cpu {
        CPU_CLUSTER
    } else {
        GPU_CLUSTER
    };
    let cost = CostModel::default();
    range
        .into_iter()
        .map(|nw| {
            let mut values = Vec::new();
            for system in [
                SystemKind::Vanilla,
                SystemKind::CrashTolerant,
                SystemKind::Ssmw,
                SystemKind::Msmw,
                SystemKind::Decentralized,
            ] {
                let fw = fw.min(nw.saturating_sub(1));
                let point = throughput(system, d, nw, fw, nps, fps, 32, device, &cost);
                values.push((system.as_str(), point.batches_per_second));
            }
            Row::new(format!("nw={nw}"), values)
        })
        .collect()
}

/// Fig. 9: communication time of decentralized learning and the vanilla
/// baseline versus the number of nodes (9a, d = 10⁶) and versus the model
/// dimension (9b, n = 6), on GPUs.
pub fn fig9() -> Vec<Row> {
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for n in 2..=6usize {
        let dec = crate::throughput::iteration_time(
            SystemKind::Decentralized,
            1_000_000,
            n,
            1.min(n - 1),
            0,
            0,
            32,
            Device::Gpu,
            &cost,
        );
        let van = crate::throughput::iteration_time(
            SystemKind::Vanilla,
            1_000_000,
            n,
            0,
            1,
            0,
            32,
            Device::Gpu,
            &cost,
        );
        rows.push(Row::new(
            format!("n={n}"),
            vec![
                ("decentralized_s", dec.communication),
                ("vanilla_s", van.communication),
            ],
        ));
    }
    let mut d = 10_000usize;
    while d <= 100_000_000 {
        let dec = crate::throughput::iteration_time(
            SystemKind::Decentralized,
            d,
            6,
            1,
            0,
            0,
            32,
            Device::Gpu,
            &cost,
        );
        let van = crate::throughput::iteration_time(
            SystemKind::Vanilla,
            d,
            6,
            0,
            1,
            0,
            32,
            Device::Gpu,
            &cost,
        );
        rows.push(Row::new(
            format!("d={d}"),
            vec![
                ("decentralized_s", dec.communication),
                ("vanilla_s", van.communication),
            ],
        ));
        d *= 10;
    }
    rows
}

/// Fig. 10 (and Figs. 13/14): throughput versus the number of declared
/// Byzantine workers (`fw`, fixed cluster) and Byzantine servers (`fps`,
/// which grows the replica group as `nps = 3 fps + 1`).
pub fn fig10(device: Device) -> Vec<Row> {
    let d = zoo::spec_by_name("ResNet-50")
        .expect("in Table 1")
        .parameters;
    let cost = CostModel::default();
    let (nw, _, nps, _) = if device == Device::Cpu {
        CPU_CLUSTER
    } else {
        GPU_CLUSTER
    };
    let mut rows = Vec::new();
    for fw in 0..=3usize {
        let p = throughput(SystemKind::Msmw, d, nw, fw, nps, 1, 32, device, &cost);
        rows.push(Row::new(
            format!("fw={fw}"),
            vec![("updates_per_s", p.updates_per_second)],
        ));
    }
    for fps in 0..=3usize {
        let nps = 3 * fps + 1;
        let p = throughput(
            SystemKind::Msmw,
            d,
            nw,
            3.min(nw - 1),
            nps,
            fps,
            32,
            device,
            &cost,
        );
        rows.push(Row::new(
            format!("fps={fps} (nps={nps})"),
            vec![("updates_per_s", p.updates_per_second)],
        ));
    }
    rows
}

/// Fig. 12: convergence of the MSMW protocol using MDA as the gradient GAR,
/// against vanilla and the crash-tolerant baseline.
pub fn fig12() -> Vec<Row> {
    let mut cfg = convergence_config();
    cfg.gradient_gar = GarKind::Mda;
    let controller = Controller::new(cfg);
    let mut rows = Vec::new();
    for system in [
        SystemKind::Vanilla,
        SystemKind::CrashTolerant,
        SystemKind::Msmw,
    ] {
        let trace = controller.run(system).expect("configuration is valid");
        for point in &trace.accuracy {
            rows.push(Row::new(
                format!("{system}"),
                vec![
                    ("iteration", point.iteration as f64),
                    ("sim_time_s", point.sim_time),
                    ("accuracy", point.accuracy as f64),
                ],
            ));
        }
    }
    rows
}

/// Table 2: parameter-vector alignment of the correct server replicas.
pub fn table2() -> Vec<Row> {
    let mut cfg = convergence_config();
    cfg.synchronous = false;
    cfg.gradient_gar = GarKind::Median;
    cfg.iterations = 100;
    cfg.eval_every = 0;
    let deployment = Deployment::new(cfg).expect("configuration is valid");
    let mut app = MsmwApp::new(deployment).with_alignment_sampling(20);
    app.run().expect("msmw runs");
    app.alignment_samples()
        .iter()
        .map(|s| {
            Row::new(
                format!("step {}", s.step),
                vec![
                    ("cos_phi", s.cosine as f64),
                    ("max_diff1", s.max_diff1 as f64),
                    ("max_diff2", s.max_diff2 as f64),
                ],
            )
        })
        .collect()
}

/// The `measure_variance` report of §3.1 as rows (per-GAR satisfied fraction).
pub fn variance_report() -> Vec<Row> {
    let mut rng = TensorRng::seed_from(11);
    let dataset = Dataset::synthetic(DatasetKind::MnistLike, 512, &mut rng);
    let mut model = Mlp::mnist_cnn_lite(&mut rng);
    let probe = VarianceProbe {
        steps: 5,
        ..VarianceProbe::default()
    };
    let report = probe.run(&mut model, &dataset);
    [GarKind::Mda, GarKind::Krum, GarKind::Median]
        .into_iter()
        .map(|gar| {
            Row::new(
                gar.as_str(),
                vec![("satisfied_fraction", report.satisfied_fraction(&gar))],
            )
        })
        .collect()
}

/// A scalability check of the decentralized application with real training
/// (small n), confirming the quadratic communication trend measured by Fig. 9.
pub fn decentralized_scaling() -> Vec<Row> {
    let mut rows = Vec::new();
    for n in [4usize, 6, 8] {
        let mut cfg = convergence_config();
        cfg.nw = n;
        cfg.fw = 1;
        cfg.gradient_gar = GarKind::Median;
        cfg.iterations = 5;
        cfg.eval_every = 0;
        let mut app = DecentralizedApp::from_config(cfg).expect("valid config");
        let trace = app.run().expect("decentralized runs");
        rows.push(Row::new(
            format!("n={n}"),
            vec![("communication_s", trace.mean_timing().communication)],
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_models() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].label, "MNIST_CNN");
    }

    #[test]
    fn gar_microbenchmarks_produce_positive_times() {
        let rows = fig3a(1_000);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            for (_, t) in &row.values {
                assert!(*t >= 0.0);
            }
        }
        let rows = fig3b(10_000);
        assert!(!rows.is_empty());
    }

    #[test]
    fn throughput_figures_have_expected_shapes() {
        let rows = fig6(Device::Gpu);
        assert_eq!(rows.len(), 6);
        // Every slowdown is at least 1 (vanilla is the fastest).
        for row in &rows {
            for (_, slowdown) in &row.values {
                assert!(*slowdown >= 1.0, "{row:?}");
            }
        }
        assert_eq!(fig7(Device::Cpu).len(), 6);
        assert!(!fig8(Device::Gpu).is_empty());
        assert!(!fig9().is_empty());
        assert_eq!(fig10(Device::Cpu).len(), 8);
    }
}
