//! `expfig watch <spec>`: a live per-node cluster view over the scrape
//! endpoints `garfield-node --metrics-addr` serves.
//!
//! The spec file maps every node id to its *metrics* address, in the same
//! `id host:port` line format as the cluster spec (comments with `#`,
//! blank lines ignored) — but listing where each node's `/metrics` endpoint
//! lives, not its transport port:
//!
//! ```text
//! # node id → metrics endpoint
//! 0 127.0.0.1:9464
//! 1 127.0.0.1:9465
//! ```
//!
//! Each poll hits `/healthz` (is the node up, which round is it in) and
//! `/metrics` (Prometheus text) per node, and derives the operator view:
//! round, rounds/s (counter delta between polls), round-latency p50/p99
//! from histogram buckets, outbound queue depth, drops, and the
//! top-suspicion peers from the `garfield_peer_suspicion` gauges. A node
//! whose `/healthz` does not answer renders as DOWN — distinct from a live
//! node that has not published metrics yet.
//!
//! Everything network-independent (spec parsing, exposition parsing,
//! quantiles, view derivation, rendering) is a pure function over text so
//! the whole pipeline unit-tests without sockets.

use garfield_core::json::{self, Value};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One node to watch: its id and the address its metrics endpoint binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchTarget {
    /// Node id (the cluster layout's id, echoed by `/healthz`).
    pub node: u32,
    /// The `--metrics-addr` socket the node serves scrapes on.
    pub addr: SocketAddr,
}

/// Parses a watch spec: one `id host:port` line per node, `#` comments and
/// blank lines ignored (the cluster-spec file format, pointed at metrics
/// endpoints).
///
/// # Errors
///
/// Returns a message naming the first malformed line or a duplicate id.
pub fn parse_spec(text: &str) -> Result<Vec<WatchTarget>, String> {
    let mut targets: Vec<WatchTarget> = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| format!("watch spec line {}: {what}", number + 1);
        let mut parts = line.split_whitespace();
        let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(bad("expected '<node id> <host:port>'"));
        };
        let node: u32 = id
            .parse()
            .map_err(|e| bad(&format!("node id '{id}': {e}")))?;
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| bad(&format!("address '{addr}': {e}")))?;
        if targets.iter().any(|t| t.node == node) {
            return Err(bad(&format!("node {node} appears twice")));
        }
        targets.push(WatchTarget { node, addr });
    }
    targets.sort_by_key(|t| t.node);
    Ok(targets)
}

/// One blocking HTTP/1.1 GET; returns the body of a `200 OK` response.
///
/// # Errors
///
/// Returns a message for connect/read failures and non-200 statuses.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<String, String> {
    let err = |e: std::io::Error| format!("{addr}{path}: {e}");
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(err)?;
    stream.set_read_timeout(Some(timeout)).map_err(err)?;
    stream.set_write_timeout(Some(timeout)).map_err(err)?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(err)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}{path}: truncated response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.starts_with("HTTP/1.1 200") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

/// One parsed Prometheus sample line: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (histogram series keep their `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// `(key, value)` label pairs, unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` parses as [`f64::INFINITY`]).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Un-escapes a Prometheus label value (`\\`, `\"`, `\n`).
fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other), // covers \" and \\
            None => out.push('\\'),
        }
    }
    out
}

/// Parses Prometheus text exposition (v0.0.4) into samples, skipping
/// comments and lines that do not scan. The inverse of
/// `garfield_obs::metrics::render` for everything that renderer emits.
pub fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`; the value never contains
        // spaces, the label block may (inside quoted values).
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => continue,
        };
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => match v.parse() {
                Ok(v) => v,
                Err(_) => continue,
            },
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let Some(block) = rest.strip_suffix('}') else {
                    continue;
                };
                let mut labels = Vec::new();
                // Split on `",` boundaries so escaped quotes and commas
                // inside values survive.
                let mut rest = block;
                while !rest.is_empty() {
                    let Some((key, after)) = rest.split_once("=\"") else {
                        break;
                    };
                    // Find the closing quote, skipping escaped ones.
                    let mut end = None;
                    let bytes = after.as_bytes();
                    let mut i = 0;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                end = Some(i);
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    let Some(end) = end else { break };
                    labels.push((key.to_string(), unescape(&after[..end])));
                    rest = after[end + 1..].trim_start_matches(',');
                }
                (name.to_string(), labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

/// A quantile in milliseconds from a family's cumulative `_bucket` series.
///
/// Multiple label sets of the family (e.g. one histogram per phase) are
/// merged by summing counts per `le` bound — each series is cumulative in
/// `le`, so the sum is too. Returns 0 when the family has no observations.
pub fn quantile_ms(samples: &[Sample], family: &str, q: f64) -> f64 {
    let bucket_name = format!("{family}_bucket");
    let mut bounds: Vec<(f64, u64)> = Vec::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let Some(le) = s.label("le") else { continue };
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            match le.parse() {
                Ok(v) => v,
                Err(_) => continue,
            }
        };
        match bounds.iter_mut().find(|(b, _)| *b == le) {
            Some((_, count)) => *count += s.value as u64,
            None => bounds.push((le, s.value as u64)),
        }
    }
    bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = bounds.last().map_or(0, |&(_, c)| c);
    if total == 0 {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    for &(bound, cumulative) in &bounds {
        if cumulative >= rank {
            // The +Inf bucket has no finite bound; report the largest
            // finite one (the render's last finite bound) instead.
            if bound.is_infinite() {
                break;
            }
            return bound * 1e3;
        }
    }
    bounds
        .iter()
        .rev()
        .find(|(b, _)| b.is_finite())
        .map_or(0.0, |&(b, _)| b * 1e3)
}

/// Sum of every sample of `family` (any label set); 0 when absent.
fn family_sum(samples: &[Sample], family: &str) -> f64 {
    let sum: f64 = samples
        .iter()
        .filter(|s| s.name == family)
        .map(|s| s.value)
        .sum();
    // An empty f64 sum is the additive identity -0.0; renderers would print
    // a surprising `-0` for DOWN nodes.
    sum + 0.0
}

/// Everything one table line needs about one node, from one poll.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Node id from the watch spec.
    pub node: u32,
    /// Whether `/healthz` answered — DOWN is distinct from "no metrics yet".
    pub up: bool,
    /// The round `/healthz` reported.
    pub round: u64,
    /// `garfield_rounds_total` (0 until the node publishes metrics).
    pub rounds_total: f64,
    /// Round-latency p50 in milliseconds, from `garfield_round_seconds`.
    pub p50_ms: f64,
    /// Round-latency p99 in milliseconds.
    pub p99_ms: f64,
    /// Outbound queue depth summed over peers.
    pub queue: f64,
    /// Messages dropped, summed over peers.
    pub drops: f64,
    /// `garfield_speculation_fallback_total` — nonzero once a speculative
    /// node's check tripped and it latched onto its robust fallback.
    pub spec_fallback: f64,
    /// Lowest round any `garfield_shard_round{shard}` gauge on this node
    /// reports — the trailing shard's progress. −1 when the node publishes
    /// no shard gauges (an unsharded deployment).
    pub shard_lo: i64,
    /// Highest shard round on this node; −1 when unsharded. A widening
    /// `shard_hi − shard_lo` gap means one shard server is falling behind.
    pub shard_hi: i64,
    /// `(peer, suspicion)` gauges, sorted most-suspicious first.
    pub suspects: Vec<(u32, f64)>,
}

/// Derives a node's view from its (optional) `/healthz` and `/metrics`
/// bodies — `None` meaning the endpoint did not answer.
pub fn view(node: u32, healthz: Option<&str>, metrics: Option<&str>) -> NodeView {
    let (up, round) = match healthz.and_then(|body| json::parse(body).ok()) {
        Some(doc) => (
            doc.get("ok").and_then(Value::as_bool).unwrap_or(false),
            doc.get("round").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        ),
        None => (false, 0),
    };
    let samples = metrics.map(parse_exposition).unwrap_or_default();
    let shard_rounds: Vec<i64> = samples
        .iter()
        .filter(|s| s.name == "garfield_shard_round")
        .map(|s| s.value as i64)
        .collect();
    let shard_lo = shard_rounds.iter().copied().min().unwrap_or(-1);
    let shard_hi = shard_rounds.iter().copied().max().unwrap_or(-1);
    let mut suspects: Vec<(u32, f64)> = samples
        .iter()
        .filter(|s| s.name == "garfield_peer_suspicion")
        .filter_map(|s| Some((s.label("peer")?.parse().ok()?, s.value)))
        .collect();
    suspects.sort_by(|a, b| b.1.total_cmp(&a.1));
    NodeView {
        node,
        up,
        round,
        rounds_total: family_sum(&samples, "garfield_rounds_total"),
        p50_ms: quantile_ms(&samples, "garfield_round_seconds", 0.5),
        p99_ms: quantile_ms(&samples, "garfield_round_seconds", 0.99),
        queue: family_sum(&samples, "garfield_outbound_queue_depth"),
        drops: family_sum(&samples, "garfield_messages_dropped_total"),
        spec_fallback: family_sum(&samples, "garfield_speculation_fallback_total"),
        shard_lo,
        shard_hi,
        suspects,
    }
}

/// Scrapes every target once (healthz + metrics, `timeout` each) and
/// derives the per-node views, in spec order.
pub fn poll(targets: &[WatchTarget], timeout: Duration) -> Vec<NodeView> {
    targets
        .iter()
        .map(|t| {
            let healthz = http_get(t.addr, "/healthz", timeout).ok();
            let metrics = http_get(t.addr, "/metrics", timeout).ok();
            view(t.node, healthz.as_deref(), metrics.as_deref())
        })
        .collect()
}

/// Rounds/s from the counter delta between two polls of the same node
/// (0 on the first poll or when the counter went backwards, i.e. the node
/// restarted).
pub fn rounds_per_sec(prev: Option<&NodeView>, current: &NodeView, elapsed_secs: f64) -> f64 {
    match prev {
        Some(p) if elapsed_secs > 0.0 && current.rounds_total >= p.rounds_total => {
            (current.rounds_total - p.rounds_total) / elapsed_secs
        }
        _ => 0.0,
    }
}

/// The `peer:score` summary of a node's most suspicious peers.
fn suspects_cell(suspects: &[(u32, f64)], max: usize) -> String {
    if suspects.is_empty() {
        return "-".to_string();
    }
    suspects
        .iter()
        .take(max)
        .map(|(peer, score)| format!("{peer}:{score:.2}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The `shard` column: `-` for unsharded nodes, one round for a single
/// shard gauge, `lo..hi` when the node sees several shards at different
/// rounds (a widening gap means a shard server is falling behind).
fn shard_cell(v: &NodeView) -> String {
    match (v.shard_lo, v.shard_hi) {
        (-1, _) => "-".to_string(),
        (lo, hi) if lo == hi => lo.to_string(),
        (lo, hi) => format!("{lo}..{hi}"),
    }
}

/// Renders one poll as an aligned per-node table (`rates[i]` pairs with
/// `views[i]`).
pub fn render_table(views: &[NodeView], rates: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>8} {:>8} {:>9} {:>9} {:>6} {:>6} {:>5} {:>8}  top suspicion",
        "node", "state", "round", "r/s", "p50_ms", "p99_ms", "queue", "drops", "fback", "shard"
    );
    for (i, v) in views.iter().enumerate() {
        let rate = rates.get(i).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>8} {:>8.2} {:>9.1} {:>9.1} {:>6} {:>6} {:>5} {:>8}  {}",
            v.node,
            if v.up { "up" } else { "DOWN" },
            v.round,
            rate,
            v.p50_ms,
            v.p99_ms,
            v.queue as u64,
            v.drops as u64,
            v.spec_fallback as u64,
            shard_cell(v),
            suspects_cell(&v.suspects, 3),
        );
    }
    out
}

/// One machine-readable line for `--once`: a JSON object per node.
pub fn view_json(v: &NodeView, rate: f64) -> String {
    let mut out = String::with_capacity(160);
    let _ = write!(
        out,
        "{{\"node\":{},\"up\":{},\"round\":{},\"rounds_total\":{},\"rounds_per_s\":",
        v.node, v.up, v.round, v.rounds_total
    );
    json::write_f64(&mut out, rate);
    let _ = write!(out, ",\"p50_ms\":");
    json::write_f64(&mut out, v.p50_ms);
    let _ = write!(out, ",\"p99_ms\":");
    json::write_f64(&mut out, v.p99_ms);
    let _ = write!(
        out,
        ",\"queue\":{},\"drops\":{},\"spec_fallback\":{},\"shard_lo\":{},\"shard_hi\":{},\
         \"suspects\":[",
        v.queue, v.drops, v.spec_fallback, v.shard_lo, v.shard_hi
    );
    for (i, (peer, score)) in v.suspects.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"peer\":{peer},\"score\":");
        json::write_f64(&mut out, *score);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// The CSV sink's header line.
pub fn csv_header() -> &'static str {
    "poll,node,up,round,rounds_total,rounds_per_s,p50_ms,p99_ms,queue,drops,spec_fallback,\
     shard_lo,shard_hi,top_suspect,top_score"
}

/// One CSV line per node per poll (the sink `expfig watch` appends to).
pub fn csv_line(poll: u64, v: &NodeView, rate: f64) -> String {
    let (top_suspect, top_score) = v
        .suspects
        .first()
        .map_or((-1i64, 0.0), |&(p, s)| (i64::from(p), s));
    format!(
        "{poll},{},{},{},{},{rate},{},{},{},{},{},{},{},{top_suspect},{top_score}",
        v.node,
        v.up,
        v.round,
        v.rounds_total,
        v.p50_ms,
        v.p99_ms,
        v.queue,
        v.drops,
        v.spec_fallback,
        v.shard_lo,
        v.shard_hi
    )
}

/// One `watch --once` pass over a spec text: scrape every node once and
/// return the machine-readable JSON lines (what the binary prints).
///
/// # Errors
///
/// Returns the spec parse error, or a note when the spec is empty — scrape
/// failures are *not* errors, they render as DOWN nodes.
pub fn watch_once(spec_text: &str, timeout: Duration) -> Result<String, String> {
    let targets = parse_spec(spec_text)?;
    if targets.is_empty() {
        return Err("watch spec names no node".to_string());
    }
    let views = poll(&targets, timeout);
    Ok(views
        .iter()
        .map(|v| view_json(v, 0.0))
        .collect::<Vec<_>>()
        .join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_comments_ids_and_rejects_garbage() {
        let targets =
            parse_spec("# metrics endpoints\n\n1 127.0.0.1:9464  # server\n0 127.0.0.1:9465\n")
                .unwrap();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].node, 0, "targets sort by node id");
        assert_eq!(targets[1].addr.port(), 9464);
        assert!(parse_spec("0").is_err());
        assert!(parse_spec("x 127.0.0.1:1").is_err());
        assert!(parse_spec("0 nope").is_err());
        assert!(parse_spec("0 127.0.0.1:1\n0 127.0.0.1:2")
            .unwrap_err()
            .contains("twice"));
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn exposition_parses_labels_escapes_and_inf() {
        let text = "# HELP x y\n# TYPE x counter\n\
                    x{peer=\"3\"} 7\n\
                    x{s=\"a\\\"b\\\\c\\nd\"} 1\n\
                    plain 2.5\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    garbage line without value x\n";
        let samples = parse_exposition(text);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].label("peer"), Some("3"));
        assert_eq!(samples[0].value, 7.0);
        assert_eq!(samples[1].label("s"), Some("a\"b\\c\nd"));
        assert_eq!(samples[2].name, "plain");
        assert_eq!(samples[3].label("le"), Some("+Inf"));
    }

    fn bucket(family: &str, le: &str, cumulative: u64) -> String {
        format!("{family}_bucket{{le=\"{le}\"}} {cumulative}\n")
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets() {
        let mut text = String::new();
        // 10 observations: 5 in ≤0.01, 9 in ≤0.1, all 10 somewhere.
        text += &bucket("garfield_round_seconds", "0.01", 5);
        text += &bucket("garfield_round_seconds", "0.1", 9);
        text += &bucket("garfield_round_seconds", "+Inf", 10);
        let samples = parse_exposition(&text);
        assert_eq!(quantile_ms(&samples, "garfield_round_seconds", 0.5), 10.0);
        assert_eq!(quantile_ms(&samples, "garfield_round_seconds", 0.9), 100.0);
        // p99 lands in +Inf: reported as the largest finite bound.
        assert_eq!(quantile_ms(&samples, "garfield_round_seconds", 0.99), 100.0);
        assert_eq!(quantile_ms(&samples, "absent", 0.5), 0.0);
    }

    #[test]
    fn quantiles_merge_label_sets_of_one_family() {
        let text = concat!(
            "f_bucket{phase=\"a\",le=\"0.01\"} 1\n",
            "f_bucket{phase=\"a\",le=\"+Inf\"} 1\n",
            "f_bucket{phase=\"b\",le=\"0.01\"} 0\n",
            "f_bucket{phase=\"b\",le=\"+Inf\"} 1\n",
        );
        let samples = parse_exposition(text);
        // Two observations total, one ≤ 0.01: the median is the 0.01 bucket.
        assert_eq!(quantile_ms(&samples, "f", 0.5), 10.0);
    }

    #[test]
    fn a_view_derives_from_healthz_and_metrics() {
        let healthz = "{\"ok\":true,\"node\":0,\"round\":12}\n";
        let metrics = concat!(
            "garfield_rounds_total 12\n",
            "garfield_outbound_queue_depth{peer=\"1\"} 2\n",
            "garfield_outbound_queue_depth{peer=\"2\"} 1\n",
            "garfield_messages_dropped_total{peer=\"1\"} 3\n",
            "garfield_peer_suspicion{peer=\"2\"} 0.4\n",
            "garfield_peer_suspicion{peer=\"5\"} 6.1\n",
        );
        let v = view(0, Some(healthz), Some(metrics));
        assert!(v.up);
        assert_eq!(v.round, 12);
        assert_eq!(v.rounds_total, 12.0);
        assert_eq!(v.queue, 3.0);
        assert_eq!(v.drops, 3.0);
        assert_eq!(v.suspects, vec![(5, 6.1), (2, 0.4)]);
        // No shard gauges: the shard columns hold the unsharded sentinel.
        assert_eq!((v.shard_lo, v.shard_hi), (-1, -1));

        // Healthz down: the node is DOWN even if metrics linger.
        let down = view(0, None, Some(metrics));
        assert!(!down.up);
        // Up but no metrics yet: alive with empty counters.
        let fresh = view(3, Some(healthz), None);
        assert!(fresh.up);
        assert_eq!(fresh.rounds_total, 0.0);
        assert!(fresh.suspects.is_empty());
    }

    #[test]
    fn rates_tables_json_and_csv_render() {
        let healthz = "{\"ok\":true,\"node\":1,\"round\":8}";
        let metrics = "garfield_rounds_total 8\ngarfield_peer_suspicion{peer=\"4\"} 5.25\n";
        let v = view(1, Some(healthz), Some(metrics));
        let mut prev = v.clone();
        prev.rounds_total = 6.0;
        assert_eq!(rounds_per_sec(Some(&prev), &v, 2.0), 1.0);
        assert_eq!(rounds_per_sec(None, &v, 2.0), 0.0);
        // Counter went backwards (restart): no negative rate.
        let mut ahead = v.clone();
        ahead.rounds_total = 99.0;
        assert_eq!(rounds_per_sec(Some(&ahead), &v, 2.0), 0.0);

        let table = render_table(std::slice::from_ref(&v), &[1.0]);
        assert!(table.contains("top suspicion"));
        assert!(table.contains("4:5.25"), "{table}");

        let line = view_json(&v, 1.0);
        assert!(line.starts_with("{\"node\":1,\"up\":true,\"round\":8"));
        assert!(line.contains("\"suspects\":[{\"peer\":4,\"score\":5.25}]"));
        let doc = json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("rounds_per_s").and_then(Value::as_f64), Some(1.0));

        assert!(csv_header().starts_with("poll,node"));
        let csv = csv_line(7, &v, 1.0);
        assert!(csv.starts_with("7,1,true,8,8,1,"), "{csv}");
        assert!(csv.ends_with(",4,5.25"), "{csv}");
        // No suspicion yet: the suspect columns hold sentinels.
        let empty = view(2, None, None);
        assert!(csv_line(0, &empty, 0.0).ends_with(",-1,0"));
    }

    #[test]
    fn shard_round_gauges_surface_as_lowest_and_highest_progress() {
        // A shard server publishes its own shard's round; an aggregated
        // scrape (or a future multi-shard node) may carry several. The view
        // keeps the trailing and leading rounds so a widening gap is visible.
        let healthz = "{\"ok\":true,\"node\":0,\"round\":9}";
        let metrics = concat!(
            "garfield_shard_round{shard=\"0\"} 9\n",
            "garfield_shard_round{shard=\"1\"} 7\n",
            "garfield_shard_round{shard=\"2\"} 11\n",
        );
        let v = view(0, Some(healthz), Some(metrics));
        assert_eq!((v.shard_lo, v.shard_hi), (7, 11));
        let table = render_table(std::slice::from_ref(&v), &[0.0]);
        assert!(table.contains("shard"), "{table}");
        assert!(table.contains("7..11"), "{table}");
        let line = view_json(&v, 0.0);
        assert!(line.contains("\"shard_lo\":7,\"shard_hi\":11"), "{line}");
        assert!(csv_header().contains(",shard_lo,shard_hi,"));
        assert!(
            csv_line(0, &v, 0.0).contains(",7,11,"),
            "{}",
            csv_line(0, &v, 0.0)
        );

        // One shard gauge: a single round, no range arrow.
        let single = view(
            1,
            Some(healthz),
            Some("garfield_shard_round{shard=\"0\"} 4\n"),
        );
        assert_eq!((single.shard_lo, single.shard_hi), (4, 4));
        let table = render_table(std::slice::from_ref(&single), &[0.0]);
        assert!(!table.contains(".."), "{table}");
        // Unsharded nodes render the `-` placeholder.
        let plain = view(2, Some(healthz), Some("garfield_rounds_total 3\n"));
        assert_eq!((plain.shard_lo, plain.shard_hi), (-1, -1));
        assert!(render_table(std::slice::from_ref(&plain), &[0.0]).contains(" -  "));
    }

    #[test]
    fn watch_once_renders_down_nodes_not_errors() {
        // A spec pointing at a port nobody listens on: the node reports
        // DOWN, the pass itself succeeds.
        let out = watch_once("0 127.0.0.1:9\n", Duration::from_millis(200)).unwrap();
        assert!(out.starts_with("{\"node\":0,\"up\":false"), "{out}");
        assert!(watch_once("", Duration::from_millis(10)).is_err());
        assert!(watch_once("bad", Duration::from_millis(10)).is_err());
    }
}
