//! # garfield-bench
//!
//! The evaluation harness of Garfield-rs: one entry point per table and
//! figure of the paper's evaluation (§6 and the appendix), shared between the
//! `expfig` binary (which prints the rows the paper reports and writes CSV
//! files under `results/`) and the Criterion micro-benchmarks.
//!
//! The convergence and attack experiments (Figs. 4, 5, 11, 12, Table 2) run
//! the real training stack on scaled-down settings; the throughput sweeps over
//! the paper's large Table 1 models (Figs. 6–10, 13–16) use the same
//! [`CostModel`](garfield_net::CostModel) formulas the training runtime
//! charges, evaluated at the paper's exact parameter counts — see `DESIGN.md`
//! for the substitution rationale and `EXPERIMENTS.md` for paper-vs-measured
//! notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod perf;
pub mod report;
pub mod runtime_throughput;
pub mod throughput;
pub mod trace;
pub mod watch;

pub use perf::{PerfConfig, PerfPoint};
pub use report::{write_csv, Row};
pub use runtime_throughput::{measure as measure_runtime, runtime_report, RuntimePoint};
pub use throughput::{iteration_time, throughput, ThroughputPoint};

/// Serializes tests that toggle or read the process-global `garfield-obs`
/// enabled flag (the default test runner is multi-threaded).
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
